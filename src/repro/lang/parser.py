"""Recursive-descent parser for the transaction language.

Grammar (statements end at NEWLINE, blocks are INDENT ... DEDENT)::

    program     := statement*
    statement   := assignment NEWLINE
                 | if_statement
    assignment  := target "=" expression
    target      := NAME | NAME "." NAME | NAME "[" expression "]"
    if_statement:= "if" expression ":"? NEWLINE INDENT statement+ DEDENT
                   ("elif" expression ":"? NEWLINE INDENT statement+ DEDENT)*
                   ("else" ":"? NEWLINE INDENT statement+ DEDENT)?
    expression  := or_expr
    or_expr     := and_expr ("or" and_expr)*
    and_expr    := not_expr ("and" not_expr)*
    not_expr    := "not" not_expr | comparison
    comparison  := arith (("<"|"<="|">"|">="|"=="|"!=") arith)?
                 | arith ("not"? "in" NAME)
    arith       := term (("+"|"-") term)*
    term        := unary (("*"|"/"|"%") unary)*
    unary       := "-" unary | primary
    primary     := NUMBER | "true" | "false" | NAME trailer* | "(" expression ")"
    trailer     := "." NAME | "[" expression "]" | "(" args ")"

The only unusual wrinkle is the paper's C-style single-line conditional
(``if (tb > BURST_SIZE) tb = BURST_SIZE;``): when the token after an ``if``
condition is not a NEWLINE, the parser accepts a single inline statement as
the body.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .ast import (
    Assign,
    AssignTarget,
    Attribute,
    BinOp,
    Boolean,
    BoolOp,
    Call,
    Compare,
    Expression,
    If,
    Membership,
    Name,
    Number,
    Program,
    Statement,
    Subscript,
    UnaryOp,
)
from .errors import ParseError
from .lexer import Token, TokenType, tokenize

_COMPARISON_TOKENS = {
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
    TokenType.EQ: "==",
    TokenType.NE: "!=",
}

_ADDITIVE_TOKENS = {TokenType.PLUS: "+", TokenType.MINUS: "-"}
_MULTIPLICATIVE_TOKENS = {TokenType.STAR: "*", TokenType.SLASH: "/", TokenType.PERCENT: "%"}


class Parser:
    """Parses a token stream into a :class:`~repro.lang.ast.Program`."""

    def __init__(self, tokens: Sequence[Token], source: str = "") -> None:
        self.tokens = list(tokens)
        self.source = source
        self.pos = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _check(self, token_type: TokenType, ahead: int = 0) -> bool:
        return self._peek(ahead).type is token_type

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _match(self, *token_types: TokenType) -> Optional[Token]:
        if self._peek().type in token_types:
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, context: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ParseError(
                f"expected {token_type.value!r} {context}, found "
                f"{self._describe(token)}",
                line=token.line,
                column=token.column,
            )
        return self._advance()

    @staticmethod
    def _describe(token: Token) -> str:
        if token.type is TokenType.EOF:
            return "end of program"
        if token.type in (TokenType.NEWLINE, TokenType.INDENT, TokenType.DEDENT):
            return token.type.name.lower()
        return repr(str(token.value))

    def _skip_newlines(self) -> None:
        while self._match(TokenType.NEWLINE):
            pass

    # -- entry point ----------------------------------------------------------
    def parse(self) -> Program:
        statements: List[Statement] = []
        self._skip_newlines()
        while not self._check(TokenType.EOF):
            statements.append(self._statement())
            self._skip_newlines()
        if not statements:
            raise ParseError("program is empty", line=1, column=1)
        return Program(statements=tuple(statements), source=self.source)

    # -- statements ------------------------------------------------------------
    def _statement(self) -> Statement:
        if self._check(TokenType.IF):
            return self._if_statement()
        if self._check(TokenType.INDENT) or self._check(TokenType.DEDENT):
            token = self._advance()
            raise ParseError(
                "unexpected indentation", line=token.line, column=token.column
            )
        return self._assignment()

    def _assignment(self) -> Assign:
        target = self._assign_target()
        self._expect(TokenType.ASSIGN, "in assignment")
        value = self._expression()
        self._end_of_statement()
        return Assign(target=target, value=value, line=target.line)

    def _assign_target(self) -> AssignTarget:
        token = self._expect(TokenType.NAME, "as assignment target")
        name = str(token.value)
        if self._match(TokenType.DOT):
            attr = self._expect(TokenType.NAME, "after '.'")
            return Attribute(obj=name, attribute=str(attr.value), line=token.line)
        if self._match(TokenType.LBRACKET):
            index = self._expression()
            self._expect(TokenType.RBRACKET, "to close subscript")
            return Subscript(obj=name, index=index, line=token.line)
        return Name(identifier=name, line=token.line)

    def _end_of_statement(self) -> None:
        token = self._peek()
        if token.type in (TokenType.NEWLINE, TokenType.EOF, TokenType.DEDENT):
            self._match(TokenType.NEWLINE)
            return
        raise ParseError(
            f"expected end of statement, found {self._describe(token)}",
            line=token.line,
            column=token.column,
        )

    def _if_statement(self) -> If:
        if_token = self._expect(TokenType.IF, "")
        condition = self._expression()
        self._match(TokenType.COLON)

        if not self._check(TokenType.NEWLINE):
            # C-style inline body: ``if (cond) statement``.
            body: Tuple[Statement, ...] = (self._assignment(),)
            return If(condition=condition, body=body, orelse=(), line=if_token.line)

        body = self._block("if")
        orelse: Tuple[Statement, ...] = ()
        if self._check(TokenType.ELIF):
            orelse = (self._elif_statement(),)
        elif self._check(TokenType.ELSE):
            self._advance()
            self._match(TokenType.COLON)
            if self._check(TokenType.NEWLINE):
                orelse = self._block("else")
            else:
                orelse = (self._assignment(),)
        return If(condition=condition, body=body, orelse=orelse, line=if_token.line)

    def _elif_statement(self) -> If:
        elif_token = self._expect(TokenType.ELIF, "")
        condition = self._expression()
        self._match(TokenType.COLON)
        body = self._block("elif")
        orelse: Tuple[Statement, ...] = ()
        if self._check(TokenType.ELIF):
            orelse = (self._elif_statement(),)
        elif self._check(TokenType.ELSE):
            self._advance()
            self._match(TokenType.COLON)
            orelse = self._block("else")
        return If(condition=condition, body=body, orelse=orelse, line=elif_token.line)

    def _block(self, context: str) -> Tuple[Statement, ...]:
        self._expect(TokenType.NEWLINE, f"after '{context}' header")
        self._skip_newlines()
        self._expect(TokenType.INDENT, f"to open the '{context}' block")
        statements: List[Statement] = []
        self._skip_newlines()
        while not self._check(TokenType.DEDENT) and not self._check(TokenType.EOF):
            statements.append(self._statement())
            self._skip_newlines()
        self._expect(TokenType.DEDENT, f"to close the '{context}' block")
        if not statements:
            token = self._peek()
            raise ParseError(
                f"empty '{context}' block", line=token.line, column=token.column
            )
        return tuple(statements)

    # -- expressions -------------------------------------------------------------
    def _expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        operands = [left]
        while self._check(TokenType.OR):
            self._advance()
            operands.append(self._and_expr())
        if len(operands) == 1:
            return left
        return BoolOp(operator="or", operands=tuple(operands), line=left.line)

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        operands = [left]
        while self._check(TokenType.AND):
            self._advance()
            operands.append(self._not_expr())
        if len(operands) == 1:
            return left
        return BoolOp(operator="and", operands=tuple(operands), line=left.line)

    def _not_expr(self) -> Expression:
        if self._check(TokenType.NOT) and not self._check(TokenType.IN, ahead=1):
            token = self._advance()
            operand = self._not_expr()
            return UnaryOp(operator="not", operand=operand, line=token.line)
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._arith()
        token = self._peek()
        if token.type in _COMPARISON_TOKENS:
            self._advance()
            right = self._arith()
            return Compare(
                operator=_COMPARISON_TOKENS[token.type],
                left=left,
                right=right,
                line=left.line,
            )
        if token.type is TokenType.IN or (
            token.type is TokenType.NOT and self._check(TokenType.IN, ahead=1)
        ):
            negated = token.type is TokenType.NOT
            self._advance()
            if negated:
                self._expect(TokenType.IN, "after 'not'")
            table = self._expect(TokenType.NAME, "after 'in'")
            return Membership(
                item=left, table=str(table.value), negated=negated, line=left.line
            )
        return left

    def _arith(self) -> Expression:
        left = self._term()
        while self._peek().type in _ADDITIVE_TOKENS:
            token = self._advance()
            right = self._term()
            left = BinOp(
                operator=_ADDITIVE_TOKENS[token.type],
                left=left,
                right=right,
                line=left.line,
            )
        return left

    def _term(self) -> Expression:
        left = self._unary()
        while self._peek().type in _MULTIPLICATIVE_TOKENS:
            token = self._advance()
            right = self._unary()
            left = BinOp(
                operator=_MULTIPLICATIVE_TOKENS[token.type],
                left=left,
                right=right,
                line=left.line,
            )
        return left

    def _unary(self) -> Expression:
        if self._check(TokenType.MINUS):
            token = self._advance()
            operand = self._unary()
            return UnaryOp(operator="-", operand=operand, line=token.line)
        return self._primary()

    def _primary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return Number(value=token.value, line=token.line)  # type: ignore[arg-type]
        if token.type in (TokenType.TRUE, TokenType.FALSE):
            self._advance()
            return Boolean(value=bool(token.value), line=token.line)
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._expression()
            self._expect(TokenType.RPAREN, "to close '('")
            return inner
        if token.type is TokenType.NAME:
            return self._name_expression()
        raise ParseError(
            f"expected an expression, found {self._describe(token)}",
            line=token.line,
            column=token.column,
        )

    def _name_expression(self) -> Expression:
        token = self._expect(TokenType.NAME, "")
        name = str(token.value)
        if self._match(TokenType.DOT):
            attr = self._expect(TokenType.NAME, "after '.'")
            return Attribute(obj=name, attribute=str(attr.value), line=token.line)
        if self._match(TokenType.LBRACKET):
            index = self._expression()
            self._expect(TokenType.RBRACKET, "to close subscript")
            return Subscript(obj=name, index=index, line=token.line)
        if self._match(TokenType.LPAREN):
            args: List[Expression] = []
            if not self._check(TokenType.RPAREN):
                args.append(self._expression())
                while self._match(TokenType.COMMA):
                    args.append(self._expression())
            self._expect(TokenType.RPAREN, "to close the call")
            return Call(function=name, args=tuple(args), line=token.line)
        return Name(identifier=name, line=token.line)


def parse(source: str) -> Program:
    """Parse program text into an AST.

    Raises :class:`~repro.lang.errors.LexerError` or
    :class:`~repro.lang.errors.ParseError` with line/column information on
    malformed input.
    """
    tokens = tokenize(source)
    return Parser(tokens, source=source).parse()
