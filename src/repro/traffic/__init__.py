"""Workload generation: flow specs, arrival processes, size distributions,
trace record/replay."""

from .distributions import (
    DATA_MINING_CDF,
    EmpiricalCDF,
    WEB_SEARCH_CDF,
    bounded_pareto,
    data_mining_flow_sizes,
    exponential,
    pareto,
    sample_many,
    web_search_flow_sizes,
)
from .flows import FlowSpec
from .generators import (
    backlogged_arrivals,
    cbr_arrivals,
    flow_arrivals,
    lazy_merge_arrivals,
    merge_arrivals,
    onoff_arrivals,
    poisson_arrivals,
    total_bytes,
)
from .trace import PacketTrace, TraceRecord

__all__ = [
    "FlowSpec",
    "cbr_arrivals",
    "poisson_arrivals",
    "onoff_arrivals",
    "backlogged_arrivals",
    "flow_arrivals",
    "merge_arrivals",
    "lazy_merge_arrivals",
    "total_bytes",
    "EmpiricalCDF",
    "WEB_SEARCH_CDF",
    "DATA_MINING_CDF",
    "web_search_flow_sizes",
    "data_mining_flow_sizes",
    "exponential",
    "pareto",
    "bounded_pareto",
    "sample_many",
    "PacketTrace",
    "TraceRecord",
]
