"""Table 1 — chip-area breakdown of a PIFO block and the 5-block mesh.

Regenerates every row of Table 1 from the analytic area model and checks the
headline claim: a 5-block PIFO mesh (plus 300 atoms for rank computation)
costs about 7.35 mm^2, i.e. <4% of a 200 mm^2 switching chip.
"""

from __future__ import annotations

from conftest import report

from repro.hardware import MeshDesign, PAPER_TABLE1, PIFOBlockDesign


def build_table1():
    mesh = MeshDesign()
    return mesh.table1()


def test_table1_block_and_mesh_area(benchmark):
    rows = benchmark(build_table1)
    comparison = [
        {"component": "flow scheduler", "paper_mm2": PAPER_TABLE1["flow_scheduler"],
         "model_mm2": rows["flow_scheduler"]},
        {"component": "rank store", "paper_mm2": PAPER_TABLE1["rank_store"],
         "model_mm2": rows["rank_store"]},
        {"component": "next pointers", "paper_mm2": PAPER_TABLE1["next_pointers"],
         "model_mm2": rows["next_pointers"]},
        {"component": "free list", "paper_mm2": PAPER_TABLE1["free_list"],
         "model_mm2": rows["free_list"]},
        {"component": "head/tail/count", "paper_mm2": PAPER_TABLE1["head_tail_count"],
         "model_mm2": rows["head_tail_count"]},
        {"component": "one PIFO block", "paper_mm2": PAPER_TABLE1["one_block"],
         "model_mm2": rows["one_block"]},
        {"component": "5-block mesh", "paper_mm2": PAPER_TABLE1["mesh_5_blocks"],
         "model_mm2": rows["mesh_blocks"]},
        {"component": "300 atoms", "paper_mm2": PAPER_TABLE1["atoms"],
         "model_mm2": rows["atoms"]},
        {"component": "overhead (%)", "paper_mm2": PAPER_TABLE1["overhead_percent"],
         "model_mm2": rows["overhead_percent"]},
    ]
    report("Table 1: PIFO mesh area breakdown (mm^2)", comparison)
    for row in comparison:
        assert row["model_mm2"] == pytest_approx(row["paper_mm2"], rel=0.03), row["component"]
    assert rows["overhead_percent"] < 4.0


def pytest_approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)


def test_table1_block_area_scales_with_rank_store_size(benchmark):
    """Sensitivity: halving the rank store saves the SRAM rows but not the
    flow scheduler, quantifying where the block's area actually goes."""
    def sweep():
        return {
            entries: PIFOBlockDesign(rank_store_entries=entries).block_area_mm2()
            for entries in (16_000, 32_000, 64_000, 128_000)
        }

    areas = benchmark(sweep)
    report(
        "Table 1 sensitivity: block area vs rank-store entries",
        [{"entries": k, "block_mm2": v} for k, v in areas.items()],
    )
    assert areas[128_000] > areas[64_000] > areas[16_000]
    # The flow scheduler (0.224 mm^2) never scales with rank-store size.
    assert areas[16_000] > 0.224
