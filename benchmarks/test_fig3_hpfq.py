"""Figure 3 / Section 2.2 — Hierarchical Packet Fair Queueing on a PIFO tree.

Regenerates: the class- and flow-level bandwidth split of the Figure 3a
hierarchy (Left:Right = 1:9, A:B = 3:7, C:D = 4:6) under full overload, and
compares against the hierarchical-DRR baseline.
"""

from __future__ import annotations

from conftest import measured_shares, report, run_overload_experiment

from repro.algorithms import build_fig3_tree
from repro.baselines import HierarchicalDRR
from repro.metrics import max_share_error

LINK_RATE = 100e6
DURATION = 0.05
EXPECTED = {"A": 0.03, "B": 0.07, "C": 0.36, "D": 0.54}


def run_hpfq():
    return run_overload_experiment(
        build_fig3_tree(), {flow: LINK_RATE for flow in "ABCD"}, LINK_RATE, DURATION
    )


def test_fig3_hpfq_hierarchy_shares(benchmark):
    port = benchmark(run_hpfq)
    shares = measured_shares(port, list("ABCD"), start=0.01, end=DURATION)
    report(
        "Figure 3: HPFQ per-flow shares (weights 1:9, 3:7, 4:6)",
        [
            {"flow": flow, "expected": EXPECTED[flow], "measured": shares[flow]}
            for flow in "ABCD"
        ],
    )
    assert max_share_error(shares, EXPECTED) < 0.03
    left = shares["A"] + shares["B"]
    right = shares["C"] + shares["D"]
    assert abs(left - 0.1) < 0.02
    assert abs(right - 0.9) < 0.02


def test_fig3_hpfq_matches_hierarchical_drr_baseline(benchmark):
    def run_baseline():
        hdrr = HierarchicalDRR(
            class_weights={"Left": 1.0, "Right": 9.0},
            class_flows={"Left": {"A": 3.0, "B": 7.0}, "Right": {"C": 4.0, "D": 6.0}},
        )
        return run_overload_experiment(
            None, {flow: LINK_RATE for flow in "ABCD"}, LINK_RATE, DURATION,
            scheduler=hdrr,
        )

    baseline_port = benchmark(run_baseline)
    baseline_shares = measured_shares(baseline_port, list("ABCD"), 0.01, DURATION)
    report(
        "Figure 3: hierarchical DRR baseline shares",
        [
            {"flow": flow, "expected": EXPECTED[flow], "measured": baseline_shares[flow]}
            for flow in "ABCD"
        ],
    )
    assert max_share_error(baseline_shares, EXPECTED) < 0.06


def test_fig3_partial_backlog_redistributes_within_class(benchmark):
    """When flow C goes idle, its share goes to D (same class), not to Left:
    the defining isolation property of hierarchical fair queueing."""
    def run_partial():
        rates = {"A": LINK_RATE, "B": LINK_RATE, "C": 0.0, "D": LINK_RATE}
        return run_overload_experiment(build_fig3_tree(), rates, LINK_RATE, DURATION)

    port = benchmark(run_partial)
    shares = measured_shares(port, list("ABCD"), start=0.01, end=DURATION)
    report(
        "Figure 3: shares with flow C idle",
        [{"flow": flow, "measured": shares[flow]} for flow in "ABCD"],
    )
    assert shares["C"] == 0.0
    assert abs(shares["D"] - 0.9) < 0.03
    assert abs((shares["A"] + shares["B"]) - 0.1) < 0.03
