"""Scheduling algorithms programmed on top of the PIFO abstraction.

Every algorithm from Sections 2 and 3 of the paper is available here, each
as a scheduling/shaping transaction (or a tree builder for hierarchical
algorithms).  All of them run unmodified on both the reference engine
(:mod:`repro.core.scheduler`) and the cycle-level hardware model
(:mod:`repro.hardware`).
"""

from .cbq import CBQClass, build_cbq_tree
from .fifo import ArrivalSequenceTransaction, FIFOTransaction
from .fine_grained import (
    EarliestDeadlineFirstTransaction,
    FieldRankTransaction,
    LeastAttainedServiceTransaction,
    ShortestJobFirstTransaction,
    SRPTTransaction,
)
from .hierarchies_with_shaping import (
    FIG4_RIGHT_RATE_BPS,
    build_fig4_tree,
    build_shaped_hierarchy,
    fig4_spec,
)
from .hpfq import (
    HierarchySpec,
    ShapingSpec,
    build_deep_hierarchy,
    build_fig3_tree,
    build_hierarchy,
    build_wfq_tree,
    fig3_spec,
    hierarchy_flows,
)
from .lstf import LSTFTransaction, stamp_wait_time
from .min_rate import (
    CollapsedMinRateTransaction,
    MinRateTransaction,
    OVER_MIN,
    UNDER_MIN,
    build_collapsed_min_rate_tree,
    build_min_rate_tree,
)
from .rcsd import (
    JitterEDDRegulator,
    PerHopDeadlineTransaction,
    build_hierarchical_round_robin_tree,
    build_jitter_edd_tree,
    stamp_jitter_slack,
)
from .sced import LatencyRateCurve, SCEDTransaction, admissible
from .stfq import STFQTransaction, WFQTransaction
from .stop_and_go import StopAndGoShapingTransaction, worst_case_delay_bound
from .strict_priority import ClassPriorityTransaction, StrictPriorityTransaction
from .token_bucket import TokenBucketSchedulingGate, TokenBucketShapingTransaction

__all__ = [
    "STFQTransaction",
    "WFQTransaction",
    "FIFOTransaction",
    "ArrivalSequenceTransaction",
    "StrictPriorityTransaction",
    "ClassPriorityTransaction",
    "FieldRankTransaction",
    "ShortestJobFirstTransaction",
    "SRPTTransaction",
    "EarliestDeadlineFirstTransaction",
    "LeastAttainedServiceTransaction",
    "LSTFTransaction",
    "stamp_wait_time",
    "TokenBucketShapingTransaction",
    "TokenBucketSchedulingGate",
    "StopAndGoShapingTransaction",
    "worst_case_delay_bound",
    "MinRateTransaction",
    "CollapsedMinRateTransaction",
    "build_min_rate_tree",
    "build_collapsed_min_rate_tree",
    "UNDER_MIN",
    "OVER_MIN",
    "HierarchySpec",
    "ShapingSpec",
    "build_hierarchy",
    "build_fig3_tree",
    "fig3_spec",
    "build_wfq_tree",
    "build_deep_hierarchy",
    "hierarchy_flows",
    "build_fig4_tree",
    "fig4_spec",
    "build_shaped_hierarchy",
    "FIG4_RIGHT_RATE_BPS",
    "LatencyRateCurve",
    "SCEDTransaction",
    "admissible",
    "CBQClass",
    "build_cbq_tree",
    "JitterEDDRegulator",
    "PerHopDeadlineTransaction",
    "build_jitter_edd_tree",
    "build_hierarchical_round_robin_tree",
    "stamp_jitter_slack",
]
