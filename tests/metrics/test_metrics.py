"""Tests for fairness, throughput, latency and FCT metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Packet
from repro.metrics import (
    DelaySummary,
    FCTSummary,
    bytes_by_flow,
    delay_summary,
    delays_by_flow,
    expected_weighted_shares,
    fct_summary,
    flow_completions,
    jain_index,
    max_share_error,
    max_windowed_rate_bps,
    mean_rate_bps,
    normalized_fct,
    normalized_shares,
    percentile,
    relative_share_error,
    weighted_jain_index,
    windowed_rates,
)


def departed(flow, length, arrival, departure):
    packet = Packet(flow=flow, length=length, arrival_time=arrival)
    packet.departure_time = departure
    return packet


class TestFairness:
    def test_jain_perfectly_fair(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_jain_single_hog(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_jain_empty_raises(self):
        with pytest.raises(ValueError):
            jain_index([])

    def test_weighted_jain(self):
        allocations = {"A": 10.0, "B": 30.0}
        weights = {"A": 1.0, "B": 3.0}
        assert weighted_jain_index(allocations, weights) == pytest.approx(1.0)

    def test_normalized_and_expected_shares(self):
        assert normalized_shares({"A": 2, "B": 6}) == {"A": 0.25, "B": 0.75}
        assert expected_weighted_shares({"A": 1, "B": 3}) == {"A": 0.25, "B": 0.75}

    def test_max_share_error(self):
        measured = {"A": 30, "B": 70}
        expected = {"A": 0.25, "B": 0.75}
        assert max_share_error(measured, expected) == pytest.approx(0.05)

    def test_relative_share_error(self):
        errors = relative_share_error({"A": 30, "B": 70}, {"A": 25, "B": 75})
        assert errors["A"] == pytest.approx(0.2)

    @given(st.lists(st.floats(min_value=0.001, max_value=1000), min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_property_jain_in_unit_interval(self, values):
        assert 0 < jain_index(values) <= 1.0 + 1e-9


class TestThroughput:
    def test_windowed_rates(self):
        packets = [departed("A", 1250, 0.0, 0.05), departed("A", 1250, 0.0, 0.15)]
        samples = windowed_rates(packets, window_s=0.1)
        assert len(samples) == 2
        assert samples[0].rate_bps == pytest.approx(100_000)

    def test_max_windowed_rate_skips_burst_window(self):
        packets = [departed("A", 125000, 0.0, 0.01)] + [
            departed("A", 1250, 0.0, 0.1 + 0.01 * i) for i in range(10)
        ]
        peak_all = max_windowed_rate_bps(packets, window_s=0.1)
        peak_skip = max_windowed_rate_bps(packets, window_s=0.1, skip_first_windows=1)
        assert peak_all > peak_skip

    def test_flow_filter(self):
        packets = [departed("A", 1250, 0, 0.05), departed("B", 1250, 0, 0.05)]
        assert mean_rate_bps(packets, duration_s=1.0, flows=["A"]) == pytest.approx(10_000)
        assert bytes_by_flow(packets) == {"A": 1250, "B": 1250}

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            windowed_rates([], window_s=0)


class TestLatency:
    def test_percentile_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_delay_summary(self):
        packets = [departed("A", 100, 0.0, d) for d in (0.1, 0.2, 0.3)]
        summary = delay_summary(packets)
        assert summary.count == 3
        assert summary.mean == pytest.approx(0.2)
        assert summary.maximum == pytest.approx(0.3)

    def test_delays_by_flow(self):
        packets = [departed("A", 100, 0.0, 0.1), departed("B", 100, 0.0, 0.4)]
        by_flow = delays_by_flow(packets)
        assert by_flow["B"].mean == pytest.approx(0.4)

    def test_summary_from_empty_raises(self):
        with pytest.raises(ValueError):
            DelaySummary.from_values([])


class TestFCT:
    def make_flow(self, flow, sizes, start, finish):
        packets = []
        for i, size in enumerate(sizes):
            packet = Packet(flow=flow, length=size, arrival_time=start)
            packet.departure_time = finish if i == len(sizes) - 1 else start
            packets.append(packet)
        return packets

    def test_flow_completions(self):
        packets = self.make_flow("f1", [1000, 1000], start=0.0, finish=0.5)
        completions = flow_completions(packets)
        assert len(completions) == 1
        assert completions[0].completion_time == pytest.approx(0.5)
        assert completions[0].size_bytes == 2000

    def test_incomplete_flows_excluded(self):
        packets = self.make_flow("f1", [1000], 0.0, 0.5)
        pending = Packet(flow="f2", length=1000, arrival_time=0.0)
        completions = flow_completions(packets + [pending])
        assert [c.flow for c in completions] == ["f1"]

    def test_fct_summary_size_band(self):
        small = self.make_flow("small", [1000], 0.0, 0.1)
        big = self.make_flow("big", [100000], 0.0, 3.0)
        summary = fct_summary(small + big, max_size_bytes=10_000)
        assert summary.count == 1
        assert summary.mean == pytest.approx(0.1)

    def test_normalized_fct(self):
        completion = flow_completions(self.make_flow("f", [1250], 0.0, 0.01))[0]
        assert normalized_fct(completion, line_rate_bps=1e6) == pytest.approx(1.0)

    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            FCTSummary.from_completions([])
