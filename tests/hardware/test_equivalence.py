"""Equivalence of the mesh-backed hardware scheduler and the reference engine.

The hardware model must agree with the reference PIFO semantics whenever the
Section 5.2 structural assumption holds (ranks do not decrease within a
flow).  Ties between flows may legitimately resolve differently — the flow
scheduler orders reinserted heads by reinsertion time rather than original
arrival — so the strong (exact-order) checks use tie-free workloads and the
weaker checks assert per-flow order and identical service counts.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    EarliestDeadlineFirstTransaction,
    FIFOTransaction,
    build_fig3_tree,
    build_fig4_tree,
)
from repro.core import Packet, ProgrammableScheduler, single_node_tree
from repro.hardware import HardwareScheduler


def per_flow_order(packets):
    grouped = {}
    for packet in packets:
        grouped.setdefault(packet.flow, []).append(packet.get("seq"))
    return grouped


class TestExactEquivalenceWithoutTies:
    def test_fifo_with_distinct_arrival_times(self):
        reference = ProgrammableScheduler(single_node_tree(FIFOTransaction()))
        hardware = HardwareScheduler(single_node_tree(FIFOTransaction()))
        rng = random.Random(0)
        for i in range(100):
            flow = rng.choice("ABC")
            now = i * 1e-6
            reference.enqueue(Packet(flow=flow, length=100, fields={"seq": i}), now=now)
            hardware.enqueue(Packet(flow=flow, length=100, fields={"seq": i}), now=now)
        ref_order = [p.get("seq") for p in reference.drain()]
        hw_order = [p.get("seq") for p in hardware.drain()]
        assert ref_order == hw_order

    def test_edf_with_unique_deadlines(self):
        reference = ProgrammableScheduler(
            single_node_tree(EarliestDeadlineFirstTransaction())
        )
        hardware = HardwareScheduler(
            single_node_tree(EarliestDeadlineFirstTransaction())
        )
        rng = random.Random(1)
        deadlines = rng.sample(range(10_000), 80)
        for i, deadline in enumerate(deadlines):
            # One flow per packet keeps within-flow monotonicity trivially.
            for scheduler in (reference, hardware):
                scheduler.enqueue(
                    Packet(flow=f"f{i}", length=100,
                           fields={"deadline": deadline, "seq": i})
                )
        assert [p.get("seq") for p in reference.drain()] == [
            p.get("seq") for p in hardware.drain()
        ]


class TestHierarchicalEquivalence:
    def test_hpfq_same_per_flow_order_and_service(self):
        reference = ProgrammableScheduler(build_fig3_tree())
        hardware = HardwareScheduler(build_fig3_tree())
        rng = random.Random(7)
        for i in range(300):
            flow = rng.choice("ABCD")
            length = rng.choice([500, 1000, 1500])
            reference.enqueue(Packet(flow=flow, length=length, fields={"seq": i}))
            hardware.enqueue(Packet(flow=flow, length=length, fields={"seq": i}))
        ref_out = reference.drain()
        hw_out = hardware.drain()
        assert len(ref_out) == len(hw_out) == 300
        assert per_flow_order(ref_out) == per_flow_order(hw_out)
        # Departure orders agree except possibly at tie-rank positions.
        mismatches = sum(
            1 for a, b in zip(ref_out, hw_out) if a.get("seq") != b.get("seq")
        )
        assert mismatches <= len(ref_out) * 0.05

    def test_shaped_tree_same_eligibility_times(self):
        reference = ProgrammableScheduler(build_fig4_tree(right_burst_bytes=1500))
        hardware = HardwareScheduler(build_fig4_tree(right_burst_bytes=1500))
        for i in range(10):
            for scheduler in (reference, hardware):
                scheduler.enqueue(Packet(flow="C", length=1500, fields={"seq": i}),
                                  now=0.0)
        assert reference.next_shaping_release() == pytest.approx(
            hardware.next_shaping_release()
        )
        ref_now = [p.get("seq") for p in reference.drain(now=0.0)]
        hw_now = [p.get("seq") for p in hardware.drain(now=0.0)]
        assert ref_now == hw_now
        later = 1.0
        assert [p.get("seq") for p in reference.drain(now=later)] == [
            p.get("seq") for p in hardware.drain(now=later)
        ]


@given(
    st.lists(
        st.tuples(st.sampled_from("ABCD"), st.sampled_from([500, 1000, 1500])),
        min_size=1,
        max_size=120,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_hpfq_service_counts_match(arrivals):
    """For any arrival pattern, reference and hardware serve exactly the same
    multiset of packets per flow in the same within-flow order."""
    reference = ProgrammableScheduler(build_fig3_tree())
    hardware = HardwareScheduler(build_fig3_tree())
    for i, (flow, length) in enumerate(arrivals):
        reference.enqueue(Packet(flow=flow, length=length, fields={"seq": i}))
        hardware.enqueue(Packet(flow=flow, length=length, fields={"seq": i}))
    ref_out = reference.drain()
    hw_out = hardware.drain()
    assert per_flow_order(ref_out) == per_flow_order(hw_out)


class TestDocumentedDeviation:
    def test_decreasing_ranks_within_a_flow_deviate_from_ideal_pifo(self):
        """When a flow's ranks decrease (violating the Section 5.2
        assumption), the rank-store FIFO serialises the flow and the hardware
        order differs from the ideal PIFO — exactly the limitation the paper
        states for its design."""
        reference = ProgrammableScheduler(single_node_tree(EarliestDeadlineFirstTransaction()))
        hardware = HardwareScheduler(single_node_tree(EarliestDeadlineFirstTransaction()))
        # Same flow, deadlines decreasing: 30, 20, 10; another flow at 15.
        workload = [("f", 30), ("f", 20), ("other", 15), ("f", 10)]
        for i, (flow, deadline) in enumerate(workload):
            for scheduler in (reference, hardware):
                scheduler.enqueue(
                    Packet(flow=flow, length=100, fields={"deadline": deadline, "seq": i})
                )
        ref_order = [p.get("seq") for p in reference.drain()]
        hw_order = [p.get("seq") for p in hardware.drain()]
        assert ref_order == [3, 2, 1, 0]   # ideal PIFO: pure deadline order
        assert hw_order != ref_order        # hardware: head-of-flow blocking
        # Flow f's packets leave in arrival order (head-of-flow FIFO), not in
        # deadline order, because the rank store serialises the flow.
        f_positions = [seq for seq in hw_order if seq in (0, 1, 3)]
        assert f_positions == [0, 1, 3]
