"""Tests for FIFO/strict-priority baseline queues and the output shaper."""

from __future__ import annotations

import pytest

from repro.baselines import FIFOQueue, OutputTokenBucketShaper, StrictPriorityQueue
from repro.core import Packet


class TestFIFOQueue:
    def test_order(self):
        queue = FIFOQueue()
        packets = [Packet(flow=str(i), length=100) for i in range(3)]
        for packet in packets:
            queue.enqueue(packet)
        assert [queue.dequeue() for _ in range(3)] == packets

    def test_capacity_tail_drop(self):
        queue = FIFOQueue(capacity_packets=1)
        assert queue.enqueue(Packet(flow="A", length=100))
        assert not queue.enqueue(Packet(flow="B", length=100))
        assert queue.drops == 1

    def test_empty_dequeue(self):
        assert FIFOQueue().dequeue() is None

    def test_timestamps(self):
        queue = FIFOQueue()
        packet = Packet(flow="A", length=100)
        queue.enqueue(packet, now=1.0)
        queue.dequeue(now=2.5)
        assert packet.queueing_delay == pytest.approx(1.5)


class TestStrictPriorityQueue:
    def test_priority_order(self):
        queue = StrictPriorityQueue()
        low = Packet(flow="low", length=100, priority=3)
        high = Packet(flow="high", length=100, priority=0)
        queue.enqueue(low)
        queue.enqueue(high)
        assert queue.dequeue() is high
        assert queue.dequeue() is low

    def test_fifo_within_level(self):
        queue = StrictPriorityQueue()
        packets = [Packet(flow=str(i), length=100, priority=1) for i in range(3)]
        for packet in packets:
            queue.enqueue(packet)
        assert [queue.dequeue() for _ in range(3)] == packets

    def test_per_level_capacity(self):
        queue = StrictPriorityQueue(capacity_per_level=1)
        assert queue.enqueue(Packet(flow="a", length=10, priority=0))
        assert not queue.enqueue(Packet(flow="b", length=10, priority=0))
        assert queue.enqueue(Packet(flow="c", length=10, priority=1))

    def test_len(self):
        queue = StrictPriorityQueue()
        queue.enqueue(Packet(flow="a", length=10, priority=0))
        queue.enqueue(Packet(flow="b", length=10, priority=5))
        assert len(queue) == 2


class TestOutputTokenBucketShaper:
    def test_burst_released_immediately(self):
        shaper = OutputTokenBucketShaper(rate_bps=8e6, burst_bytes=3000)
        shaper.enqueue(Packet(flow="A", length=1500), now=0.0)
        assert shaper.dequeue(now=0.0) is not None

    def test_nonconforming_head_blocks(self):
        shaper = OutputTokenBucketShaper(rate_bps=8e6, burst_bytes=1000)
        shaper.enqueue(Packet(flow="A", length=1000), now=0.0)
        shaper.enqueue(Packet(flow="A", length=1000), now=0.0)
        assert shaper.dequeue(now=0.0) is not None
        assert shaper.dequeue(now=0.0) is None
        # After 1 ms the bucket has 1000 bytes again.
        assert shaper.dequeue(now=0.001) is not None

    def test_next_shaping_release_prediction(self):
        shaper = OutputTokenBucketShaper(rate_bps=8e6, burst_bytes=1000)
        shaper.enqueue(Packet(flow="A", length=1000), now=0.0)
        shaper.dequeue(now=0.0)
        shaper.enqueue(Packet(flow="A", length=1000), now=0.0)
        assert shaper.dequeue(now=0.0) is None
        assert shaper.next_shaping_release() == pytest.approx(0.001)

    def test_output_shaping_enforces_rate_even_after_idle_output(self):
        """The key contrast with input-side shaping (Section 3.5): even if
        nothing was dequeued for a long time, the head still departs at the
        shaped rate rather than in a line-rate burst."""
        shaper = OutputTokenBucketShaper(rate_bps=8e6, burst_bytes=1000)
        for _ in range(5):
            shaper.enqueue(Packet(flow="A", length=1000), now=0.0)
        # Wait 1 second without dequeuing: tokens cap at the 1000-byte burst.
        sent_at_once = 0
        while shaper.dequeue(now=1.0) is not None:
            sent_at_once += 1
        assert sent_at_once == 1

    def test_capacity(self):
        shaper = OutputTokenBucketShaper(rate_bps=1e6, burst_bytes=100,
                                         capacity_packets=1)
        assert shaper.enqueue(Packet(flow="A", length=50))
        assert not shaper.enqueue(Packet(flow="A", length=50))
