"""Rate-Controlled Service Disciplines (Section 3.4, item 4).

RCSD is a family of non-work-conserving algorithms composed of a **rate
regulator** (which holds packets until they become eligible) and a **packet
scheduler** (which orders eligible packets).  In the PIFO model the rate
regulator is a shaping transaction and the packet scheduler is a scheduling
transaction on the same node's parent.

Two representative members are provided:

* **Jitter-EDD** — the regulator holds each packet for the *jitter slack*
  recorded at the previous hop (the difference between the previous hop's
  deadline and the packet's actual departure), restoring the traffic pattern
  the previous hop was supposed to emit; the scheduler is EDF on the packet's
  per-hop deadline.
* **Hierarchical Round Robin** — a framing regulator (one frame per class,
  like Stop-and-Go with per-class frame lengths) with FIFO service among
  eligible packets.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..core.backend import BackendSpec
from ..core.packet import Packet
from ..core.predicates import FlowIn
from ..core.transaction import ShapingTransaction, TransactionContext
from ..core.tree import ScheduleTree, TreeNode
from .fifo import FIFOTransaction
from .fine_grained import EarliestDeadlineFirstTransaction
from .stop_and_go import StopAndGoShapingTransaction

#: Packet field carrying the jitter slack (seconds) recorded upstream.
JITTER_FIELD = "jitter_slack"
#: Packet field carrying the per-hop deadline offset (seconds).
DELAY_BOUND_FIELD = "delay_bound"


class JitterEDDRegulator(ShapingTransaction):
    """Holds each packet for its recorded jitter slack.

    The previous hop writes ``jitter_slack = deadline - actual_departure``
    into the packet; this regulator makes the packet eligible only after
    that slack has elapsed, removing the jitter the previous hop introduced.
    Packets without the field are eligible immediately.
    """

    state_variables = ()

    def compute_send_time(self, packet: Packet, ctx: TransactionContext) -> float:
        return ctx.now + max(0.0, packet.get(JITTER_FIELD, 0.0))

    def describe(self) -> str:
        return "JitterEDD regulator (hold for jitter slack)"


class PerHopDeadlineTransaction(EarliestDeadlineFirstTransaction):
    """EDF over per-hop deadlines: deadline = eligibility time + delay bound.

    The packet's ``delay_bound`` field is the local delay bound negotiated
    for its connection; the rank is an absolute deadline so different bounds
    interleave correctly.
    """

    def __init__(self) -> None:
        super().__init__(field_name=DELAY_BOUND_FIELD)

    def compute_rank(self, packet: Packet, ctx: TransactionContext):
        bound = packet.get(DELAY_BOUND_FIELD)
        if bound is None:
            bound = 0.0
        return ctx.now + bound

    def describe(self) -> str:
        return "Jitter-EDD scheduler (EDF on per-hop deadline)"


def build_jitter_edd_tree(
    flows: Mapping[str, float], pifo_backend: BackendSpec = None
) -> ScheduleTree:
    """Jitter-EDD: per-flow regulators (shaping) under an EDF scheduler.

    ``flows`` maps flow identifiers to their per-hop delay bounds in seconds.
    Each flow gets its own regulator leaf (FIFO within the flow, held back by
    the jitter regulator); the root schedules eligible flows by earliest
    per-hop deadline.  Packets of flows not listed skip the regulator and are
    ranked by the root directly (pure EDF), which is convenient for tests and
    for incremental deployment.
    """
    root = TreeNode(name="JitterEDD", scheduling=PerHopDeadlineTransaction())
    for flow in flows:
        root.add_child(
            TreeNode(
                name=f"regulator:{flow}",
                predicate=FlowIn([flow]),
                scheduling=FIFOTransaction(),
                shaping=JitterEDDRegulator(),
            )
        )
    return ScheduleTree(root, pifo_backend=pifo_backend)


def build_hierarchical_round_robin_tree(
    class_flows: Mapping[str, Mapping[str, float]],
    frame_lengths_s: Mapping[str, float],
    pifo_backend: BackendSpec = None,
) -> ScheduleTree:
    """Hierarchical Round Robin: per-class framing regulators under FIFO.

    Each class gets its own frame length (classes with shorter frames get
    finer-grained, lower-delay service — the "hierarchy" of HRR); packets are
    released at the end of their class frame and then served FIFO at the
    root, mirroring the RCSD decomposition into regulator + scheduler.
    """
    root = TreeNode(name="HRR", scheduling=FIFOTransaction())
    for class_name, flows in class_flows.items():
        frame = frame_lengths_s[class_name]
        root.add_child(
            TreeNode(
                name=class_name,
                predicate=FlowIn(flows),
                scheduling=FIFOTransaction(),
                shaping=StopAndGoShapingTransaction(frame_length=frame),
            )
        )
    return ScheduleTree(root, pifo_backend=pifo_backend)


def stamp_jitter_slack(packet: Packet, deadline: float, actual_departure: float) -> None:
    """Record the jitter slack a hop should restore downstream."""
    packet.set(JITTER_FIELD, max(0.0, deadline - actual_departure))
