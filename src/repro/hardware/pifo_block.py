"""A PIFO block: flow scheduler + rank store (Section 5.2, Figure 12).

A PIFO block hosts many *logical PIFOs*.  Its interface is exactly the one
the paper gives in Section 4.2:

* **enqueue**(logical PIFO ID, rank, metadata, flow ID) — no return value;
* **dequeue**(logical PIFO ID) — returns the dequeued element (a packet or a
  reference to another PIFO).

Internally an enqueued element goes to the flow scheduler if it is the first
element of its flow, otherwise to the flow's FIFO in the rank store; a
dequeue pops the flow scheduler and, if the flow is still backlogged,
reinserts the flow's next element from the rank store (the "reinsert
pathway" of Figure 12).

Timing constraints from Section 5.2 are modelled explicitly when callers
drive the block with a cycle number:

* at most **one enqueue and one dequeue per clock cycle** per block;
* a dequeue from the **same logical PIFO** at most once every
  ``SAME_PIFO_DEQUEUE_INTERVAL`` (3) cycles — sufficient for a 100 Gbit/s
  port, which needs a packet at most every 5 cycles.

Calls without a cycle number run in *functional mode*: ordering semantics
are identical and the constraint counters still accumulate, but nothing is
refused — that is the mode the behavioural equivalence tests use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.backend import BackendSpec, resolve_backend
from ..core.pifo import SortedListPIFO
from ..exceptions import HardwareModelError
from .flow_scheduler import DEFAULT_FLOW_CAPACITY, FlowScheduler, FlowSchedulerEntry
from .rank_store import DEFAULT_RANK_STORE_CAPACITY, RankStore

#: Minimum spacing, in cycles, between dequeues of the same logical PIFO
#: (2-cycle pop pipeline + 1 cycle SRAM access for the reinsert).
SAME_PIFO_DEQUEUE_INTERVAL = 3
#: Paper's baseline number of logical PIFOs per block.
DEFAULT_LOGICAL_PIFOS = 256


@dataclass
class BlockStats:
    """Operation and constraint-violation counters for one PIFO block."""

    enqueues: int = 0
    dequeues: int = 0
    rank_store_hits: int = 0
    reinserts: int = 0
    enqueue_conflicts: int = 0
    dequeue_conflicts: int = 0
    same_pifo_violations: int = 0
    per_pifo_enqueues: Dict[int, int] = field(default_factory=dict)


@dataclass
class DequeuedElement:
    """Result of a block dequeue."""

    rank: float
    flow: str
    metadata: Any
    logical_pifo: int


class PIFOBlock:
    """One PIFO block of the mesh."""

    def __init__(
        self,
        name: str = "block",
        capacity_flows: int = DEFAULT_FLOW_CAPACITY,
        rank_store_capacity: int = DEFAULT_RANK_STORE_CAPACITY,
        logical_pifo_count: int = DEFAULT_LOGICAL_PIFOS,
        strict_timing: bool = False,
        pifo_backend: BackendSpec = None,
    ) -> None:
        if logical_pifo_count <= 0:
            raise ValueError("logical_pifo_count must be positive")
        self.name = name
        self.logical_pifo_count = logical_pifo_count
        self.strict_timing = strict_timing
        self.pifo_backend = pifo_backend
        # The default (sorted) backend keeps the hardware-faithful flat
        # array with comparator/shift accounting; any other backend flips
        # the flow scheduler into its O(log n) indexed mode.
        indexed = (
            pifo_backend is not None
            and resolve_backend(pifo_backend) is not SortedListPIFO
        )
        self.flow_scheduler = FlowScheduler(
            capacity_flows=capacity_flows, indexed=indexed
        )
        self.rank_store = RankStore(capacity_entries=rank_store_capacity)
        self.stats = BlockStats()
        self._last_enqueue_cycle: Optional[int] = None
        self._last_dequeue_cycle: Optional[int] = None
        self._last_pifo_dequeue_cycle: Dict[int, int] = {}

    # -- helpers ---------------------------------------------------------------
    def _check_pifo_id(self, logical_pifo: int) -> None:
        if not 0 <= logical_pifo < self.logical_pifo_count:
            raise HardwareModelError(
                f"logical PIFO {logical_pifo} out of range for block {self.name!r} "
                f"(0..{self.logical_pifo_count - 1})"
            )

    def _note_enqueue_cycle(self, cycle: Optional[int]) -> bool:
        if cycle is None:
            return True
        if self._last_enqueue_cycle == cycle:
            self.stats.enqueue_conflicts += 1
            if self.strict_timing:
                return False
        self._last_enqueue_cycle = cycle
        return True

    def _note_dequeue_cycle(self, cycle: Optional[int], logical_pifo: int) -> bool:
        if cycle is None:
            return True
        allowed = True
        if self._last_dequeue_cycle == cycle:
            self.stats.dequeue_conflicts += 1
            allowed = not self.strict_timing and allowed
            if self.strict_timing:
                return False
        last = self._last_pifo_dequeue_cycle.get(logical_pifo)
        if last is not None and cycle - last < SAME_PIFO_DEQUEUE_INTERVAL:
            self.stats.same_pifo_violations += 1
            if self.strict_timing:
                return False
        self._last_dequeue_cycle = cycle
        self._last_pifo_dequeue_cycle[logical_pifo] = cycle
        return True

    # -- block interface (Section 4.2) ------------------------------------------
    def enqueue(
        self,
        logical_pifo: int,
        rank: float,
        flow: str,
        metadata: Any = None,
        cycle: Optional[int] = None,
    ) -> bool:
        """Enqueue an element.  Returns False only in strict timing mode when
        the per-cycle enqueue port is already taken."""
        self._check_pifo_id(logical_pifo)
        if not self._note_enqueue_cycle(cycle):
            return False
        if self.flow_scheduler.contains_flow(logical_pifo, flow):
            # Flow already has its head in the flow scheduler: the new
            # element joins the flow's FIFO in the rank store.
            self.rank_store.append(logical_pifo, flow, rank, metadata)
            self.stats.rank_store_hits += 1
        else:
            # First element of the flow bypasses the rank store (footnote 6).
            self.flow_scheduler.push(rank, logical_pifo, flow, metadata)
        self.stats.enqueues += 1
        self.stats.per_pifo_enqueues[logical_pifo] = (
            self.stats.per_pifo_enqueues.get(logical_pifo, 0) + 1
        )
        return True

    def dequeue(
        self, logical_pifo: int, cycle: Optional[int] = None
    ) -> Optional[DequeuedElement]:
        """Dequeue the head of a logical PIFO (None when it is empty, or when
        strict timing refuses the operation this cycle)."""
        self._check_pifo_id(logical_pifo)
        if not self._note_dequeue_cycle(cycle, logical_pifo):
            return None
        entry = self.flow_scheduler.pop(logical_pifo)
        if entry is None:
            return None
        self.stats.dequeues += 1
        self._reinsert_if_backlogged(entry)
        return DequeuedElement(
            rank=entry.rank,
            flow=entry.flow,
            metadata=entry.metadata,
            logical_pifo=entry.logical_pifo,
        )

    def _reinsert_if_backlogged(self, entry: FlowSchedulerEntry) -> None:
        nxt = self.rank_store.pop_head(entry.logical_pifo, entry.flow)
        if nxt is None:
            return
        rank, metadata = nxt
        self.flow_scheduler.push(rank, entry.logical_pifo, entry.flow, metadata)
        self.stats.reinserts += 1

    def peek(self, logical_pifo: int) -> Optional[DequeuedElement]:
        """Head of a logical PIFO without removing it."""
        self._check_pifo_id(logical_pifo)
        entry = self.flow_scheduler.peek(logical_pifo)
        if entry is None:
            return None
        return DequeuedElement(
            rank=entry.rank,
            flow=entry.flow,
            metadata=entry.metadata,
            logical_pifo=entry.logical_pifo,
        )

    # -- occupancy -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.flow_scheduler) + len(self.rank_store)

    def pifo_occupancy(self, logical_pifo: int) -> int:
        """Elements buffered for one logical PIFO (heads + rank store)."""
        heads = sum(
            1 for e in self.flow_scheduler.entries() if e.logical_pifo == logical_pifo
        )
        stored = sum(
            self.rank_store.flow_depth(logical_pifo, e.flow)
            for e in self.flow_scheduler.entries()
            if e.logical_pifo == logical_pifo
        )
        return heads + stored

    def is_empty(self, logical_pifo: Optional[int] = None) -> bool:
        if logical_pifo is None:
            return len(self) == 0
        return self.flow_scheduler.peek(logical_pifo) is None

    # -- PFC -------------------------------------------------------------------------
    def mask_flow(self, flow: str) -> None:
        self.flow_scheduler.mask_flow(flow)

    def unmask_flow(self, flow: str) -> None:
        self.flow_scheduler.unmask_flow(flow)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PIFOBlock(name={self.name!r}, heads={len(self.flow_scheduler)}, "
            f"stored={len(self.rank_store)})"
        )
