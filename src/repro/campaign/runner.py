"""Sharded campaign execution with deterministic, resumable results.

:class:`CampaignRunner` executes a campaign's run table either serially
(``workers=1``) or across a :mod:`multiprocessing` pool.  Three invariants
make the parallelism safe to trust:

* **Seeds are data, not state.**  Every :class:`~repro.campaign.spec.RunSpec`
  carries its own derived seed, so a run's result is a pure function of the
  spec — which worker executed it, and in what order, cannot matter.
* **Ordered collection.**  Workers may *finish* in any order, but results
  are collected with ``imap`` (submission order) and appended to the store
  in run-table order, so a ``workers=N`` store is byte-identical to the
  serial one modulo the :data:`~repro.campaign.store.TIMING_FIELDS`.
* **Resume by fingerprint.**  Completed runs are identified by their config
  fingerprint in the store; ``resume=True`` executes exactly the missing
  specs and appends them behind the surviving records.

Workers receive plain dict payloads (fork *or* spawn start methods work)
and resolve scenario names against the registry after import, so nothing
unpicklable ever crosses the process boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .spec import Campaign, RunSpec
from .store import ResultStore


def execute_spec(spec: RunSpec) -> Dict:
    """Execute one run and return its self-describing result record.

    This is the single choke point between the sweep engine and the
    simulation substrate: it resolves the scenario by name, runs exactly
    one scheduler variant with the spec's PIFO backend, lang backend, load
    scale and derived seed, and flattens the
    :class:`~repro.net.scenario.ScenarioResult` into a JSON-safe record.
    """
    from ..net import get_scenario  # imports repro.net.scenarios -> registry

    scenario = get_scenario(spec.scenario)
    started = time.perf_counter()
    results = scenario.run(
        quick=spec.quick,
        pifo_backend=spec.pifo_backend,
        variant=spec.variant,
        lang_backend=spec.lang_backend,
        load_scale=spec.load_scale,
        base_seed=spec.seed,
        telemetry=spec.telemetry,
    )
    wall_clock_s = time.perf_counter() - started
    result = results[spec.variant]

    total_packets = sum(stats["packets"] for stats in result.flow_stats.values())
    delay_weighted = sum(
        stats["packets"] * stats["mean_delay"]
        for stats in result.flow_stats.values()
        if stats["mean_delay"] is not None
    )
    record: Dict = dict(spec.to_dict())
    record.update({
        "run_id": spec.run_id,
        "fingerprint": spec.fingerprint(),
        "duration": result.duration,
        "injected": result.conservation["injected"],
        "delivered": result.conservation["delivered"],
        "dropped": result.conservation["dropped"],
        "in_flight": result.conservation["in_flight"],
        "flows_seen": len(result.flow_stats),
        "mean_delay": (delay_weighted / total_packets) if total_packets else None,
        "max_delay": max(
            (stats["max_delay"] for stats in result.flow_stats.values()
             if stats["max_delay"] is not None),
            default=None,
        ),
        "fct_count": result.fct.count if result.fct else 0,
        "fct_mean": result.fct.mean if result.fct else None,
        "fct_p50": result.fct.p50 if result.fct else None,
        "fct_p99": result.fct.p99 if result.fct else None,
        "fct_short_count": result.fct_short.count if result.fct_short else 0,
        "fct_short_mean": result.fct_short.mean if result.fct_short else None,
        "fct_short_p99": result.fct_short.p99 if result.fct_short else None,
        "wall_clock_s": wall_clock_s,
        "worker_pid": os.getpid(),
    })
    return record


def _worker_init() -> None:
    """Pool initializer: warm each worker before its first run.

    Imports :mod:`repro.net` (which populates the scenario registry) and
    pre-compiles the built-in lang programs' factories lazily imported by
    the scenarios, so the first run a worker executes pays none of the
    import/registry cost.  Under ``fork`` the parent's warm interpreter is
    inherited and this is nearly free; under ``spawn`` it moves the entire
    import cost out of the measured per-run path.
    """
    from .. import net  # noqa: F401  (import side effect: scenario registry)

    net.list_scenarios()


def _execute_payload(payload: Dict) -> Dict:
    """Pool entry point: dict in, dict out (keeps pickling trivial)."""
    return execute_spec(RunSpec.from_dict(payload))


def _chunk_size(runs: int, workers: int) -> int:
    """Runs batched per pool task.

    One-task-per-run loses to serial on small campaigns: each run pays a
    pickle/IPC round trip that rivals the run itself (the
    ``speedup_max_workers_vs_serial < 1`` regime in ``BENCH_campaign.json``).
    Batching amortises that overhead; capping at four waves per worker
    keeps enough tasks in flight that an unlucky long run cannot idle the
    rest of the pool behind it.
    """
    return max(1, runs // (workers * 4))


@dataclass
class CampaignReport:
    """Summary of one :meth:`CampaignRunner.run` invocation."""

    campaign: str
    total_runs: int
    executed: int
    skipped: int
    workers: int
    wall_clock_s: float
    store_path: str
    records: List[Dict] = field(default_factory=list)


class CampaignRunner:
    """Executes a campaign's run table against a result store."""

    def __init__(
        self,
        campaign: Campaign,
        store: ResultStore,
        workers: int = 1,
        quick: bool = False,
        resume: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.campaign = campaign
        self.store = store
        self.workers = workers
        self.quick = quick
        self.resume = resume

    def pending_specs(self) -> List[RunSpec]:
        """The ordered run table, minus fingerprint-matched completed runs."""
        specs = self.campaign.expand(quick=self.quick)
        if not self.resume:
            return specs
        done = self.store.fingerprints()
        return [spec for spec in specs if spec.fingerprint() not in done]

    def run(self, progress: Optional[Callable[[Dict], None]] = None) -> CampaignReport:
        """Execute every pending run; append each record to the store.

        ``progress`` (if given) is called with each record as it is
        committed — the CLI uses it for per-run status lines.
        """
        total = self.campaign.size()
        specs = self.pending_specs()
        started = time.perf_counter()
        records: List[Dict] = []

        def commit(record: Dict) -> None:
            self.store.append(record)
            records.append(record)
            if progress is not None:
                progress(record)

        if self.workers == 1 or len(specs) <= 1:
            for spec in specs:
                commit(execute_spec(spec))
        else:
            payloads = [spec.to_dict() for spec in specs]
            # Warm the parent first: with the fork start method every worker
            # inherits the imported scenario registry instead of rebuilding
            # it on its first task.
            _worker_init()
            context = multiprocessing.get_context(_start_method())
            with context.Pool(processes=min(self.workers, len(specs)),
                              initializer=_worker_init) as pool:
                # imap (not imap_unordered) yields in submission order, so
                # the store's record order matches the serial run while
                # completed results still stream to disk as the head of the
                # line finishes.  The chunksize batches several runs per
                # pool task; yield order (and thus the store) is unchanged.
                chunk = _chunk_size(len(payloads), self.workers)
                for record in pool.imap(_execute_payload, payloads,
                                        chunksize=chunk):
                    commit(record)
        return CampaignReport(
            campaign=self.campaign.name,
            total_runs=total,
            executed=len(records),
            skipped=total - len(specs),
            workers=self.workers,
            wall_clock_s=time.perf_counter() - started,
            store_path=str(self.store.path),
            records=records,
        )


def _start_method() -> str:
    """Prefer fork (cheap, inherits the warm interpreter); fall back to
    whatever the platform offers (spawn works because payloads are dicts)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]
