"""Packet-trace export: per-hop spans and a chrome://tracing converter.

A *span* is one hop of one packet through one switch port::

    {"packet_id": 17, "flow": "A", "src": "h0", "dst": "h3",
     "node": "s1", "port": "port_to_s2",
     "arrival": 0.000120, "enqueue": 0.000120, "dequeue": 0.000160,
     "tx": 0.000172, "wait": 4.0e-05, "rank": 3, "queue_depth": 2}

Times are simulator seconds.  ``arrival`` is when the packet reached the
port, ``enqueue`` when the scheduler admitted it, ``dequeue`` when
transmission started, ``tx`` when the last bit left.  ``rank`` is the
leaf scheduling transaction's verdict at admission (``None`` for
rank-free schedulers such as FIFO) and ``queue_depth`` the number of
packets already buffered at that port when this one arrived.

The collector attaches to an *unfused* fabric (``tree_kernel=False`` —
the fused per-port closures bypass the wrappable seams by design, which
is exactly why tracing forces them off) and observes three seams:

* ``scheduler.enqueue`` / ``enqueue_many`` — instance-level wrap that
  snapshots queue depth before admission;
* each leaf ``TreeNode.scheduling`` — a delegating proxy that records
  the first rank computed for each packet;
* ``port.delivery`` — fires after transmit, when all four timestamps of
  the hop are stamped on the packet but before it is forwarded (and its
  fields restamped) downstream.

``spans_to_chrome`` emits a chrome://tracing / Perfetto-compatible JSON
document (one "X" complete event per span, switches as processes and
ports as threads); ``spans_from_chrome`` inverts it losslessly, which
the round-trip test leans on.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "TraceCollector",
    "write_spans",
    "read_spans",
    "spans_to_chrome",
    "spans_from_chrome",
]

#: Span fields carried verbatim into chrome-event ``args`` so the
#: converter round-trips exactly (ts/dur are lossy microseconds).
_ARG_FIELDS = ("packet_id", "flow", "src", "dst", "arrival", "enqueue",
               "dequeue", "tx", "wait", "rank", "queue_depth")


class _RankProbe:
    """Delegating proxy around a leaf scheduling transaction.

    ``__call__`` records the first rank computed for each packet id;
    everything else (``on_dequeue`` and friends) forwards to the wrapped
    transaction, so ``needs_dequeue_hook`` dispatch — precomputed from
    the original class at tree-build time — keeps working unchanged.
    """

    __slots__ = ("_inner", "_ranks")

    def __init__(self, inner: Callable, ranks: Dict[int, Any]) -> None:
        self._inner = inner
        self._ranks = ranks

    def __call__(self, element: Any, ctx: Any) -> Any:
        rank = self._inner(element, ctx)
        packet_id = getattr(element, "packet_id", None)
        if packet_id is not None and packet_id not in self._ranks:
            self._ranks[packet_id] = rank
        return rank

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class TraceCollector:
    """Attach to a fabric and collect one span per switch-port hop."""

    def __init__(self) -> None:
        self.spans: List[Dict[str, Any]] = []
        #: packet_id -> (queue_depth, rank) captured at admission, popped
        #: when the hop's delivery fires.  Single-keyed per packet is safe
        #: because a hop's delivery always completes (span emitted) before
        #: the downstream switch admits the same packet.
        self._pending: Dict[int, Any] = {}
        self._ranks: Dict[int, Any] = {}

    def attach(self, fabric: Any) -> "TraceCollector":
        for node in sorted(fabric.node_switches):
            switch = fabric.node_switches[node]
            for port_name in sorted(switch.ports):
                self._instrument_port(node, port_name,
                                      switch.ports[port_name])
        return self

    # -- per-port seams --------------------------------------------------------
    def _instrument_port(self, node: str, port_name: str, port: Any) -> None:
        scheduler = port.scheduler
        tree = getattr(scheduler, "tree", None)
        if tree is not None:
            for leaf in tree.leaves():
                if not isinstance(leaf.scheduling, _RankProbe):
                    leaf.scheduling = _RankProbe(leaf.scheduling, self._ranks)

        pending = self._pending
        ranks = self._ranks
        orig_enqueue = scheduler.enqueue

        def enqueue(packet: Any, now: Optional[float] = None) -> bool:
            depth = len(scheduler)
            accepted = orig_enqueue(packet, now=now)
            rank = ranks.pop(packet.packet_id, None)
            if accepted:
                pending[packet.packet_id] = (depth, rank)
            return accepted

        scheduler.enqueue = enqueue
        if hasattr(scheduler, "enqueue_many"):
            # Trace runs trade the batched fast path for per-packet
            # depth/rank capture; results are identical, only slower.
            def enqueue_many(packets: Iterable[Any],
                             now: Optional[float] = None) -> int:
                return sum(1 for packet in packets if enqueue(packet, now=now))

            scheduler.enqueue_many = enqueue_many

        orig_delivery = port.delivery

        def delivery(packet: Any) -> None:
            # Read every field *before* the original delivery: forwarding
            # into the next switch restamps the timestamps (and final
            # delivery may recycle the packet into the pool).
            enq = packet.enqueue_time
            deq = packet.dequeue_time
            depth, rank = pending.pop(packet.packet_id, (None, None))
            self.spans.append({
                "packet_id": packet.packet_id,
                "flow": packet.flow,
                "src": packet.src,
                "dst": packet.dst,
                "node": node,
                "port": port_name,
                "arrival": packet.arrival_time,
                "enqueue": enq,
                "dequeue": deq,
                "tx": packet.departure_time,
                "wait": (deq - enq
                         if enq is not None and deq is not None else None),
                "rank": rank,
                "queue_depth": depth,
            })
            if orig_delivery is not None:
                orig_delivery(packet)

        port.delivery = delivery


# -- JSONL I/O ----------------------------------------------------------------

def write_spans(spans: Iterable[Dict[str, Any]], path: str) -> int:
    """Write spans as canonical JSONL; returns the span count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            count += 1
    return count


def read_spans(path: str) -> List[Dict[str, Any]]:
    """Read a span JSONL file, tolerating a torn (partial) final line."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail from an interrupted writer
    return spans


# -- chrome://tracing conversion ----------------------------------------------

def spans_to_chrome(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert spans into a chrome://tracing "trace event" document.

    Switches map to processes, ports to threads; each hop becomes one
    "X" (complete) event spanning enqueue..tx.  The exact simulator-time
    floats ride along in ``args`` so :func:`spans_from_chrome` is
    lossless despite the microsecond ts/dur quantisation.
    """
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []
    for span in spans:
        node = span["node"]
        pid = pids.setdefault(node, len(pids) + 1)
        tid_key = (node, span["port"])
        tid = tids.setdefault(tid_key, len(tids) + 1)
        start = span.get("enqueue") or 0.0
        end = span.get("tx") or start
        events.append({
            "name": f"{span['flow']}#{span['packet_id']}",
            "cat": "hop",
            "ph": "X",
            "ts": start * 1e6,
            "dur": max(0.0, (end - start) * 1e6),
            "pid": pid,
            "tid": tid,
            "args": {field: span.get(field) for field in _ARG_FIELDS},
        })
    meta: List[Dict[str, Any]] = []
    for node, pid in pids.items():
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "args": {"name": node}})
    for (node, port), tid in tids.items():
        meta.append({"name": "thread_name", "ph": "M",
                     "pid": pids[node], "tid": tid,
                     "args": {"name": port}})
    return {"displayTimeUnit": "ms", "traceEvents": meta + events}


def spans_from_chrome(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Invert :func:`spans_to_chrome`; used by the round-trip test."""
    process_names: Dict[int, str] = {}
    thread_names: Dict[tuple, str] = {}
    for event in doc.get("traceEvents", ()):
        if event.get("ph") != "M":
            continue
        if event["name"] == "process_name":
            process_names[event["pid"]] = event["args"]["name"]
        elif event["name"] == "thread_name":
            thread_names[(event["pid"], event["tid"])] = event["args"]["name"]
    spans: List[Dict[str, Any]] = []
    for event in doc.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        span = dict(event["args"])
        span["node"] = process_names[event["pid"]]
        span["port"] = thread_names[(event["pid"], event["tid"])]
        spans.append(span)
    return spans
