"""The PIFO mesh: blocks, next-hop lookup tables, conflict arbitration
(Sections 4.2 and 4.3, Figure 9).

A mesh is a small set of PIFO blocks connected all-to-all.  After a dequeue,
a block consults its *next-hop lookup table* to decide what to do with the
result: transmit the packet, dequeue a logical PIFO in another block (to
follow a tree reference downward), or enqueue into another block (to release
a shaped element into its parent).

Section 4.3 notes the conflict that shaping creates: a shaping PIFO may want
to enqueue into a parent block in the same cycle as an external enqueue.
Only one can proceed, and the paper resolves the conflict in favour of the
PIFO fed by a *scheduling* transaction, giving shaping PIFOs best-effort
service.  :class:`ConflictArbiter` implements exactly that policy for the
cycle-level experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import CompilationError, HardwareModelError
from .pifo_block import PIFOBlock

#: Wire widths (bits) for one enqueue/dequeue interface between two blocks
#: (Section 5.4's accounting).
ENQUEUE_LOGICAL_PIFO_BITS = 8
ENQUEUE_RANK_BITS = 16
ENQUEUE_METADATA_BITS = 32
ENQUEUE_FLOW_ID_BITS = 10
DEQUEUE_LOGICAL_PIFO_BITS = 8
DEQUEUE_ELEMENT_BITS = 32


@dataclass(frozen=True)
class NextHop:
    """One entry of a block's next-hop lookup table.

    ``operation`` is ``"transmit"``, ``"dequeue"`` or ``"enqueue"``;
    ``target_block`` names the block the follow-up operation goes to (absent
    for transmit).
    """

    operation: str
    target_block: Optional[str] = None

    def __post_init__(self) -> None:
        if self.operation not in ("transmit", "dequeue", "enqueue"):
            raise CompilationError(f"unknown next-hop operation {self.operation!r}")
        if self.operation != "transmit" and not self.target_block:
            raise CompilationError(
                f"next-hop operation {self.operation!r} needs a target block"
            )


class PIFOMesh:
    """A set of named PIFO blocks plus their next-hop lookup tables."""

    def __init__(self) -> None:
        self.blocks: Dict[str, PIFOBlock] = {}
        # lookup[block][logical_pifo] -> NextHop
        self.lookup: Dict[str, Dict[int, NextHop]] = {}

    # -- construction ----------------------------------------------------------
    def add_block(self, block: PIFOBlock) -> PIFOBlock:
        if block.name in self.blocks:
            raise CompilationError(f"duplicate block name {block.name!r}")
        self.blocks[block.name] = block
        self.lookup[block.name] = {}
        return block

    def set_next_hop(self, block_name: str, logical_pifo: int, hop: NextHop) -> None:
        if block_name not in self.blocks:
            raise CompilationError(f"unknown block {block_name!r}")
        if hop.target_block is not None and hop.target_block not in self.blocks:
            raise CompilationError(f"unknown target block {hop.target_block!r}")
        self.lookup[block_name][logical_pifo] = hop

    def next_hop(self, block_name: str, logical_pifo: int) -> NextHop:
        try:
            return self.lookup[block_name][logical_pifo]
        except KeyError:
            raise HardwareModelError(
                f"no next-hop entry for block {block_name!r} logical PIFO {logical_pifo}"
            ) from None

    # -- geometry / wiring (Section 5.4) ------------------------------------------
    def block_count(self) -> int:
        return len(self.blocks)

    def wire_sets(self) -> int:
        """Number of directed block-to-block wire sets in a full mesh."""
        n = self.block_count()
        return n * (n - 1)

    @staticmethod
    def bits_per_wire_set() -> int:
        """Bits required to express one enqueue plus one dequeue interface."""
        enqueue_bits = (
            ENQUEUE_LOGICAL_PIFO_BITS
            + ENQUEUE_RANK_BITS
            + ENQUEUE_METADATA_BITS
            + ENQUEUE_FLOW_ID_BITS
        )
        dequeue_bits = DEQUEUE_LOGICAL_PIFO_BITS + DEQUEUE_ELEMENT_BITS
        return enqueue_bits + dequeue_bits

    def total_mesh_wires(self) -> int:
        """Total bits of wiring for the full mesh (2120 for 5 blocks)."""
        return self.wire_sets() * self.bits_per_wire_set()

    # -- aggregate stats -------------------------------------------------------------
    def total_buffered(self) -> int:
        return sum(len(block) for block in self.blocks.values())

    def describe(self) -> str:
        lines: List[str] = []
        for name, block in self.blocks.items():
            lines.append(f"{name}: {block.logical_pifo_count} logical PIFOs")
            for pifo, hop in sorted(self.lookup[name].items()):
                target = f" -> {hop.target_block}" if hop.target_block else ""
                lines.append(f"  pifo {pifo}: {hop.operation}{target}")
        return "\n".join(lines)


@dataclass(order=True)
class _PendingOp:
    priority: int
    seq: int
    kind: str = field(compare=False)  # "scheduling" | "shaping"
    description: str = field(compare=False, default="")


class ConflictArbiter:
    """Per-cycle, per-block enqueue arbitration (Section 4.3).

    Each block accepts one enqueue per cycle.  When both a scheduling-driven
    enqueue (an arriving packet) and a shaping-driven enqueue (a release from
    a shaping PIFO) target the same block in the same cycle, the scheduling
    enqueue wins and the shaping enqueue is retried on a later cycle —
    shaping PIFOs get best-effort service.
    """

    SCHEDULING_PRIORITY = 0
    SHAPING_PRIORITY = 1

    def __init__(self) -> None:
        self._pending: Dict[str, List[_PendingOp]] = {}
        self._seq = 0
        self.granted_scheduling = 0
        self.granted_shaping = 0
        self.deferred_shaping = 0
        self.deferral_cycles = 0

    def request(self, block: str, kind: str, description: str = "") -> None:
        """Register an enqueue request for the current cycle."""
        if kind not in ("scheduling", "shaping"):
            raise ValueError("kind must be 'scheduling' or 'shaping'")
        priority = (
            self.SCHEDULING_PRIORITY if kind == "scheduling" else self.SHAPING_PRIORITY
        )
        op = _PendingOp(priority=priority, seq=self._seq, kind=kind, description=description)
        self._seq += 1
        self._pending.setdefault(block, []).append(op)

    def arbitrate_cycle(self) -> Dict[str, _PendingOp]:
        """Grant one enqueue per block; losers roll over to the next cycle.

        Returns the granted operation per block for this cycle.
        """
        granted: Dict[str, _PendingOp] = {}
        for block, ops in list(self._pending.items()):
            if not ops:
                del self._pending[block]
                continue
            # One min() pass beats sort()+pop(0): O(n) per cycle instead of
            # O(n log n) plus an O(n) head removal.
            winner = min(ops)
            losers = [op for op in ops if op is not winner]
            granted[block] = winner
            if winner.kind == "scheduling":
                self.granted_scheduling += 1
            else:
                self.granted_shaping += 1
            deferred = sum(1 for op in losers if op.kind == "shaping")
            self.deferred_shaping += deferred
            self.deferral_cycles += len(losers)
            if losers:
                self._pending[block] = losers
            else:
                del self._pending[block]
        return granted

    def pending_requests(self) -> int:
        return sum(len(ops) for ops in self._pending.values())

    def run_until_drained(self, max_cycles: int = 1_000_000) -> int:
        """Arbitrate repeated cycles until every request is granted.

        Returns the number of cycles taken; used by the Section 4.3
        benchmark to quantify how long shaping enqueues are delayed under an
        adversarial arrival pattern.
        """
        cycles = 0
        while self.pending_requests() and cycles < max_cycles:
            self.arbitrate_cycle()
            cycles += 1
        if self.pending_requests():
            raise HardwareModelError("conflict arbitration did not drain")
        return cycles
