"""Tests for the atom feasibility analysis and the area/timing model."""

from __future__ import annotations

import pytest

from repro.exceptions import CompilationError
from repro.hardware import (
    ATOM_BUDGET_PER_CHIP,
    AtomPipelineAnalyzer,
    FlowSchedulerDesign,
    MAX_FLOWS_AT_1GHZ,
    MeshDesign,
    PAPER_PARAMETER_VARIATIONS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TOTAL_MESH_WIRES,
    PAPER_TRANSACTIONS,
    PAPER_WIRES_PER_SET,
    PIFOBlockDesign,
    StateUpdate,
    TransactionSpec,
    flat_sorted_array_comparisons,
    paper_transaction_specs,
    parameter_variation_rows,
    require_feasible,
    table2_rows,
)


class TestAtomAnalysis:
    def test_every_paper_transaction_is_feasible(self):
        analyzer = AtomPipelineAnalyzer()
        for spec in paper_transaction_specs():
            report = analyzer.analyze(spec)
            assert report.feasible, f"{spec.name} should fit the atom vocabulary"
            assert report.total_atoms >= 1

    def test_stateless_transactions_use_only_stateless_atoms(self):
        analyzer = AtomPipelineAnalyzer()
        report = analyzer.analyze(PAPER_TRANSACTIONS["fifo"])
        assert set(report.atoms_used) == {"Stateless"}

    def test_stfq_requires_the_pairs_atom(self):
        analyzer = AtomPipelineAnalyzer()
        report = analyzer.analyze(PAPER_TRANSACTIONS["stfq"])
        assert report.atoms_used.get("Pairs", 0) >= 1

    def test_all_paper_transactions_fit_the_chip_budget(self):
        analyzer = AtomPipelineAnalyzer()
        assert analyzer.fits_budget(paper_transaction_specs(), ATOM_BUDGET_PER_CHIP)

    def test_infeasible_capability_reported_not_raised(self):
        analyzer = AtomPipelineAnalyzer()
        impossible = TransactionSpec(
            name="impossible",
            kind="scheduling",
            state_updates=(StateUpdate("x", required_capability=99),),
        )
        report = analyzer.analyze(impossible)
        assert not report.feasible
        assert "capability" in report.reason

    def test_require_feasible_raises_for_infeasible(self):
        impossible = TransactionSpec(
            name="impossible",
            kind="scheduling",
            state_updates=(StateUpdate("x", required_capability=99),),
        )
        with pytest.raises(CompilationError):
            require_feasible(impossible)

    def test_area_accumulates_over_transactions(self):
        analyzer = AtomPipelineAnalyzer()
        total = analyzer.total_area_mm2(paper_transaction_specs())
        assert 0 < total < 1.8  # well under the 300-atom budget of 1.8 mm^2


class TestFlowSchedulerDesign:
    def test_baseline_area_matches_paper(self):
        assert FlowSchedulerDesign().area_mm2() == pytest.approx(0.224, rel=0.03)

    @pytest.mark.parametrize("flows,area,timing", list(PAPER_TABLE2))
    def test_table2_rows_within_tolerance(self, flows, area, timing):
        design = FlowSchedulerDesign(num_flows=flows)
        assert design.area_mm2() == pytest.approx(area, rel=0.06)
        assert design.meets_timing_at_1ghz() == timing

    @pytest.mark.parametrize("name,paper_area", sorted(PAPER_PARAMETER_VARIATIONS.items()))
    def test_section53_parameter_variations(self, name, paper_area):
        rows = {row["variation"]: row for row in parameter_variation_rows()}
        assert rows[name]["model_area_mm2"] == pytest.approx(paper_area, rel=0.03)

    def test_timing_cliff_at_2048_flows(self):
        assert FlowSchedulerDesign(num_flows=MAX_FLOWS_AT_1GHZ).meets_timing_at_1ghz()
        assert not FlowSchedulerDesign(num_flows=MAX_FLOWS_AT_1GHZ * 2).meets_timing_at_1ghz()

    def test_table2_rows_helper_reports_paper_values(self):
        rows = table2_rows()
        assert len(rows) == 5
        assert rows[0]["paper_area_mm2"] == 0.053

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSchedulerDesign(num_flows=0)


class TestBlockAndMeshDesign:
    def test_table1_block_breakdown(self):
        breakdown = PIFOBlockDesign().breakdown()
        assert breakdown["rank_store"] == pytest.approx(PAPER_TABLE1["rank_store"], rel=0.02)
        assert breakdown["next_pointers"] == pytest.approx(PAPER_TABLE1["next_pointers"], rel=0.02)
        assert breakdown["free_list"] == pytest.approx(PAPER_TABLE1["free_list"], rel=0.02)
        assert breakdown["one_block"] == pytest.approx(PAPER_TABLE1["one_block"], rel=0.02)

    def test_five_block_mesh_overhead_below_four_percent(self):
        mesh = MeshDesign()
        assert mesh.total_area_mm2() == pytest.approx(7.35, rel=0.02)
        assert mesh.overhead_percent() == pytest.approx(PAPER_TABLE1["overhead_percent"], rel=0.02)
        assert mesh.overhead_percent() < 4.0

    def test_atoms_area_matches_paper(self):
        assert MeshDesign().atoms_area_mm2() == pytest.approx(1.8)

    def test_wiring_counts_match_section_54(self):
        mesh = MeshDesign()
        assert mesh.bits_per_wire_set() == PAPER_WIRES_PER_SET
        assert mesh.wire_sets() == 20
        assert mesh.total_mesh_wires() == PAPER_TOTAL_MESH_WIRES

    def test_flat_sorted_array_needs_60k_comparators(self):
        """The ablation behind the flow-scheduler/rank-store split: a naive
        flat PIFO would need one comparator per buffered packet."""
        assert flat_sorted_array_comparisons(60_000) == 60_000
        assert flat_sorted_array_comparisons(60_000) > FlowSchedulerDesign().num_flows
