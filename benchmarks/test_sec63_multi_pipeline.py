"""Section 6.3 — multi-pipeline switches sharing one scheduler subsystem.

The paper argues the PIFO block extends to switches whose aggregate packet
rate exceeds one pipeline's billion packets/s (e.g. a 3.2 Tbit/s Tomahawk
needs ~6 ingress and ~6 egress pipelines).  This experiment offers each
block a Tomahawk-class load and sweeps the number of ports the block
exposes: with one enqueue/dequeue per cycle most scheduler slots are lost,
and the loss disappears once the block provides as many ports as pipelines.
"""

from __future__ import annotations

import random

from conftest import report

from repro.extensions import MultiPipelineBlock, PipelinePortConfig, required_pipelines

AGGREGATE_CAPACITY_BPS = 3.2e12
CYCLES = 2_000
FLOWS = 64


def _offered_load(pipelines_needed: int, seed: int = 1):
    """Per-cycle enqueue requests for a switch needing ``pipelines_needed``
    ingress pipelines (one minimum-size packet per pipeline per cycle)."""
    rng = random.Random(seed)
    load = []
    for cycle in range(1, CYCLES + 1):
        requests = [
            (f"f{rng.randrange(FLOWS)}", float(cycle) + i * 1e-3)
            for i in range(pipelines_needed)
        ]
        load.append((cycle, requests))
    return load


def test_sec63_scheduler_slots_vs_port_count(benchmark):
    pipelines_needed = required_pipelines(AGGREGATE_CAPACITY_BPS)
    offered = _offered_load(pipelines_needed)

    def run():
        results = {}
        for ports in (1, 2, 4, pipelines_needed):
            block = MultiPipelineBlock(
                ports=PipelinePortConfig(ports, ports),
                strict=True,
                rank_store_capacity=CYCLES * pipelines_needed + 1,
            )
            for cycle, requests in offered:
                for index, (flow, rank) in enumerate(requests):
                    block.enqueue(0, rank=rank, flow=flow, cycle=cycle,
                                  pipeline=index % ports)
            results[ports] = block.stats.enqueue_loss_fraction
        return results

    loss_by_ports = benchmark(run)
    report(
        "Section 6.3: scheduler-slot loss vs block port count "
        f"(offered load = {pipelines_needed} enqueues/cycle)",
        [
            {"block_ports": ports, "enqueue_loss_fraction": loss,
             "sufficient": loss == 0.0}
            for ports, loss in sorted(loss_by_ports.items())
        ],
    )
    # One port loses most slots at Tomahawk-class load; provisioning as many
    # ports as pipelines removes the loss entirely, as Section 6.3 claims.
    assert loss_by_ports[1] > 0.5
    assert loss_by_ports[pipelines_needed] == 0.0
    assert loss_by_ports[4] <= loss_by_ports[2] <= loss_by_ports[1]
