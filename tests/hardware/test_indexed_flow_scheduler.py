"""Equivalence of the flow scheduler's indexed (heap) storage mode.

``PIFOBlock(pifo_backend=...)`` flips the flow scheduler from the
hardware-faithful flat sorted array into per-logical-PIFO heaps with lazy
deletion.  Ordering semantics — (rank, push order), per-logical-PIFO pops,
PFC mask skipping — must be bit-identical; only the work accounting
(``comparisons``/``shifts``) is allowed to differ.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import build_fig3_tree
from repro.core import Packet
from repro.hardware import HardwareScheduler, PIFOBlock
from repro.hardware.flow_scheduler import FlowScheduler


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["push", "push", "pop", "peek", "mask", "unmask"]),
            st.integers(min_value=0, max_value=2),   # logical pifo
            st.integers(min_value=0, max_value=9),   # rank
            st.sampled_from(["f0", "f1", "f2", "f3"]),
        ),
        max_size=150,
    )
)
@settings(max_examples=120, deadline=None)
def test_property_indexed_mode_matches_sorted_array(operations):
    flat = FlowScheduler(capacity_flows=64)
    indexed = FlowScheduler(capacity_flows=64, indexed=True)
    for op, pifo_id, rank, flow in operations:
        if op == "push":
            if flat.is_full:
                continue
            flat.push(rank, pifo_id, flow, metadata=(rank, flow))
            indexed.push(rank, pifo_id, flow, metadata=(rank, flow))
        elif op == "pop":
            a = flat.pop(pifo_id)
            b = indexed.pop(pifo_id)
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.rank, a.seq, a.flow) == (b.rank, b.seq, b.flow)
        elif op == "peek":
            a = flat.peek(pifo_id)
            b = indexed.peek(pifo_id)
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.rank, a.seq, a.flow) == (b.rank, b.seq, b.flow)
        elif op == "mask":
            flat.mask_flow(flow)
            indexed.mask_flow(flow)
        else:
            flat.unmask_flow(flow)
            indexed.unmask_flow(flow)
        assert len(flat) == len(indexed)
        assert [e.key() for e in flat.entries()] == [
            e.key() for e in indexed.entries()
        ]
        for pid in range(3):
            for flow_name in ["f0", "f1", "f2", "f3"]:
                assert flat.contains_flow(pid, flow_name) == indexed.contains_flow(
                    pid, flow_name
                )


def test_pifo_block_backend_selects_indexed_mode():
    assert PIFOBlock().flow_scheduler.indexed is False
    assert PIFOBlock(pifo_backend="sorted").flow_scheduler.indexed is False
    assert PIFOBlock(pifo_backend="calendar").flow_scheduler.indexed is True
    assert PIFOBlock(pifo_backend="bucketed").flow_scheduler.indexed is True


def test_block_dequeue_order_identical_across_backends():
    rng = random.Random(7)
    blocks = {
        "sorted": PIFOBlock(name="flat"),
        "calendar": PIFOBlock(name="heap", pifo_backend="calendar"),
    }
    ops = [(rng.randint(0, 3), rng.randint(0, 50), rng.choice("abcd"))
           for _ in range(300)]
    for pifo_id, rank, flow in ops:
        for block in blocks.values():
            block.enqueue(pifo_id, rank=rank, flow=flow)
    orders = {}
    for name, block in blocks.items():
        order = []
        for pifo_id in range(4):
            while True:
                out = block.dequeue(pifo_id)
                if out is None:
                    break
                order.append((pifo_id, out.rank, out.flow))
        orders[name] = order
    assert orders["sorted"] == orders["calendar"]


def test_hardware_scheduler_backend_equivalence():
    rng = random.Random(11)
    flows = [rng.choice("ABCD") for _ in range(400)]

    def run(backend):
        scheduler = HardwareScheduler(build_fig3_tree(), pifo_backend=backend)
        for flow in flows:
            scheduler.enqueue(Packet(flow=flow, length=1000, arrival_time=0.0))
        return [p.flow for p in scheduler.drain()]

    assert run(None) == run("calendar")


def test_hardware_scheduler_use_backend_requires_empty():
    scheduler = HardwareScheduler(build_fig3_tree())
    scheduler.enqueue(Packet(flow="A", length=1000, arrival_time=0.0))
    from repro.exceptions import SchedulerError

    with pytest.raises(SchedulerError):
        scheduler.use_backend("calendar")
    scheduler.drain()
    scheduler.use_backend("calendar")
    assert scheduler.pifo_backend == "calendar"


def test_masked_shaping_token_is_deferred_not_dropped():
    """Regression: a PFC mask on a shaped node's flow at release time must
    defer the shaping token, not discard its calendar entry."""
    from repro.algorithms import build_fig4_tree

    scheduler = HardwareScheduler(build_fig4_tree())
    for _ in range(6):
        scheduler.enqueue(Packet(flow="C", length=1500, arrival_time=0.0))
    slot = scheduler.program.shaping_assignment["Right"]
    block = scheduler.mesh.blocks[slot.block]
    pending = scheduler.next_shaping_release()
    assert pending is not None

    block.mask_flow("Right")
    assert scheduler.process_shaping_releases(now=1e9) == 0
    # Paused tokens are invisible to next_shaping_release (they cannot
    # fire, and advertising them would shadow other nodes' releases) but
    # must not be lost from the calendar.
    assert scheduler.next_shaping_release() is None

    block.unmask_flow("Right")
    assert scheduler.next_shaping_release() == pending
    released = scheduler.process_shaping_releases(now=1e9)
    assert released > 0
    assert len(scheduler.drain(now=1e9)) == 6


def test_reset_preserves_custom_compiler_capacities():
    """Regression: reset()/use_backend() must recompile with the caller's
    compiler, not silently revert to default block capacities."""
    from repro.hardware import MeshCompiler

    compiler = MeshCompiler(capacity_flows=8, logical_pifos_per_block=16)
    scheduler = HardwareScheduler(build_fig3_tree(), compiler=compiler)
    scheduler.use_backend("calendar")
    block = next(iter(scheduler.mesh.blocks.values()))
    assert block.flow_scheduler.capacity_flows == 8
    assert block.logical_pifo_count == 16
    assert block.flow_scheduler.indexed is True
    scheduler.reset()
    block = next(iter(scheduler.mesh.blocks.values()))
    assert block.flow_scheduler.capacity_flows == 8
