"""Runners for every quantitative experiment in the paper.

Each runner executes one table or figure of the paper on this library's
substrate and returns an :class:`ExperimentResult`: an identifier, a title,
structured rows (paper value next to measured value wherever the paper
states a number) and free-form notes about what to look for.

The registry :data:`EXPERIMENTS` maps experiment identifiers to runners and
is what the CLI, the report generator and the integration tests iterate
over.  Runners accept a ``quick`` flag so interactive use stays fast; the
benchmark harness under ``benchmarks/`` runs the same experiments at full
length with pytest-benchmark instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from ..algorithms import (
    FIG4_RIGHT_RATE_BPS,
    FIFOTransaction,
    StopAndGoShapingTransaction,
    build_fig3_tree,
    build_fig4_tree,
    build_min_rate_tree,
    build_wfq_tree,
    worst_case_delay_bound,
)
from ..core import MatchAll, ProgrammableScheduler, ScheduleTree, TreeNode
from ..hardware.area_model import (
    MeshDesign,
    parameter_variation_rows,
    table2_rows,
)
from ..hardware.atoms import AtomPipelineAnalyzer
from ..lang.analysis import spec_from_program
from ..lang.programs import PROGRAM_SOURCES, PROGRAM_STATE, SHAPING_PROGRAMS
from ..metrics import weighted_jain_index
from ..sim import OutputPort, PacketSource, Simulator
from ..traffic import FlowSpec, cbr_arrivals, merge_arrivals, onoff_arrivals


@dataclass
class ExperimentResult:
    """Structured outcome of one reproduced experiment."""

    experiment_id: str
    title: str
    rows: List[Dict]
    notes: str = ""
    #: Section/figure/table reference in the paper.
    paper_reference: str = ""
    #: Structured extras too bulky for the text table (for example the
    #: fabric scenarios' per-node/per-port switch counters); included in
    #: ``--json`` output only.
    details: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-friendly representation (used by the CLI's --json flag)."""
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_reference": self.paper_reference,
            "notes": self.notes,
            "rows": self.rows,
        }
        if self.details:
            payload["details"] = self.details
        return payload


# --------------------------------------------------------------------------- #
# Simulation helper                                                           #
# --------------------------------------------------------------------------- #
def _run_overload(
    tree,
    flow_rates_bps: Mapping[str, float],
    link_rate_bps: float,
    duration_s: float,
    packet_size: int = 1500,
):
    """Drive a scheduling tree with CBR flows on one output port."""
    sim = Simulator()
    scheduler = ProgrammableScheduler(tree)
    port = OutputPort(sim, scheduler, rate_bps=link_rate_bps, name="port0")
    streams = [
        cbr_arrivals(
            FlowSpec(name=flow, rate_bps=rate, packet_size=packet_size),
            duration=duration_s,
        )
        for flow, rate in flow_rates_bps.items()
        if rate > 0
    ]
    PacketSource(sim, port, merge_arrivals(*streams))
    sim.run(until=duration_s)
    return port


# --------------------------------------------------------------------------- #
# Hardware evaluation (Section 5)                                             #
# --------------------------------------------------------------------------- #
#: Component areas Table 1 states, in mm^2 (the last entry is a percentage).
PAPER_TABLE1_MM2 = {
    "flow_scheduler": 0.224,
    "rank_store": 0.445,
    "next_pointers": 0.148,
    "free_list": 0.148,
    "head_tail_count": 0.1476,
    "one_block": 1.11,
    "mesh_blocks": 5.55,
    "atoms": 1.8,
    "total": 7.35,
    "overhead_percent": 3.7,
}


def run_table1(quick: bool = False) -> ExperimentResult:
    """Table 1 — chip-area breakdown of a 5-block PIFO mesh."""
    design = MeshDesign()
    model = design.table1()
    rows = []
    for component, paper_value in PAPER_TABLE1_MM2.items():
        measured = model.get(component)
        rows.append(
            {
                "component": component,
                "paper": paper_value,
                "model": measured,
                "unit": "%" if component == "overhead_percent" else "mm^2",
            }
        )
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1: 5-block PIFO mesh area overhead",
        rows=rows,
        paper_reference="Section 5.3, Table 1",
        notes=(
            "Analytic area model calibrated to the published per-component "
            "figures; the headline claim is <4% overhead on a 200 mm^2 chip."
        ),
    )


def run_table2(quick: bool = False) -> ExperimentResult:
    """Table 2 — flow-scheduler area and timing vs number of flows."""
    rows = [
        {
            "flows": row["flows"],
            "paper_area_mm2": row["paper_area_mm2"],
            "model_area_mm2": row["model_area_mm2"],
            "paper_meets_1GHz": row["paper_meets_timing"],
            "model_meets_1GHz": row["model_meets_timing"],
        }
        for row in table2_rows()
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Table 2: flow-scheduler scaling with the number of flows",
        rows=rows,
        paper_reference="Section 5.3, Table 2",
        notes="Area grows linearly with flows; timing closes up to 2048 flows.",
    )


def run_sec53_variations(quick: bool = False) -> ExperimentResult:
    """Section 5.3 — flow-scheduler area under parameter variations."""
    rows = [
        {
            "variation": row["variation"],
            "paper_area_mm2": row["paper_area_mm2"],
            "model_area_mm2": row["model_area_mm2"],
            "meets_1GHz": row["meets_timing"],
        }
        for row in parameter_variation_rows()
    ]
    return ExperimentResult(
        experiment_id="sec5.3",
        title="Section 5.3: rank width / logical PIFOs / metadata variations",
        rows=rows,
        paper_reference="Section 5.3",
        notes="All variations keep meeting timing at 1 GHz; only area moves.",
    )


def run_sec54_wiring(quick: bool = False) -> ExperimentResult:
    """Section 5.4 — full-mesh wiring cost between PIFO blocks."""
    design = MeshDesign()
    rows = [
        {"quantity": "wire sets (5-block full mesh)", "paper": 20,
         "model": design.wire_sets()},
        {"quantity": "bits per wire set", "paper": 106,
         "model": design.bits_per_wire_set()},
        {"quantity": "total mesh wires", "paper": 2120,
         "model": design.total_mesh_wires()},
    ]
    return ExperimentResult(
        experiment_id="sec5.4",
        title="Section 5.4: interconnecting PIFO blocks",
        rows=rows,
        paper_reference="Section 5.4",
        notes="A few thousand wires; RMT moves ~2x more between two stages.",
    )


def run_sec41_atoms(quick: bool = False) -> ExperimentResult:
    """Section 4.1 — every paper transaction mapped onto atom pipelines."""
    analyzer = AtomPipelineAnalyzer()
    rows = []
    for name in sorted(PROGRAM_SOURCES):
        kind = "shaping" if name in SHAPING_PROGRAMS else "scheduling"
        spec = spec_from_program(
            name, PROGRAM_SOURCES[name], state=PROGRAM_STATE[name], kind=kind
        )
        pipeline = analyzer.analyze(spec)
        rows.append(
            {
                "transaction": name,
                "kind": kind,
                "feasible": pipeline.feasible,
                "atoms": pipeline.total_atoms,
                "pipeline_depth": pipeline.pipeline_depth,
                "area_mm2": pipeline.area_mm2,
            }
        )
    return ExperimentResult(
        experiment_id="sec4.1",
        title="Section 4.1: transactions compiled onto Domino-style atoms",
        rows=rows,
        paper_reference="Section 4.1",
        notes=(
            "Every figure's transaction fits the atom vocabulary; the whole "
            "set uses a small fraction of the 300-atom budget."
        ),
    )


# --------------------------------------------------------------------------- #
# Behavioural experiments (Sections 2 and 3)                                   #
# --------------------------------------------------------------------------- #
LINK_RATE_BPS = 100e6


def run_fig1_wfq(quick: bool = False) -> ExperimentResult:
    """Figure 1 / Section 2.1 — STFQ delivers weighted fair shares."""
    duration = 0.03 if quick else 0.1
    weights = {"A": 1.0, "B": 2.0, "C": 3.0, "D": 4.0}
    tree = build_wfq_tree(weights)
    port = _run_overload(
        tree, {flow: LINK_RATE_BPS for flow in weights}, LINK_RATE_BPS, duration
    )
    shares = port.sink.share_by_flow(start=duration * 0.2, end=duration)
    total_weight = sum(weights.values())
    rows = [
        {
            "flow": flow,
            "weight": weight,
            "expected_share": weight / total_weight,
            "measured_share": shares.get(flow, 0.0),
        }
        for flow, weight in weights.items()
    ]
    fairness = weighted_jain_index(
        {flow: shares.get(flow, 0.0) for flow in weights}, weights
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="Figure 1: STFQ weighted max-min shares under overload",
        rows=rows,
        paper_reference="Figure 1, Section 2.1",
        notes=f"Weighted Jain index of the measured shares: {fairness:.4f}.",
    )


def run_fig3_hpfq(quick: bool = False) -> ExperimentResult:
    """Figure 3 / Section 2.2 — HPFQ hierarchy 1:9, 3:7, 4:6."""
    duration = 0.03 if quick else 0.05
    expected = {"A": 0.03, "B": 0.07, "C": 0.36, "D": 0.54}
    port = _run_overload(
        build_fig3_tree(), {flow: LINK_RATE_BPS for flow in "ABCD"},
        LINK_RATE_BPS, duration,
    )
    shares = port.sink.share_by_flow(start=duration * 0.2, end=duration)
    rows = [
        {
            "flow": flow,
            "expected_share": expected[flow],
            "measured_share": shares.get(flow, 0.0),
        }
        for flow in "ABCD"
    ]
    rows.append({
        "flow": "Left (A+B)",
        "expected_share": 0.10,
        "measured_share": shares.get("A", 0.0) + shares.get("B", 0.0),
    })
    rows.append({
        "flow": "Right (C+D)",
        "expected_share": 0.90,
        "measured_share": shares.get("C", 0.0) + shares.get("D", 0.0),
    })
    return ExperimentResult(
        experiment_id="fig3",
        title="Figure 3: HPFQ class and flow shares",
        rows=rows,
        paper_reference="Figure 3, Section 2.2",
        notes="Link splits 1:9 across classes, then 3:7 and 4:6 within them.",
    )


def run_fig4_shaping(quick: bool = False) -> ExperimentResult:
    """Figure 4 / Section 2.3 — Right class capped at 10 Mbit/s."""
    duration = 0.05 if quick else 0.1
    offered_loads = (5e6, 50e6) if quick else (5e6, 20e6, 50e6)
    rows = []
    for offered in offered_loads:
        port = _run_overload(
            build_fig4_tree(),
            {"A": 30e6, "B": 30e6, "C": offered, "D": offered},
            LINK_RATE_BPS,
            duration,
        )
        start = duration * 0.2
        right = sum(
            port.sink.throughput_bps(flow=flow, start=start, end=duration)
            for flow in "CD"
        )
        left = sum(
            port.sink.throughput_bps(flow=flow, start=start, end=duration)
            for flow in "AB"
        )
        rows.append(
            {
                "offered_right_Mbps": 2 * offered / 1e6,
                "cap_Mbps": FIG4_RIGHT_RATE_BPS / 1e6,
                "measured_right_Mbps": right / 1e6,
                "measured_left_Mbps": left / 1e6,
            }
        )
    return ExperimentResult(
        experiment_id="fig4",
        title="Figure 4: Hierarchies with Shaping (Right limited to 10 Mbit/s)",
        rows=rows,
        paper_reference="Figure 4, Section 2.3",
        notes=(
            "Right stays at the cap no matter the offered load; Left remains "
            "work conserving and absorbs the rest of the link."
        ),
    )


def run_fig6_lstf(quick: bool = False) -> ExperimentResult:
    """Figure 6 / Section 3.1 — LSTF across a 3-hop chain vs per-hop FIFO.

    Runs the ``fig6_chain`` fabric scenario: the urgent/bulk mix traverses
    three switches with cross traffic entering at every hop, the fabric
    stamps each hop's queueing delay into the packet, and LSTF re-ranks on
    remaining slack at every switch.  This is the claim the paper actually
    makes ("minimises urgent-packet delay *across hops*"), which a single
    congested port cannot exercise.
    """
    from ..net.scenarios import FIG6_CHAIN, URGENT_SLACK

    results = FIG6_CHAIN.run(quick=quick)
    rows = []
    details: Dict[str, Dict] = {"per_node_stats": {}}
    for name, result in results.items():
        urgent = result.flow_stats.get("urgent", {})
        bulk = result.flow_stats.get("bulk", {})
        max_urgent = urgent.get("max_delay")
        rows.append(
            {
                "scheduler": name,
                "hops": 3,
                "urgent_slack_budget_ms": URGENT_SLACK * 1e3,
                "max_urgent_delay_ms": max_urgent * 1e3 if max_urgent else None,
                "meets_budget": (max_urgent is not None
                                 and max_urgent <= URGENT_SLACK),
                "mean_bulk_delay_ms": (bulk.get("mean_delay") or 0.0) * 1e3,
                "urgent_packets": urgent.get("packets", 0),
            }
        )
        details["per_node_stats"][name] = result.stats_by_node
    return ExperimentResult(
        experiment_id="fig6",
        title="Figure 6: LSTF vs per-hop FIFO urgent delay on a 3-switch chain",
        rows=rows,
        paper_reference="Figure 6, Section 3.1",
        notes=(
            "End-to-end urgent delay over the fabric: LSTF meets the 20 ms "
            "slack budget at every hop count; per-hop FIFO misses it as "
            "queues build."
        ),
        details=details,
    )


def run_leaf_spine_fct(quick: bool = False) -> ExperimentResult:
    """Section 3.4 on a fabric — SRPT vs FIFO FCT over a 4x2 leaf-spine."""
    from ..net.scenarios import LEAF_SPINE_FCT

    results = LEAF_SPINE_FCT.run(quick=quick)
    rows = []
    details: Dict[str, Dict] = {"per_node_stats": {}}
    for name, result in results.items():
        fct, short = result.fct, result.fct_short
        rows.append(
            {
                "scheduler": name,
                "flows": fct.count if fct else 0,
                "mean_fct_ms": fct.mean * 1e3 if fct else None,
                "p99_fct_ms": fct.p99 * 1e3 if fct else None,
                "short_mean_fct_ms": short.mean * 1e3 if short else None,
                "short_p99_fct_ms": short.p99 * 1e3 if short else None,
                "delivered_packets": result.delivered(),
                "dropped_packets": result.conservation["dropped"],
            }
        )
        details["per_node_stats"][name] = result.stats_by_node
    return ExperimentResult(
        experiment_id="leaf_spine_fct",
        title="Section 3.4 on a fabric: SRPT vs FIFO FCT, 4-leaf/2-spine Clos",
        rows=rows,
        paper_reference="Section 3.4",
        notes=(
            "Identical heavy-tailed workload (two senders incast per "
            "receiver, ECMP over both spines) under both schedulers: SRPT "
            "shortens mean FCT and the short-flow tail."
        ),
        details=details,
    )


def run_chain_flap(quick: bool = False) -> ExperimentResult:
    """Robustness — LSTF vs FIFO on a chain with a flapping link."""
    from ..net.scenarios import CHAIN_FLAP

    results = CHAIN_FLAP.run(quick=quick)
    rows = []
    details: Dict[str, Dict] = {"conservation": {}}
    for name, result in results.items():
        counters = result.check_conservation()
        urgent = result.flow_stats.get("urgent", {})
        max_urgent = urgent.get("max_delay")
        rows.append(
            {
                "scheduler": name,
                "delivered": counters["delivered"],
                "dropped": counters["dropped"],
                "lost_to_faults": counters["lost_to_faults"],
                "topology_changes": result.fault_summary.get(
                    "topology_changes", 0),
                "max_urgent_delay_ms": (max_urgent * 1e3
                                        if max_urgent else None),
            }
        )
        details["conservation"][name] = counters
    return ExperimentResult(
        experiment_id="chain_flap",
        title="Fault injection: flapping chain link with lossy tail hop",
        rows=rows,
        paper_reference="robustness extension (not in paper)",
        notes=(
            "The s1-s2 link flaps down/up three times while s2-s3 drops "
            "0.5% of packets; the chain has no alternate path, so packets "
            "arriving during an outage blackhole into lost_to_faults and "
            "injected == delivered + dropped + lost_to_faults + in_flight "
            "is verified for every variant."
        ),
        details=details,
    )


def run_dead_spine(quick: bool = False) -> ExperimentResult:
    """Robustness — leaf-spine incast with one spine failing mid-run."""
    from ..net.scenarios import DEAD_SPINE

    results = DEAD_SPINE.run(quick=quick)
    rows = []
    details: Dict[str, Dict] = {"conservation": {}}
    for name, result in results.items():
        counters = result.check_conservation()
        fct = result.fct
        rows.append(
            {
                "scheduler": name,
                "delivered": counters["delivered"],
                "dropped": counters["dropped"],
                "lost_to_faults": counters["lost_to_faults"],
                "flows_completed": fct.count if fct else 0,
                "mean_fct_ms": fct.mean * 1e3 if fct else None,
            }
        )
        details["conservation"][name] = counters
    return ExperimentResult(
        experiment_id="dead_spine",
        title="Fault injection: spine switch dies under ECMP incast",
        rows=rows,
        paper_reference="robustness extension (not in paper)",
        notes=(
            "spine1 fails 15 ms in; ECMP routing reconverges onto spine0 "
            "and the incast completes over half the fabric capacity. "
            "Conservation is verified for every variant."
        ),
        details=details,
    )


def run_fig7_stop_and_go(quick: bool = False) -> ExperimentResult:
    """Figure 7 / Section 3.2 — framing bounds per-hop delay by 2T."""
    frame = 0.010
    link_rate = 100e6
    duration = 0.2 if quick else 0.5

    root = TreeNode(name="Root", scheduling=FIFOTransaction())
    root.add_child(
        TreeNode(
            name="Framed",
            predicate=MatchAll(),
            scheduling=FIFOTransaction(),
            shaping=StopAndGoShapingTransaction(frame_length=frame),
        )
    )
    sim = Simulator()
    port = OutputPort(sim, ProgrammableScheduler(ScheduleTree(root)), rate_bps=link_rate)
    spec = FlowSpec(name="bursty", rate_bps=40e6, packet_size=1500)
    PacketSource(
        sim, port,
        onoff_arrivals(spec, duration=duration, mean_on_s=0.005, mean_off_s=0.02,
                       seed=11),
    )
    sim.run(until=duration)
    delays = [p.total_delay for p in port.sink.packets]
    rows = [
        {
            "frame_T_ms": frame * 1e3,
            "packets": len(delays),
            "min_delay_ms": (min(delays) * 1e3) if delays else None,
            "max_delay_ms": (max(delays) * 1e3) if delays else None,
            "bound_2T_ms": worst_case_delay_bound(frame) * 1e3,
        }
    ]
    return ExperimentResult(
        experiment_id="fig7",
        title="Figure 7: Stop-and-Go per-hop delay bound",
        rows=rows,
        paper_reference="Figure 7, Section 3.2",
        notes=(
            "Every packet departs at the end of its arrival frame: delay is "
            "bounded by 2T and never ~0 (non-work-conserving)."
        ),
    )


def run_fig8_min_rate(quick: bool = False) -> ExperimentResult:
    """Figure 8 / Section 3.3 — a 20 Mbit/s guarantee under overload."""
    duration = 0.05 if quick else 0.1
    link_rate = 50e6
    guarantee = 20e6
    tree = build_min_rate_tree(
        ["guaranteed", "bulk"], {"guaranteed": guarantee}, burst_bytes=6000
    )
    port = _run_overload(
        tree, {"guaranteed": 25e6, "bulk": 100e6}, link_rate, duration
    )
    start = duration * 0.2
    guaranteed_rate = port.sink.throughput_bps(flow="guaranteed", start=start, end=duration)
    bulk_rate = port.sink.throughput_bps(flow="bulk", start=start, end=duration)
    rows = [
        {"flow": "guaranteed", "offered_Mbps": 25.0, "guarantee_Mbps": guarantee / 1e6,
         "measured_Mbps": guaranteed_rate / 1e6},
        {"flow": "bulk", "offered_Mbps": 100.0, "guarantee_Mbps": None,
         "measured_Mbps": bulk_rate / 1e6},
    ]
    return ExperimentResult(
        experiment_id="fig8",
        title="Figure 8: minimum-rate guarantee under overload",
        rows=rows,
        paper_reference="Figure 8, Section 3.3",
        notes=(
            "The guaranteed flow holds its floor; the best-effort flow soaks "
            "up the remaining link capacity."
        ),
    )


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: identifier, short description, runner."""

    experiment_id: str
    description: str
    paper_reference: str
    runner: Callable[[bool], ExperimentResult]


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec("table1", "5-block PIFO mesh chip-area breakdown",
                       "Table 1", run_table1),
        ExperimentSpec("table2", "Flow-scheduler scaling with number of flows",
                       "Table 2", run_table2),
        ExperimentSpec("sec5.3", "Flow-scheduler parameter variations",
                       "Section 5.3", run_sec53_variations),
        ExperimentSpec("sec5.4", "Full-mesh wiring between PIFO blocks",
                       "Section 5.4", run_sec54_wiring),
        ExperimentSpec("sec4.1", "Transactions mapped onto Domino-style atoms",
                       "Section 4.1", run_sec41_atoms),
        ExperimentSpec("fig1", "STFQ weighted fair shares",
                       "Figure 1", run_fig1_wfq),
        ExperimentSpec("fig3", "HPFQ hierarchical shares",
                       "Figure 3", run_fig3_hpfq),
        ExperimentSpec("fig4", "Hierarchies with Shaping rate cap",
                       "Figure 4", run_fig4_shaping),
        ExperimentSpec("fig6", "LSTF vs per-hop FIFO on a 3-switch chain",
                       "Figure 6", run_fig6_lstf),
        ExperimentSpec("leaf_spine_fct", "SRPT vs FIFO FCT on a leaf-spine fabric",
                       "Section 3.4", run_leaf_spine_fct),
        ExperimentSpec("chain_flap", "Fault injection: flapping chain link",
                       "robustness extension", run_chain_flap),
        ExperimentSpec("dead_spine", "Fault injection: spine switch failure",
                       "robustness extension", run_dead_spine),
        ExperimentSpec("fig7", "Stop-and-Go delay bound",
                       "Figure 7", run_fig7_stop_and_go),
        ExperimentSpec("fig8", "Minimum-rate guarantee under overload",
                       "Figure 8", run_fig8_min_rate),
    )
}


def list_experiments() -> List[ExperimentSpec]:
    """Registry entries in a stable display order."""
    return [EXPERIMENTS[key] for key in EXPERIMENTS]


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up one experiment; raises ``KeyError`` with the known ids."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known experiments: {known}"
        ) from None


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by identifier."""
    return get_experiment(experiment_id).runner(quick)
