"""Tests for the quantized bucket-queue backend (real-valued ranks)."""

from __future__ import annotations

import pytest

from repro.core import QuantizedBucketedPIFO, make_pifo
from repro.core.backend import backend_requires_integer_ranks


class TestQuantizedBucketedPIFO:
    def test_registry_names(self):
        assert type(make_pifo("quantized")) is QuantizedBucketedPIFO
        assert type(make_pifo("quantized_bucket")) is QuantizedBucketedPIFO

    def test_accepts_float_ranks(self):
        pifo = QuantizedBucketedPIFO()
        pifo.push("late", 0.5)
        pifo.push("early", 0.25)
        assert pifo.pop() == "early"
        assert pifo.pop() == "late"

    def test_peek_rank_is_unquantised(self):
        pifo = QuantizedBucketedPIFO(quantum=1.0)
        pifo.push("x", 0.75)
        assert pifo.peek_rank() == 0.75

    def test_within_quantum_fifo_order(self):
        # Both ranks land in slot 0 of a 1-second quantum: FIFO applies
        # even though the second push has the lower exact rank.
        pifo = QuantizedBucketedPIFO(quantum=1.0)
        pifo.push("first", 0.9)
        pifo.push("second", 0.1)
        assert pifo.pop() == "first"
        assert pifo.pop() == "second"

    def test_cross_quantum_rank_order(self):
        pifo = QuantizedBucketedPIFO(quantum=1e-6)
        ranks = [0.003, 0.001, 0.002, 0.0005]
        for rank in ranks:
            pifo.push(rank, rank)
        assert pifo.drain() == sorted(ranks)

    def test_not_integer_only(self):
        assert not backend_requires_integer_ranks("quantized")
        assert backend_requires_integer_ranks("bucketed")

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            QuantizedBucketedPIFO(quantum=0.0)
        with pytest.raises(ValueError):
            QuantizedBucketedPIFO(quantum=-1e-6)

    def test_negative_ranks_order(self):
        pifo = QuantizedBucketedPIFO(quantum=0.5)
        pifo.push("b", -0.2)
        pifo.push("a", -1.7)
        pifo.push("c", 0.3)
        assert pifo.drain() == ["a", "b", "c"]
