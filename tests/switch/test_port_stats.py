"""Tests for heterogeneous PortSpec switches, per-port stat breakdowns and
the dst-based forwarding path on SharedMemorySwitch."""

from __future__ import annotations

import pytest

from repro.algorithms import FIFOTransaction
from repro.core import Packet, ProgrammableScheduler, single_node_tree
from repro.exceptions import RoutingError
from repro.sim import Simulator
from repro.switch import (
    PortSpec,
    SharedBuffer,
    SharedMemorySwitch,
    StaticThresholdPolicy,
)


def fifo_factory(port):
    return ProgrammableScheduler(single_node_tree(FIFOTransaction()))


def make_switch(sim, specs=None, **kwargs):
    return SharedMemorySwitch(
        sim, fifo_factory,
        port_specs=specs or [PortSpec("a", 1e6), PortSpec("b", 2e6)],
        **kwargs,
    )


class TestPortSpecs:
    def test_heterogeneous_rates(self):
        sim = Simulator()
        switch = make_switch(sim)
        assert switch.port("a").rate_bps == 1e6
        assert switch.port("b").rate_bps == 2e6

    def test_default_ports_unchanged(self):
        sim = Simulator()
        switch = SharedMemorySwitch(sim, fifo_factory, port_count=4,
                                    port_rate_bps=5e9)
        assert switch.port_names() == ["port0", "port1", "port2", "port3"]
        assert all(p.rate_bps == 5e9 for p in switch.ports.values())

    def test_duplicate_or_empty_specs_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_switch(sim, specs=[PortSpec("x"), PortSpec("x")])
        with pytest.raises(ValueError):
            SharedMemorySwitch(sim, fifo_factory, port_specs=[])

    def test_delivery_hook_threads_through(self):
        sim = Simulator()
        delivered = []
        switch = make_switch(
            sim, specs=[PortSpec("out", 1e6, delivery=delivered.append)]
        )
        switch.receive(Packet(flow="f", length=500), "out")
        sim.run()
        assert len(delivered) == 1


class TestPerPortStats:
    def test_transmitted_breakdown(self):
        sim = Simulator()
        switch = make_switch(sim)
        for _ in range(3):
            switch.receive(Packet(flow="f", length=500), "a")
        switch.receive(Packet(flow="f", length=500), "b")
        sim.run()
        assert switch.stats.transmitted == 4
        assert switch.stats.port("a").transmitted == 3
        assert switch.stats.port("b").transmitted == 1

    def test_admission_drop_breakdown(self):
        sim = Simulator()
        buffer = SharedBuffer(capacity_bytes=2000, cell_bytes=200)
        switch = make_switch(sim, buffer=buffer,
                             admission=StaticThresholdPolicy(port_limit_cells=1))
        assert switch.receive(Packet(flow="f", length=200), "a")
        assert not switch.receive(Packet(flow="f", length=200), "a")
        assert switch.stats.dropped_admission == 1
        assert switch.stats.port("a").dropped_admission == 1
        assert switch.stats.port("b").dropped_admission == 0
        assert switch.stats.dropped == 1

    def test_per_port_dict_is_json_friendly(self):
        sim = Simulator()
        switch = make_switch(sim)
        switch.receive(Packet(flow="f", length=500), "a")
        sim.run()
        breakdown = switch.stats.per_port_dict()
        assert breakdown["a"] == {
            "transmitted": 1,
            "dropped_admission": 0,
            "dropped_scheduler": 0,
        }


class TestForwarding:
    def test_install_route_and_forward(self):
        sim = Simulator()
        switch = make_switch(sim)
        switch.install_route("hostX", ["a"])
        assert switch.forward(Packet(flow="f", length=500, dst="hostX"))
        sim.run()
        assert switch.stats.port("a").transmitted == 1

    def test_route_validation(self):
        sim = Simulator()
        switch = make_switch(sim)
        with pytest.raises(RoutingError):
            switch.install_route("hostX", ["nonexistent"])
        with pytest.raises(RoutingError):
            switch.install_route("hostX", [])

    def test_forward_without_route_or_dst(self):
        sim = Simulator()
        switch = make_switch(sim)
        with pytest.raises(RoutingError):
            switch.forward(Packet(flow="f", length=500))
        with pytest.raises(RoutingError):
            switch.forward(Packet(flow="f", length=500, dst="unrouted"))

    def test_ecmp_selection_is_stable_per_flow(self):
        sim = Simulator()
        switch = make_switch(sim)
        switch.install_route("hostX", ["a", "b"])
        picks = {
            flow: switch.select_port(Packet(flow=flow, length=64, dst="hostX"))
            for flow in ("f0", "f1", "f2", "f3", "f4", "f5")
        }
        # Deterministic: re-selection gives identical answers.
        for flow, port in picks.items():
            assert switch.select_port(
                Packet(flow=flow, length=64, dst="hostX")
            ) == port
        # And the hash actually spreads flows over both ports.
        assert set(picks.values()) == {"a", "b"}
