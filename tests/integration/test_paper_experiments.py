"""Integration tests tying whole-paper experiments together.

These are smaller/faster versions of the benchmark experiments: Figure 2's
tree-order encoding, the Section 3.5 limitation examples, and end-to-end
simulation runs for the headline behavioural claims.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    SRPTTransaction,
    build_fig3_tree,
    build_fig4_tree,
    build_wfq_tree,
)
from repro.baselines import GPSFluidSimulator, HierarchicalDRR
from repro.core import PIFO, Packet, ProgrammableScheduler, single_node_tree
from repro.metrics import expected_weighted_shares, max_share_error, max_windowed_rate_bps
from repro.sim import OutputPort, PacketSource, Simulator
from repro.traffic import FlowSpec, cbr_arrivals, merge_arrivals


class TestFig2TreeOrderEncoding:
    def test_instantaneous_order_matches_figure(self):
        """Figure 2: root PIFO = [L, R, R, L], PIFO-L = [P3, P4],
        PIFO-R = [P1, P2] encodes the order P3, P1, P2, P4."""
        root = PIFO(name="root")
        left = PIFO(name="L")
        right = PIFO(name="R")
        for index, child in enumerate(["L", "R", "R", "L"]):
            root.push(child, rank=index)
        left.push("P3", 0)
        left.push("P4", 1)
        right.push("P1", 0)
        right.push("P2", 1)
        order = []
        while root:
            child = root.pop()
            order.append(left.pop() if child == "L" else right.pop())
        assert order == ["P3", "P1", "P2", "P4"]


class TestSec35Limitations:
    def test_pfabric_reordering_not_expressible_by_a_single_pifo(self):
        """The paper's Section 3.5 example: after enqueuing p0(7), p1(9),
        p1(8), p1(6), pFabric's desired order is p1(9), p1(8), p1(6), p0(7)
        (all of flow 1 first), but a PIFO cannot change the order of already
        buffered elements, so SRPT-on-PIFO yields a different order."""
        scheduler = ProgrammableScheduler(single_node_tree(SRPTTransaction()))
        arrivals = [("p0", 7), ("p1", 9), ("p1", 8), ("p1", 6)]
        for flow, remaining in arrivals:
            scheduler.enqueue(
                Packet(flow=flow, length=100,
                       fields={"remaining_size": remaining, "label": f"{flow}({remaining})"})
            )
        pifo_order = [p.get("label") for p in scheduler.drain()]
        pfabric_order = ["p1(9)", "p1(8)", "p1(6)", "p0(7)"]
        assert pifo_order != pfabric_order
        # What the PIFO *does* produce: the buffered prefix order is frozen;
        # only the new arrival chooses its own position.
        assert pifo_order == ["p1(6)", "p0(7)", "p1(8)", "p1(9)"]

    def test_pifo_cannot_reorder_buffered_elements_of_a_flow(self):
        pifo = PIFO()
        pifo.push("p1(9)", 9)
        pifo.push("p1(8)", 8)
        before = list(pifo)
        pifo.push("p1(6)", 6)
        after = [e for e in pifo if e != "p1(6)"]
        assert before == after  # relative order of old elements is unchanged


class TestEndToEndBehaviour:
    def run_port(self, tree, flow_rates, link_rate, duration):
        sim = Simulator()
        port = OutputPort(sim, ProgrammableScheduler(tree), rate_bps=link_rate)
        streams = [
            cbr_arrivals(FlowSpec(name=f, rate_bps=r, packet_size=1500), duration)
            for f, r in flow_rates.items()
        ]
        PacketSource(sim, port, merge_arrivals(*streams))
        sim.run(until=duration)
        return port

    def test_wfq_shares_track_gps_fluid_reference(self):
        weights = {"A": 1.0, "B": 2.0, "C": 5.0}
        tree = build_wfq_tree(weights)
        port = self.run_port(tree, {f: 60e6 for f in weights}, 60e6, 0.05)
        measured = {
            flow: port.sink.throughput_bps(flow=flow, start=0.01, end=0.05)
            for flow in weights
        }
        gps = GPSFluidSimulator(link_rate_bps=60e6, weights=weights)
        arrivals = list(merge_arrivals(*[
            cbr_arrivals(FlowSpec(name=f, rate_bps=60e6, packet_size=1500), 0.05)
            for f in weights
        ]))
        gps_result = gps.run(arrivals, horizon=0.05)
        gps_shares = {f: gps_result.share_of(f) for f in weights}
        assert max_share_error(measured, gps_shares) < 0.05

    def test_hpfq_shares_match_hierarchy_and_hdrr_baseline(self):
        flow_rates = {f: 100e6 for f in "ABCD"}
        port = self.run_port(build_fig3_tree(), flow_rates, 100e6, 0.05)
        shares = port.sink.share_by_flow(start=0.01, end=0.05)
        expected = {"A": 0.03, "B": 0.07, "C": 0.36, "D": 0.54}
        assert max_share_error(shares, expected) < 0.03

        # The classic hierarchical DRR baseline lands on the same split.
        sim = Simulator()
        hdrr = HierarchicalDRR(
            class_weights={"Left": 1.0, "Right": 9.0},
            class_flows={"Left": {"A": 3.0, "B": 7.0}, "Right": {"C": 4.0, "D": 6.0}},
        )
        port2 = OutputPort(sim, hdrr, rate_bps=100e6)
        streams = [
            cbr_arrivals(FlowSpec(name=f, rate_bps=100e6, packet_size=1500), 0.05)
            for f in "ABCD"
        ]
        PacketSource(sim, port2, merge_arrivals(*streams))
        sim.run(until=0.05)
        hdrr_shares = port2.sink.share_by_flow(start=0.01, end=0.05)
        assert max_share_error(hdrr_shares, expected) < 0.06

    def test_fig4_right_class_capped_at_10mbps(self):
        flow_rates = {f: 50e6 for f in "ABCD"}
        port = self.run_port(build_fig4_tree(), flow_rates, 100e6, 0.1)
        right_peak = max_windowed_rate_bps(
            port.sink.packets, window_s=0.02, flows=["C", "D"], skip_first_windows=1
        )
        assert right_peak <= 10e6 * 1.15
        left_rate = port.sink.throughput_bps(flow="A", start=0.02, end=0.1) + \
            port.sink.throughput_bps(flow="B", start=0.02, end=0.1)
        assert left_rate > 60e6  # Left absorbs the unused capacity

    def test_expected_weighted_shares_helper_consistency(self):
        expected = expected_weighted_shares({"A": 1, "B": 9})
        assert expected["B"] == pytest.approx(0.9)
