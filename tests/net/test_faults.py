"""Fault-injection subsystem: plans, blackholing, reconvergence, lockstep.

Pins the tentpole contract of the faults layer:

* a :class:`FaultPlan` validates against the topology before anything runs;
* a dead link blackholes the packet being serialised onto it into
  ``lost_to_faults`` while *queued* packets stay buffered (``in_flight``)
  and burst out on recovery;
* a dead switch darkens every adjacent link and ECMP reconverges onto the
  survivors;
* probabilistic loss is deterministic in the plan seed;
* the conservation identity
  ``injected == delivered + dropped + lost_to_faults + in_flight``
  holds under hypothesis-randomised fault plans on *both* datapaths
  (fused tree kernels vs fully interpreted), which stay lockstep-equal.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import FIFOTransaction
from repro.core import ProgrammableScheduler, single_node_tree
from repro.core.packet import Packet
from repro.exceptions import ConservationError, FaultError
from repro.net import (
    Fabric,
    FaultPlan,
    LinkDown,
    LinkLoss,
    LinkUp,
    SwitchDown,
    SwitchUp,
    flapping_link,
    get_scenario,
    linear_chain,
)
from repro.net.scenario import ScenarioResult
from repro.sim import Simulator


def fifo_factory(tree_kernel=None):
    def factory(switch, port):
        return ProgrammableScheduler(single_node_tree(FIFOTransaction()),
                                     tree_kernel=tree_kernel)
    return factory


def chain_fabric(plan, link_rate_bps=1e7, hops=2, tree_kernel=None):
    sim = Simulator()
    fabric = Fabric(
        sim,
        linear_chain(hops, link_rate_bps=link_rate_bps),
        fifo_factory(tree_kernel),
        fault_plan=plan,
        fused_delivery=None if tree_kernel is not False else False,
    )
    return sim, fabric


def back_to_back(count, length=1500, gap=0.0005):
    """Packets addressed h_src -> h_dst arriving every ``gap`` seconds."""
    return [(i * gap, Packet(flow="f", length=length, dst="h_dst"))
            for i in range(count)]


def assert_conserved(fabric):
    c = fabric.conservation_check()
    assert c["injected"] == (c["delivered"] + c["dropped"]
                             + c["lost_to_faults"] + c["in_flight"]), c
    return c


class TestFaultPlanValidation:
    def test_unknown_link_raises(self):
        plan = FaultPlan(events=[LinkDown(0.01, "s1", "s9")])
        with pytest.raises(FaultError, match="unknown node"):
            plan.validate(linear_chain(2, link_rate_bps=1e6))
        plan = FaultPlan(events=[LinkDown(0.01, "s1", "h_dst")])
        with pytest.raises(FaultError, match="no link"):
            plan.validate(linear_chain(2, link_rate_bps=1e6))

    def test_switch_event_naming_host_raises(self):
        plan = FaultPlan(events=[SwitchDown(0.01, "h_src")])
        with pytest.raises(FaultError, match="is a host"):
            plan.validate(linear_chain(2, link_rate_bps=1e6))

    def test_negative_time_raises(self):
        plan = FaultPlan(events=[LinkDown(-0.1, "s1", "s2")])
        with pytest.raises(FaultError, match=">= 0"):
            plan.validate(linear_chain(2, link_rate_bps=1e6))

    def test_loss_rate_out_of_range_raises(self):
        plan = FaultPlan(losses=[LinkLoss("s1", "s2", rate=1.5)])
        with pytest.raises(FaultError, match=r"\[0, 1\]"):
            plan.validate(linear_chain(2, link_rate_bps=1e6))

    def test_loss_window_backwards_raises(self):
        plan = FaultPlan(losses=[LinkLoss("s1", "s2", rate=0.1,
                                          start=0.2, end=0.1)])
        with pytest.raises(FaultError, match="ends before"):
            plan.validate(linear_chain(2, link_rate_bps=1e6))

    def test_flapping_link_validates_periods(self):
        with pytest.raises(FaultError, match="downtime < period"):
            flapping_link("a", "b", first_down=0.0, downtime=0.05,
                          period=0.05, cycles=1)
        events = flapping_link("a", "b", first_down=0.01, downtime=0.02,
                               period=0.05, cycles=2)
        assert [type(e) for e in events] == [LinkDown, LinkUp] * 2
        assert events[2].time == pytest.approx(0.06)

    def test_valid_plan_passes_and_empty_detected(self):
        network = linear_chain(2, link_rate_bps=1e6)
        FaultPlan(events=[SwitchDown(0.01, "s2"), SwitchUp(0.02, "s2")],
                  losses=[LinkLoss("s1", "s2", rate=0.5)]).validate(network)
        assert FaultPlan().empty()
        assert not FaultPlan(events=[LinkDown(0.0, "s1", "s2")]).empty()

    def test_fabric_validates_plan_at_construction(self):
        with pytest.raises(FaultError, match="unknown node"):
            chain_fabric(FaultPlan(events=[LinkDown(0.0, "s1", "s9")]))


class TestLinkDownBlackhole:
    def test_in_flight_packet_lost_queued_packets_stranded(self):
        # 1500 B at 10 Mbit/s = 1.2 ms serialisation: packets arrive every
        # 0.5 ms so the queue behind the first hop builds; that link dies
        # mid-run and never recovers, stranding the backlog.
        plan = FaultPlan(events=[LinkDown(0.004, "h_src", "s1")])
        sim, fabric = chain_fabric(plan)
        fabric.attach_source("h_src", back_to_back(20))
        fabric.run(until=0.2, drain=True)
        c = assert_conserved(fabric)
        assert c["lost_to_faults"] >= 1          # serialising at fault time
        assert c["in_flight"] > 0                # stranded behind the dead link
        assert c["delivered"] + c["lost_to_faults"] + c["in_flight"] == 20
        assert fabric.fault_summary()["lost_by_cause"]["link_down"] >= 1
        assert ("h_src", "s1") in fabric.fault_summary()["down_links"]

    def test_mid_chain_outage_blackholes_unroutable_arrivals(self):
        # Killing s1-s2 leaves the already-launched traffic with no path:
        # one packet dies on the wire, the rest blackhole as no_route at
        # s1 — never silently lost, never stuck.
        plan = FaultPlan(events=[LinkDown(0.004, "s1", "s2")])
        sim, fabric = chain_fabric(plan)
        fabric.attach_source("h_src", back_to_back(20))
        fabric.run(until=0.2, drain=True)
        c = assert_conserved(fabric)
        assert c["delivered"] + c["lost_to_faults"] == 20
        causes = fabric.fault_summary()["lost_by_cause"]
        assert causes["link_down"] >= 1
        assert causes["no_route"] >= 1

    def test_backlog_drains_after_recovery(self):
        # The whole burst is injected (and queued at the first hop) before
        # the outage starts, so the only packets lost are the one on the
        # transmitter and at most one on the wire; the rest wait out the
        # 16 ms of darkness and burst through on recovery.
        plan = FaultPlan(events=[LinkDown(0.004, "h_src", "s1"),
                                 LinkUp(0.02, "h_src", "s1")])
        sim, fabric = chain_fabric(plan)
        fabric.attach_source("h_src", back_to_back(20, gap=0.0001))
        fabric.run(until=0.2, drain=True)
        c = assert_conserved(fabric)
        assert c["in_flight"] == 0               # recovery burst flushed all
        assert c["delivered"] + c["lost_to_faults"] == 20
        assert 1 <= c["lost_to_faults"] <= 2
        assert fabric.fault_summary()["topology_changes"] == 2
        assert fabric.fault_summary()["down_links"] == []

    def test_unreachable_destination_counts_no_route(self):
        # Injections *during* the outage have no route at all (the chain
        # has no alternate path), so they blackhole at injection.
        plan = FaultPlan(events=[LinkDown(0.0, "s1", "s2")])
        sim, fabric = chain_fabric(plan)
        fabric.attach_source("h_src", back_to_back(5, gap=0.002))
        fabric.run(until=0.1, drain=True)
        c = assert_conserved(fabric)
        assert c["delivered"] == 0
        assert fabric.fault_summary()["lost_by_cause"]["no_route"] == 5


class TestSwitchDown:
    def test_dead_spine_reroutes_onto_survivor(self):
        results = get_scenario("dead_spine").run(quick=True, variant="SRPT")
        result = results["SRPT"]
        result.check_conservation()
        assert result.fault_summary["down_switches"] == ["spine1"]
        spine0 = result.stats_by_node["spine0"]
        spine1 = result.stats_by_node["spine1"]
        # After t=15 ms everything crosses spine0; spine1 froze at death.
        assert spine0["received"] > spine1["received"] > 0

    def test_switch_down_darkens_adjacent_links(self):
        plan = FaultPlan(events=[SwitchDown(0.004, "s2")])
        sim, fabric = chain_fabric(plan, hops=3)
        fabric.attach_source("h_src", back_to_back(20))
        fabric.run(until=0.2, drain=True)
        c = assert_conserved(fabric)
        assert c["delivered"] < 20
        summary = fabric.fault_summary()
        assert summary["down_switches"] == ["s2"]
        cause_total = sum(summary["lost_by_cause"].values())
        assert cause_total == c["lost_to_faults"] > 0

    def test_switch_recovery_restores_delivery(self):
        plan = FaultPlan(events=[SwitchDown(0.004, "s2"),
                                 SwitchUp(0.02, "s2")])
        sim, fabric = chain_fabric(plan, hops=3)
        fabric.attach_source("h_src", back_to_back(20))
        fabric.run(until=0.3, drain=True)
        c = assert_conserved(fabric)
        assert c["in_flight"] == 0
        assert c["delivered"] > 0
        assert c["delivered"] + c["lost_to_faults"] == 20


class TestLinkLoss:
    def test_rate_one_drops_every_crossing_packet(self):
        plan = FaultPlan(losses=[LinkLoss("s1", "s2", rate=1.0)])
        sim, fabric = chain_fabric(plan)
        fabric.attach_source("h_src", back_to_back(10, gap=0.002))
        fabric.run(until=0.2, drain=True)
        c = assert_conserved(fabric)
        assert c["delivered"] == 0
        assert fabric.fault_summary()["lost_by_cause"]["loss"] == 10

    def test_loss_is_deterministic_in_the_plan_seed(self):
        def run(seed):
            plan = FaultPlan(losses=[LinkLoss("s1", "s2", rate=0.4)],
                             seed=seed)
            sim, fabric = chain_fabric(plan)
            fabric.attach_source("h_src", back_to_back(50, gap=0.002))
            fabric.run(until=0.5, drain=True)
            assert_conserved(fabric)
            return fabric.conservation_check()

        assert run(0) == run(0)
        # A different seed draws a different loss pattern (with 50 draws at
        # 40% the chance of an identical outcome is negligible).
        assert run(0) != run(1)

    def test_loss_window_bounds_apply(self):
        plan = FaultPlan(losses=[LinkLoss("s1", "s2", rate=1.0,
                                          start=0.5, end=0.6)])
        sim, fabric = chain_fabric(plan)
        fabric.attach_source("h_src", back_to_back(10, gap=0.002))
        fabric.run(until=0.2, drain=True)
        c = assert_conserved(fabric)
        assert c["delivered"] == 10              # window never opened
        assert c["lost_to_faults"] == 0


class TestScenarioConservation:
    @pytest.mark.parametrize("name", ["chain_flap", "dead_spine"])
    def test_fault_scenarios_registered_and_conserve(self, name):
        scenario = get_scenario(name)
        assert scenario.fault_plan is not None
        results = scenario.run(quick=True)
        for result in results.values():
            counters = result.check_conservation()
            assert counters["injected"] > 0

    def test_chain_flap_loses_packets_to_faults(self):
        results = get_scenario("chain_flap").run(quick=True, variant="FIFO")
        result = results["FIFO"]
        assert result.lost_to_faults() > 0
        assert result.fault_summary["topology_changes"] > 0

    def test_check_conservation_raises_on_leak(self):
        result = ScenarioResult(
            scenario="synthetic", variant="A", duration=1.0,
            conservation={"injected": 10, "delivered": 8, "dropped": 0,
                          "lost_to_faults": 0, "in_flight": 1},
            flow_stats={}, fct=None, fct_short=None, stats_by_node={},
        )
        with pytest.raises(ConservationError, match="leaked packets"):
            result.check_conservation()

    @pytest.mark.parametrize("name", ["chain_flap", "dead_spine"])
    def test_fault_scenarios_lockstep_fused_vs_interpreted(self, name):
        scenario = get_scenario(name)
        fused = scenario.run(quick=True)
        plain = scenario.run(quick=True, tree_kernel=False)
        for variant in fused:
            a, b = fused[variant], plain[variant]
            assert a.conservation == b.conservation
            assert a.flow_stats == b.flow_stats
            assert a.fct == b.fct
            assert a.fault_summary == b.fault_summary


# ----------------------------------------------------------------------- #
# Hypothesis: conservation + lockstep under randomised fault plans         #
# ----------------------------------------------------------------------- #
arrival_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),    # gap in 10 us units
        st.integers(min_value=64, max_value=1500),  # length
    ),
    min_size=1,
    max_size=40,
)

fault_plans = st.builds(
    FaultPlan,
    events=st.lists(
        st.one_of(
            st.builds(LinkDown,
                      time=st.floats(min_value=0.0, max_value=0.02),
                      src=st.just("s1"), dst=st.just("s2")),
            st.builds(LinkUp,
                      time=st.floats(min_value=0.0, max_value=0.02),
                      src=st.just("s1"), dst=st.just("s2")),
            st.builds(SwitchDown,
                      time=st.floats(min_value=0.0, max_value=0.02),
                      node=st.just("s2")),
            st.builds(SwitchUp,
                      time=st.floats(min_value=0.0, max_value=0.02),
                      node=st.just("s2")),
        ),
        max_size=6,
    ),
    losses=st.lists(
        st.builds(LinkLoss,
                  src=st.just("s2"), dst=st.just("s3"),
                  rate=st.floats(min_value=0.0, max_value=1.0)),
        max_size=2,
    ),
    seed=st.integers(min_value=0, max_value=3),
)


def _build_arrivals(steps):
    out, time = [], Fraction(0)
    for gap, length in steps:
        time += Fraction(gap, 100_000)
        out.append((float(time),
                    Packet(flow="f", length=length, dst="h_dst")))
    return out


def _run_faulted_chain(steps, plan, tree_kernel):
    sim, fabric = chain_fabric(plan, link_rate_bps=1e8, hops=3,
                               tree_kernel=tree_kernel)
    fabric.attach_source("h_src", _build_arrivals(steps))
    fabric.run(until=0.05, drain=True)
    return fabric


class TestHypothesisFaultConservation:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(steps=arrival_steps, plan=fault_plans)
    def test_conservation_and_lockstep_under_random_plans(self, steps, plan):
        fused = _run_faulted_chain(steps, plan, tree_kernel=True)
        plain = _run_faulted_chain(steps, plan, tree_kernel=False)
        for fabric in (fused, plain):
            c = assert_conserved(fabric)
            assert c["injected"] == len(steps)
        assert fused.conservation_check() == plain.conservation_check()
        assert fused.fault_summary() == plain.fault_summary()
        assert (fused.sink("h_dst").departure_order()
                == plain.sink("h_dst").departure_order())
