"""Tests for Service-Curve Earliest Deadline First (Section 3.4)."""

from __future__ import annotations

import pytest

from repro.algorithms import LatencyRateCurve, SCEDTransaction, admissible
from repro.core import Packet, ProgrammableScheduler, TransactionContext, single_node_tree
from repro.exceptions import TransactionError


def ctx(flow, length, now=0.0):
    return TransactionContext(now=now, element_flow=flow, element_length=length)


class TestLatencyRateCurve:
    def test_service_function(self):
        curve = LatencyRateCurve(rate_bps=8e6, latency_s=0.001)
        assert curve.service(0.0005) == 0.0
        assert curve.service(0.002) == pytest.approx(8e6 * 0.001)

    def test_transmission_time(self):
        curve = LatencyRateCurve(rate_bps=8e6)
        assert curve.transmission_time(1000) == pytest.approx(0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyRateCurve(rate_bps=0)
        with pytest.raises(ValueError):
            LatencyRateCurve(rate_bps=1e6, latency_s=-1)


class TestSCEDTransaction:
    def test_first_packet_deadline_includes_latency(self):
        txn = SCEDTransaction({"A": LatencyRateCurve(rate_bps=8e6, latency_s=0.002)})
        deadline = txn(Packet(flow="A", length=1000), ctx("A", 1000, now=1.0))
        assert deadline == pytest.approx(1.0 + 0.002 + 0.001)

    def test_busy_period_deadlines_advance_by_service_time(self):
        txn = SCEDTransaction({"A": LatencyRateCurve(rate_bps=8e6)})
        d1 = txn(Packet(flow="A", length=1000), ctx("A", 1000, now=0.0))
        d2 = txn(Packet(flow="A", length=1000), ctx("A", 1000, now=0.0))
        assert d2 - d1 == pytest.approx(0.001)

    def test_new_busy_period_resets_reference_to_now(self):
        txn = SCEDTransaction({"A": LatencyRateCurve(rate_bps=8e6)})
        txn(Packet(flow="A", length=1000), ctx("A", 1000, now=0.0))
        deadline = txn(Packet(flow="A", length=1000), ctx("A", 1000, now=5.0))
        assert deadline == pytest.approx(5.001)

    def test_unreserved_flow_raises_without_default(self):
        txn = SCEDTransaction({"A": LatencyRateCurve(rate_bps=8e6)})
        with pytest.raises(TransactionError):
            txn(Packet(flow="B", length=1000), ctx("B", 1000))

    def test_default_curve_used_for_unreserved_flow(self):
        txn = SCEDTransaction({}, default_curve=LatencyRateCurve(rate_bps=1e6))
        deadline = txn(Packet(flow="B", length=1000), ctx("B", 1000, now=0.0))
        assert deadline == pytest.approx(0.008)

    def test_flow_with_larger_reservation_gets_earlier_deadlines(self):
        txn = SCEDTransaction(
            {
                "fast": LatencyRateCurve(rate_bps=80e6),
                "slow": LatencyRateCurve(rate_bps=8e6),
            }
        )
        scheduler = ProgrammableScheduler(single_node_tree(txn))
        # Interleave arrivals; the fast flow's deadlines advance 10x slower,
        # so it should receive roughly 10x the service in the drain order.
        for _ in range(11):
            scheduler.enqueue(Packet(flow="fast", length=1000), now=0.0)
            scheduler.enqueue(Packet(flow="slow", length=1000), now=0.0)
        window = [p.flow for p in scheduler.drain(now=0.0)][:11]
        assert window.count("fast") == 10
        assert window.count("slow") == 1


class TestAdmissibility:
    def test_admissible_within_capacity(self):
        curves = {"A": LatencyRateCurve(6e9), "B": LatencyRateCurve(3e9)}
        assert admissible(curves, link_rate_bps=10e9)

    def test_inadmissible_when_oversubscribed(self):
        curves = {"A": LatencyRateCurve(6e9), "B": LatencyRateCurve(5e9)}
        assert not admissible(curves, link_rate_bps=10e9)
