"""A shared-memory output-queued switch model.

Ties the substrate together: N output ports, each with its own programmable
scheduler draining a fixed-rate link, all sharing one packet buffer guarded
by an admission policy — the architecture the paper targets (a 64-port
10 Gbit/s shared-memory switch).

The switch does not model parsing or the match-action pipeline; packets
arrive already annotated with their output port, which is all the
scheduling subsystem cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from ..core.backend import BackendSpec
from ..core.packet import Packet
from ..exceptions import BufferError_
from ..sim.link import OutputPort
from ..sim.simulator import Simulator
from .buffer import SharedBuffer
from .thresholds import AdmissionPolicy, AlwaysAdmit

#: Paper's target configuration (Section 5.1).
DEFAULT_PORT_COUNT = 64
DEFAULT_PORT_RATE_BPS = 10e9


@dataclass
class SwitchStats:
    """Aggregate counters for a switch run."""

    received: int = 0
    admitted: int = 0
    dropped_admission: int = 0
    dropped_scheduler: int = 0
    transmitted: int = 0


class SharedMemorySwitch:
    """An output-queued shared-memory switch with programmable schedulers.

    Parameters
    ----------
    sim:
        Driving simulator.
    scheduler_factory:
        Callable producing a fresh scheduler per output port (for example
        ``lambda port: ProgrammableScheduler(build_fig3_tree())``).
    port_count / port_rate_bps:
        Number of output ports and per-port line rate.
    buffer / admission:
        Shared buffer and admission policy guarding it.
    pifo_backend:
        Optional PIFO backend spec (see :mod:`repro.core.backend`) applied
        to every port's scheduler (``"auto"`` defers to the simulator's
        selection rule; schedulers without a swappable tree are left alone).
    """

    def __init__(
        self,
        sim: Simulator,
        scheduler_factory: Callable[[str], object],
        port_count: int = DEFAULT_PORT_COUNT,
        port_rate_bps: float = DEFAULT_PORT_RATE_BPS,
        buffer: Optional[SharedBuffer] = None,
        admission: Optional[AdmissionPolicy] = None,
        pifo_backend: BackendSpec = None,
    ) -> None:
        if port_count <= 0:
            raise ValueError("port_count must be positive")
        self.sim = sim
        self.buffer = buffer if buffer is not None else SharedBuffer()
        self.admission = admission if admission is not None else AlwaysAdmit()
        self.pifo_backend = pifo_backend
        self.stats = SwitchStats()
        self.ports: Dict[str, OutputPort] = {}
        for index in range(port_count):
            name = f"port{index}"
            port = OutputPort(
                sim=sim,
                scheduler=scheduler_factory(name),
                rate_bps=port_rate_bps,
                name=name,
                on_departure=self._make_release_callback(name),
                pifo_backend=pifo_backend,
                expected_backlog=self.buffer.total_cells,
            )
            self.ports[name] = port

    # -- buffer release on transmit -------------------------------------------------
    def _make_release_callback(self, port_name: str) -> Callable[[Packet], None]:
        def _release(packet: Packet) -> None:
            self.stats.transmitted += 1
            try:
                self.buffer.release(packet, port=port_name)
            except BufferError_:
                # The packet was admitted before accounting existed (e.g. a
                # test feeding ports directly); ignore rather than crash.
                pass

        return _release

    # -- ingress ------------------------------------------------------------------------
    def receive(self, packet: Packet, output_port: str) -> bool:
        """Admit a packet to the shared buffer and its output port scheduler.

        Returns ``True`` when the packet was buffered; ``False`` when it was
        dropped by the admission policy, buffer exhaustion, or the
        scheduler itself.
        """
        if output_port not in self.ports:
            raise KeyError(f"unknown output port {output_port!r}")
        self.stats.received += 1
        if not self.admission.admit(self.buffer, packet, port=output_port):
            self.stats.dropped_admission += 1
            return False
        self.buffer.allocate(packet, port=output_port)
        accepted = self.ports[output_port].receive(packet)
        if not accepted:
            self.buffer.release(packet, port=output_port)
            self.stats.dropped_scheduler += 1
            return False
        self.stats.admitted += 1
        return True

    def receive_many(self, packets: Iterable[Packet], output_port: str) -> int:
        """Admit a burst of packets destined for one output port.

        Admission and buffer accounting stay packet by packet (dynamic
        thresholds depend on instantaneous occupancy), but the burst goes
        to the scheduler through the port's batch path and the transmitter
        is kicked once.  Scheduler-full rejects are identified by their
        unset ``enqueue_time`` (every scheduler stamps it on success) and
        their cells released through the buffer's batch path.  Returns the
        number of packets buffered.
        """
        if output_port not in self.ports:
            raise KeyError(f"unknown output port {output_port!r}")
        port = self.ports[output_port]
        packets = list(packets)
        if isinstance(self.admission, AlwaysAdmit) and (
            sum(self.buffer.cells_for(p) for p in packets)
            <= self.buffer.free_cells
        ):
            # Threshold-free admission and a burst that fits as a whole:
            # commit it through the buffer's batch accounting.
            self.stats.received += len(packets)
            self.buffer.allocate_many(packets, port=output_port)
            admitted = packets
        else:
            admitted = []
            for packet in packets:
                self.stats.received += 1
                if not self.admission.admit(self.buffer, packet, port=output_port):
                    self.stats.dropped_admission += 1
                    continue
                self.buffer.allocate(packet, port=output_port)
                admitted.append(packet)
        for packet in admitted:
            # A packet arriving from an upstream hop still carries that
            # hop's enqueue stamp; clear it so rejects are identifiable.
            packet.enqueue_time = None
        accepted = port.receive_many(admitted)
        if accepted < len(admitted):
            rejected = [p for p in admitted if p.enqueue_time is None]
            self.buffer.release_many(rejected, port=output_port)
            self.stats.dropped_scheduler += len(rejected)
        self.stats.admitted += accepted
        return accepted

    # -- queries -------------------------------------------------------------------------
    def port(self, name: str) -> OutputPort:
        return self.ports[name]

    def port_names(self) -> List[str]:
        return list(self.ports)

    def buffered_packets(self) -> int:
        return sum(port.backlog_packets() for port in self.ports.values())

    def total_transmitted(self) -> int:
        return sum(port.transmitted_packets for port in self.ports.values())
