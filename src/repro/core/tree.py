"""Trees of scheduling and shaping transactions (Sections 2.2 and 2.3).

A scheduling algorithm is expressed as a tree.  Each node carries:

* a **packet predicate** selecting which packets execute the node's
  transactions,
* a **scheduling transaction** computing ranks for the node's scheduling
  PIFO, and
* optionally a **shaping transaction** computing wall-clock release times
  for the node's shaping PIFO.

Interior nodes' PIFOs hold references to their children; leaf nodes' PIFOs
hold packets.  The tree therefore encodes the instantaneous scheduling order
(Figure 2): dequeue the root, follow child references downward, and the leaf
PIFO yields the next packet.

This module defines the static structure; the dynamic enqueue/dequeue engine
lives in :mod:`repro.core.scheduler`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..exceptions import TreeConfigurationError
from .backend import (
    BackendSpec,
    PIFOBackend,
    backend_requires_integer_ranks,
    make_pifo,
)
from .packet import Packet
from .predicates import MatchAll, Predicate
from .transaction import SchedulingTransaction, ShapingTransaction, Transaction


def _packet_flow(packet: Packet) -> str:
    """Default flow function: the packet's own flow label.

    A module-level function (not a per-node lambda) so the scheduler can
    recognise the default by identity and read ``packet.flow`` directly.
    """
    return packet.flow


class TreeNode:
    """One node of a scheduling tree.

    Parameters
    ----------
    name:
        Unique node name.  At interior nodes, the parent's scheduling
        transaction sees this name as the element's "flow" (for example
        ``WFQ_Root`` in Figure 3 schedules flows ``Left`` and ``Right``).
    scheduling:
        The node's scheduling transaction.
    predicate:
        Packet predicate; defaults to match-all.
    shaping:
        Optional shaping transaction (Section 2.3).
    flow_fn:
        Optional callable mapping a packet to the flow identifier used when
        *packets* (not references) are ranked at this node.  Defaults to the
        packet's ``flow`` attribute.
    pifo_capacity:
        Optional bound on the node's scheduling PIFO occupancy.
    pifo_backend:
        Backend spec (see :mod:`repro.core.backend`) for this node's
        scheduling PIFO.  ``None`` selects the default (sorted-list)
        backend.  The shaping PIFO ranks by wall-clock send time (a float),
        so integer-only backends such as ``"bucketed"`` fall back to the
        default there.
    """

    def __init__(
        self,
        name: str,
        scheduling: SchedulingTransaction,
        predicate: Optional[Predicate] = None,
        shaping: Optional[ShapingTransaction] = None,
        flow_fn: Optional[Callable[[Packet], str]] = None,
        pifo_capacity: Optional[int] = None,
        pifo_backend: BackendSpec = None,
        children: Optional[Sequence["TreeNode"]] = None,
    ) -> None:
        self.name = name
        self.predicate: Predicate = predicate if predicate is not None else MatchAll()
        self.scheduling = scheduling
        self.shaping = shaping
        self.flow_fn = flow_fn or _packet_flow
        #: Whether the scheduling transaction overrides ``on_dequeue``.  The
        #: dequeue engine skips the context bookkeeping entirely for the
        #: (common) transactions that ignore dequeues.
        self.needs_dequeue_hook = (
            type(scheduling).on_dequeue is not Transaction.on_dequeue
        )
        self.parent: Optional["TreeNode"] = None
        self.children: List["TreeNode"] = []
        #: Bumped (on the subtree's root) whenever a child is attached below
        #: this node.  The fused tree kernel (:mod:`repro.lang.treekernel`)
        #: reads the root's counter as a cheap structural staleness guard.
        self._subtree_version = 0
        self.pifo_capacity = pifo_capacity
        self.pifo_backend: BackendSpec = pifo_backend

        # Runtime PIFOs.  The scheduling PIFO holds packets (leaf) or child
        # references (interior).  The shaping PIFO, present only when a
        # shaping transaction is attached, holds deferred release tokens
        # ranked by wall-clock send time.
        self.scheduling_pifo: PIFOBackend = make_pifo(
            pifo_backend, capacity=pifo_capacity, name=f"{name}.sched"
        )
        self.shaping_pifo: Optional[PIFOBackend] = (
            make_pifo(self._shaping_backend(pifo_backend), name=f"{name}.shape")
            if shaping is not None
            else None
        )

        for child in children or ():
            self.add_child(child)

    @staticmethod
    def _shaping_backend(backend: BackendSpec) -> BackendSpec:
        """Shaping ranks are float send times; avoid integer-only backends."""
        if backend is not None and backend_requires_integer_ranks(backend):
            return None
        return backend

    def use_backend(self, backend: BackendSpec) -> None:
        """Swap this node's PIFOs onto a different backend.

        Buffered entries migrate in dequeue order (FIFO ties preserved);
        operation counters restart at zero, so swap before a run when the
        counters matter.
        """
        def _migrate(old: PIFOBackend, new: PIFOBackend) -> PIFOBackend:
            new.enqueue_many(
                (entry.element, entry.rank) for entry in old.entries()
            )
            return new

        self.pifo_backend = backend
        self.scheduling_pifo = _migrate(
            self.scheduling_pifo,
            make_pifo(backend, capacity=self.pifo_capacity, name=f"{self.name}.sched"),
        )
        if self.shaping_pifo is not None:
            self.shaping_pifo = _migrate(
                self.shaping_pifo,
                make_pifo(self._shaping_backend(backend), name=f"{self.name}.shape"),
            )

    # -- structure ----------------------------------------------------------
    def add_child(self, child: "TreeNode") -> "TreeNode":
        """Attach ``child`` below this node and return it (for chaining)."""
        if child.parent is not None:
            raise TreeConfigurationError(
                f"node {child.name!r} already has parent {child.parent.name!r}"
            )
        child.parent = self
        self.children.append(child)
        root = self
        while root.parent is not None:
            root = root.parent
        root._subtree_version += 1
        return child

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def walk(self) -> Iterator["TreeNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children:
            yield from child.walk()

    def path_to_root(self) -> List["TreeNode"]:
        """Nodes from this node up to (and including) the root."""
        path = [self]
        node = self
        while node.parent is not None:
            node = node.parent
            path.append(node)
        return path

    def depth(self) -> int:
        """Distance from the root (root has depth 0)."""
        return len(self.path_to_root()) - 1

    # -- runtime helpers ----------------------------------------------------
    def reset(self) -> None:
        """Clear PIFOs and reset transaction state for a fresh run."""
        self.scheduling_pifo.clear()
        if self.shaping_pifo is not None:
            self.shaping_pifo.clear()
        self.scheduling.reset()
        if self.shaping is not None:
            self.shaping.reset()

    def element_flow(self, packet: Packet, from_child: Optional["TreeNode"]) -> str:
        """Flow identifier the scheduling transaction should use here.

        When the element being enqueued is a reference coming up from a
        child, the child's name is the flow; when it is the packet itself
        (leaf of the matching path), the node's ``flow_fn`` applies.
        """
        if from_child is not None:
            return from_child.name
        return self.flow_fn(packet)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else f"{len(self.children)} children"
        shaped = ", shaped" if self.shaping is not None else ""
        return f"TreeNode({self.name!r}, {kind}{shaped})"


class ScheduleTree:
    """A validated tree of scheduling (and shaping) transactions.

    Parameters
    ----------
    root:
        Root node of the hierarchy.
    pifo_backend:
        Optional backend spec applied to *every* node's PIFOs (see
        :mod:`repro.core.backend`).  ``None`` leaves each node on whatever
        backend it was constructed with.
    """

    def __init__(self, root: TreeNode, pifo_backend: BackendSpec = None) -> None:
        self.root = root
        self._nodes: Dict[str, TreeNode] = {}
        self._validate()
        self.pifo_backend: BackendSpec = pifo_backend
        if pifo_backend is not None:
            self.use_backend(pifo_backend)
        # Single match-all node (the most common tree in throughput runs):
        # every packet matches the same one-element path, so compute it once.
        # The cached list is shared — callers must not mutate match_path()'s
        # result (none do; the walk only reads it).
        self._trivial_path: Optional[List[TreeNode]] = (
            [root] if not root.children and isinstance(root.predicate, MatchAll)
            else None
        )

    def use_backend(self, backend: BackendSpec) -> None:
        """Swap every node's PIFOs onto ``backend`` (entries migrate)."""
        self.pifo_backend = backend
        for node in self.root.walk():
            node.use_backend(backend)

    # -- validation ----------------------------------------------------------
    def _validate(self) -> None:
        for node in self.root.walk():
            if node.name in self._nodes:
                raise TreeConfigurationError(f"duplicate node name {node.name!r}")
            self._nodes[node.name] = node
        if self.root.shaping is not None:
            raise TreeConfigurationError(
                "the root node cannot carry a shaping transaction: there is "
                "no parent PIFO to release into (use output shaping on the "
                "link instead)"
            )

    # -- lookup ---------------------------------------------------------------
    def node(self, name: str) -> TreeNode:
        """Return the node with the given name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise TreeConfigurationError(f"no node named {name!r}") from None

    def nodes(self) -> List[TreeNode]:
        """All nodes in pre-order."""
        return list(self.root.walk())

    def leaves(self) -> List[TreeNode]:
        """All leaf nodes in pre-order."""
        return [node for node in self.root.walk() if node.is_leaf]

    def depth(self) -> int:
        """Number of levels in the tree (a single node has depth 1)."""
        return 1 + max((node.depth() for node in self.root.walk()), default=0)

    def levels(self) -> List[List[TreeNode]]:
        """Nodes grouped by depth, root level first."""
        grouped: Dict[int, List[TreeNode]] = {}
        for node in self.root.walk():
            grouped.setdefault(node.depth(), []).append(node)
        return [grouped[d] for d in sorted(grouped)]

    # -- packet classification -------------------------------------------------
    def match_path(self, packet: Packet) -> List[TreeNode]:
        """Nodes the packet executes, ordered leaf first, root last.

        The packet descends from the root through children whose predicates
        match.  The paper requires the matching nodes to form a single path;
        ambiguous trees (two sibling predicates matching the same packet)
        raise :class:`~repro.exceptions.TreeConfigurationError`.
        """
        trivial = self._trivial_path
        if trivial is not None:
            if not self.root.children:
                return trivial
            # A child was attached after construction; drop the stale cache
            # and fall through to the generic walk.
            self._trivial_path = None
        if not self.root.predicate(packet):
            raise TreeConfigurationError(
                f"packet {packet!r} does not match the root predicate"
            )
        path_down = [self.root]
        node = self.root
        while node.children:
            matches = [child for child in node.children if child.predicate(packet)]
            if not matches:
                break
            if len(matches) > 1:
                names = [child.name for child in matches]
                raise TreeConfigurationError(
                    f"packet {packet!r} matches multiple children {names} of "
                    f"node {node.name!r}; predicates must be disjoint"
                )
            node = matches[0]
            path_down.append(node)
        return list(reversed(path_down))

    def leaf_for(self, packet: Packet) -> TreeNode:
        """The deepest node whose predicate path matches the packet."""
        return self.match_path(packet)[0]

    # -- runtime ---------------------------------------------------------------
    def reset(self) -> None:
        """Reset every node for a fresh run."""
        for node in self.root.walk():
            node.reset()

    def buffered_elements(self) -> int:
        """Total number of elements across all scheduling and shaping PIFOs."""
        total = 0
        for node in self.root.walk():
            total += len(node.scheduling_pifo)
            if node.shaping_pifo is not None:
                total += len(node.shaping_pifo)
        return total

    def describe(self) -> str:
        """Multi-line, indentation-based description of the tree."""
        lines: List[str] = []

        def _describe(node: TreeNode, indent: int) -> None:
            shaping = (
                f" + shaping[{node.shaping.describe()}]" if node.shaping else ""
            )
            lines.append(
                "  " * indent
                + f"{node.name}: {node.predicate!r} -> "
                + node.scheduling.describe()
                + shaping
            )
            for child in node.children:
                _describe(child, indent + 1)

        _describe(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScheduleTree(root={self.root.name!r}, nodes={len(self._nodes)})"


def single_node_tree(
    scheduling: SchedulingTransaction,
    name: str = "root",
    pifo_capacity: Optional[int] = None,
    pifo_backend: BackendSpec = None,
) -> ScheduleTree:
    """Build the simplest tree: one node, one scheduling transaction.

    This is the Section 2.1 configuration used for WFQ/STFQ, LSTF, FIFO and
    all fine-grained priority algorithms.
    """
    return ScheduleTree(
        TreeNode(
            name=name,
            scheduling=scheduling,
            pifo_capacity=pifo_capacity,
            pifo_backend=pifo_backend,
        )
    )
