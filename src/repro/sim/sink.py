"""Packet sinks: record departures and expose per-flow statistics."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from ..core.packet import Packet


class PacketSink:
    """Collects packets leaving an output port.

    The sink keeps every departed packet (the experiments are small enough
    that this is cheap) plus per-flow byte and packet counters, so both
    aggregate rates and per-packet delay distributions can be computed after
    a run.
    """

    def __init__(self, name: str = "sink") -> None:
        self.name = name
        self.packets: List[Packet] = []
        self.bytes_by_flow: Dict[str, int] = defaultdict(int)
        self.packets_by_flow: Dict[str, int] = defaultdict(int)
        self.first_departure: Optional[float] = None
        self.last_departure: Optional[float] = None

    def record(self, packet: Packet) -> None:
        """Record a departed packet (its ``departure_time`` must be set)."""
        self.packets.append(packet)
        self.bytes_by_flow[packet.flow] += packet.length
        self.packets_by_flow[packet.flow] += 1
        if packet.departure_time is not None:
            if self.first_departure is None:
                self.first_departure = packet.departure_time
            self.last_departure = packet.departure_time

    # -- aggregate queries ----------------------------------------------------
    def total_packets(self) -> int:
        return len(self.packets)

    def total_bytes(self) -> int:
        return sum(self.bytes_by_flow.values())

    def flows(self) -> List[str]:
        return sorted(self.bytes_by_flow)

    def throughput_bps(self, flow: Optional[str] = None,
                       start: float = 0.0, end: Optional[float] = None) -> float:
        """Average throughput over [start, end] in bits per second.

        ``end`` defaults to the last departure seen.  Packets are attributed
        to the window by their departure time.
        """
        if end is None:
            end = self.last_departure or 0.0
        duration = end - start
        if duration <= 0:
            return 0.0
        total_bits = 0
        for packet in self.packets:
            if packet.departure_time is None:
                continue
            if flow is not None and packet.flow != flow:
                continue
            if start <= packet.departure_time <= end:
                total_bits += packet.length_bits
        return total_bits / duration

    def share_by_flow(self, start: float = 0.0, end: Optional[float] = None) -> Dict[str, float]:
        """Fraction of delivered bytes per flow over a window."""
        if end is None:
            end = self.last_departure or 0.0
        totals: Dict[str, int] = defaultdict(int)
        for packet in self.packets:
            if packet.departure_time is None:
                continue
            if start <= packet.departure_time <= end:
                totals[packet.flow] += packet.length
        grand_total = sum(totals.values())
        if grand_total == 0:
            return {}
        return {flow: count / grand_total for flow, count in sorted(totals.items())}

    def delays(self, flow: Optional[str] = None) -> List[float]:
        """Arrival-to-departure delays of recorded packets."""
        values = []
        for packet in self.packets:
            if flow is not None and packet.flow != flow:
                continue
            delay = packet.total_delay
            if delay is not None:
                values.append(delay)
        return values

    def departure_order(self) -> List[str]:
        """Flow labels in departure order (useful for ordering assertions)."""
        return [packet.flow for packet in self.packets]

    def __len__(self) -> int:
        return len(self.packets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PacketSink(name={self.name!r}, packets={len(self.packets)})"
