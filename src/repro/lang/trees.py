"""Scheduling hierarchies built *entirely* from transaction-language programs.

The strongest programmability claim in the paper is that whole hierarchies —
Figure 3's HPFQ and Figure 4's Hierarchies-with-Shaping — are expressible as
program text alone, with no hand-written transaction classes.  These
builders construct exactly those trees from :mod:`repro.lang.programs`
sources; the integration suite compares them against the hand-written trees
in :mod:`repro.algorithms`, and the lang-compile benchmark drives them
through the full simulation stack.

Every builder threads two knobs:

* ``backend`` — the lang execution backend (``"compiled"``, the default, or
  ``"interpreted"``), passed to each program factory;
* ``pifo_backend`` — the PIFO storage backend (see :mod:`repro.core.backend`)
  applied to every node.
"""

from __future__ import annotations

from typing import Optional

from ..core.backend import BackendSpec
from ..core.predicates import FlowIn
from ..core.tree import ScheduleTree, TreeNode
from .programs import stfq_program, token_bucket_program


def build_fig3_tree_from_programs(
    backend: Optional[str] = None,
    pifo_backend: BackendSpec = None,
) -> ScheduleTree:
    """Figure 3's HPFQ hierarchy with every transaction compiled from text."""
    root = TreeNode(
        name="Root",
        scheduling=stfq_program(
            weights={"Left": 1.0, "Right": 9.0}, backend=backend
        ),
        pifo_backend=pifo_backend,
    )
    root.add_child(
        TreeNode(
            name="Left",
            predicate=FlowIn(["A", "B"]),
            scheduling=stfq_program(
                weights={"A": 3.0, "B": 7.0}, backend=backend
            ),
            pifo_backend=pifo_backend,
        )
    )
    root.add_child(
        TreeNode(
            name="Right",
            predicate=FlowIn(["C", "D"]),
            scheduling=stfq_program(
                weights={"C": 4.0, "D": 6.0}, backend=backend
            ),
            pifo_backend=pifo_backend,
        )
    )
    return ScheduleTree(root)


def build_fig4_tree_from_programs(
    right_rate_bps: float = 10e6,
    backend: Optional[str] = None,
    pifo_backend: BackendSpec = None,
) -> ScheduleTree:
    """Figure 4: HPFQ plus a token-bucket shaping program on class Right."""
    root = TreeNode(
        name="Root",
        scheduling=stfq_program(
            weights={"Left": 1.0, "Right": 9.0}, backend=backend
        ),
        pifo_backend=pifo_backend,
    )
    root.add_child(
        TreeNode(
            name="Left",
            predicate=FlowIn(["A", "B"]),
            scheduling=stfq_program(
                weights={"A": 3.0, "B": 7.0}, backend=backend
            ),
            pifo_backend=pifo_backend,
        )
    )
    root.add_child(
        TreeNode(
            name="Right",
            predicate=FlowIn(["C", "D"]),
            scheduling=stfq_program(
                weights={"C": 4.0, "D": 6.0}, backend=backend
            ),
            shaping=token_bucket_program(
                rate_bytes_per_s=right_rate_bps / 8.0,
                burst_bytes=3000.0,
                backend=backend,
            ),
            pifo_backend=pifo_backend,
        )
    )
    return ScheduleTree(root)
