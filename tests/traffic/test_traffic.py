"""Tests for flow specs, distributions, generators and traces."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    EmpiricalCDF,
    FlowSpec,
    PacketTrace,
    backlogged_arrivals,
    bounded_pareto,
    cbr_arrivals,
    data_mining_flow_sizes,
    exponential,
    flow_arrivals,
    merge_arrivals,
    lazy_merge_arrivals,
    onoff_arrivals,
    pareto,
    poisson_arrivals,
    total_bytes,
    web_search_flow_sizes,
)


class TestFlowSpec:
    def test_packets_per_second(self):
        spec = FlowSpec(name="A", rate_bps=12000, packet_size=1500)
        assert spec.packets_per_second == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSpec(name="A", rate_bps=-1)
        with pytest.raises(ValueError):
            FlowSpec(name="A", rate_bps=1, packet_size=0)
        with pytest.raises(ValueError):
            FlowSpec(name="A", rate_bps=1, start_time=5.0, end_time=1.0)

    def test_active_at(self):
        spec = FlowSpec(name="A", rate_bps=1e6, start_time=1.0, end_time=2.0)
        assert not spec.active_at(0.5)
        assert spec.active_at(1.5)
        assert not spec.active_at(2.5)


class TestGenerators:
    def test_cbr_spacing(self):
        spec = FlowSpec(name="A", rate_bps=8e6, packet_size=1000)
        arrivals = list(cbr_arrivals(spec, duration=0.005))
        times = [t for t, _ in arrivals]
        assert times == pytest.approx([0.0, 0.001, 0.002, 0.003, 0.004])

    def test_cbr_zero_rate_produces_nothing(self):
        spec = FlowSpec(name="A", rate_bps=0.0)
        assert list(cbr_arrivals(spec, duration=1.0)) == []

    def test_poisson_mean_rate(self):
        spec = FlowSpec(name="A", rate_bps=8e6, packet_size=1000)
        arrivals = list(poisson_arrivals(spec, duration=1.0, seed=7))
        # ~1000 packets/s expected; allow 10% slack.
        assert 900 <= len(arrivals) <= 1100

    def test_poisson_deterministic_per_seed(self):
        spec = FlowSpec(name="A", rate_bps=8e6, packet_size=1000)
        a = [t for t, _ in poisson_arrivals(spec, duration=0.1, seed=3)]
        b = [t for t, _ in poisson_arrivals(spec, duration=0.1, seed=3)]
        assert a == b

    def test_onoff_long_run_rate_below_peak(self):
        spec = FlowSpec(name="A", rate_bps=8e6, packet_size=1000)
        arrivals = list(
            onoff_arrivals(spec, duration=2.0, mean_on_s=0.01, mean_off_s=0.01, seed=5)
        )
        measured = total_bytes(arrivals) * 8 / 2.0
        assert measured < 8e6
        assert measured > 1e6

    def test_backlogged_burst(self):
        spec = FlowSpec(name="A", rate_bps=1e6, packet_size=500)
        arrivals = list(backlogged_arrivals(spec, packet_count=10))
        assert len(arrivals) == 10
        assert all(t == 0.0 for t, _ in arrivals)

    def test_flow_arrivals_tags_srpt_fields(self):
        arrivals = list(
            flow_arrivals("f", load_bps=50e6, duration=0.05, packet_size=1500, seed=1)
        )
        assert arrivals, "expected at least one flow"
        times = [t for t, _ in arrivals]
        assert times == sorted(times)
        # Remaining size decreases packet by packet within a flow.
        by_flow = {}
        for _, packet in arrivals:
            by_flow.setdefault(packet.flow, []).append(packet)
        for packets in by_flow.values():
            remaining = [p.get("remaining_size") for p in packets]
            assert remaining == sorted(remaining, reverse=True)
            assert packets[0].get("flow_size") == sum(p.length for p in packets)

    def test_merge_preserves_time_order(self):
        spec_a = FlowSpec(name="A", rate_bps=8e6, packet_size=1000)
        spec_b = FlowSpec(name="B", rate_bps=3e6, packet_size=700)
        merged = list(merge_arrivals(cbr_arrivals(spec_a, 0.01), cbr_arrivals(spec_b, 0.01)))
        times = [t for t, _ in merged]
        assert times == sorted(times)

    def test_lazy_merge_matches_eager_merge(self):
        spec_a = FlowSpec(name="A", rate_bps=8e6, packet_size=1000)
        spec_b = FlowSpec(name="B", rate_bps=3e6, packet_size=700)
        eager = [(t, p.flow) for t, p in merge_arrivals(
            cbr_arrivals(spec_a, 0.01), cbr_arrivals(spec_b, 0.01))]
        lazy = [(t, p.flow) for t, p in lazy_merge_arrivals(
            cbr_arrivals(spec_a, 0.01), cbr_arrivals(spec_b, 0.01))]
        assert eager == lazy


class TestDistributions:
    def test_empirical_cdf_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])
        with pytest.raises(ValueError):
            EmpiricalCDF([(10, 0.5), (20, 0.4), (30, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalCDF([(10, 0.5)])

    def test_samples_within_support(self):
        cdf = web_search_flow_sizes()
        rng = random.Random(0)
        samples = [cdf.sample(rng) for _ in range(500)]
        assert all(0 <= s <= 15_000_000 for s in samples)

    def test_data_mining_heavier_tail_than_web_search(self):
        assert data_mining_flow_sizes().mean() > web_search_flow_sizes().mean()

    def test_exponential_and_pareto_positive(self):
        rng = random.Random(1)
        assert exponential(rng, 5.0) > 0
        assert pareto(rng, shape=1.5, scale=100) >= 100
        value = bounded_pareto(rng, shape=1.2, low=10, high=1000)
        assert 10 <= value <= 1000

    def test_invalid_parameters(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            exponential(rng, 0)
        with pytest.raises(ValueError):
            pareto(rng, 0, 1)
        with pytest.raises(ValueError):
            bounded_pareto(rng, 1.0, 10, 5)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50)
    def test_property_cdf_sample_in_range(self, seed):
        cdf = data_mining_flow_sizes()
        sample = cdf.sample(random.Random(seed))
        assert 0 <= sample <= 1_000_000_000


class TestTrace:
    def test_round_trip_replay(self):
        spec = FlowSpec(name="A", rate_bps=8e6, packet_size=1000,
                        packet_class="Left", fields={"deadline": 1.0})
        trace = PacketTrace.from_arrivals(cbr_arrivals(spec, duration=0.003))
        replayed = list(trace.replay())
        assert len(replayed) == len(trace) == 3
        assert replayed[0][1].packet_class == "Left"
        assert replayed[0][1].get("deadline") == 1.0
        # Replaying twice yields distinct packet objects.
        again = list(trace.replay())
        assert replayed[0][1] is not again[0][1]

    def test_csv_round_trip(self, tmp_path):
        spec = FlowSpec(name="A", rate_bps=8e6, packet_size=1000, fields={"x": 3})
        trace = PacketTrace.from_arrivals(cbr_arrivals(spec, duration=0.002))
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = PacketTrace.load_csv(path)
        assert len(loaded) == len(trace)
        assert loaded.records[0].fields == {"x": 3}
        assert loaded.duration() == pytest.approx(trace.duration())

    def test_trace_preserves_packet_addressing(self, tmp_path):
        # Addressed packets must replay addressed, or a recorded trace
        # cannot drive a fabric (packets with dst=None are unroutable).
        spec = FlowSpec(name="A", rate_bps=8e6, packet_size=1000,
                        src="h0", dst="h1")
        trace = PacketTrace.from_arrivals(cbr_arrivals(spec, duration=0.002))
        _, packet = next(trace.replay())
        assert (packet.src, packet.dst) == ("h0", "h1")
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        _, loaded = next(PacketTrace.load_csv(path).replay())
        assert (loaded.src, loaded.dst) == ("h0", "h1")

    def test_load_csv_accepts_pre_addressing_traces(self, tmp_path):
        # CSVs written before the src/dst columns existed must still load.
        path = tmp_path / "old.csv"
        path.write_text(
            "time,flow,length,packet_class,priority,fields\n"
            '0.001,A,1000,,0,"{""x"": 3}"\n'
        )
        trace = PacketTrace.load_csv(path)
        record = trace.records[0]
        assert (record.src, record.dst) == (None, None)
        assert record.fields == {"x": 3}
        _, packet = next(trace.replay())
        assert packet.src is None and packet.dst is None

    def test_unaddressed_packets_round_trip_as_none(self, tmp_path):
        spec = FlowSpec(name="A", rate_bps=8e6, packet_size=1000)
        trace = PacketTrace.from_arrivals(cbr_arrivals(spec, duration=0.002))
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        record = PacketTrace.load_csv(path).records[0]
        assert (record.src, record.dst) == (None, None)
