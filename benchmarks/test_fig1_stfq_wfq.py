"""Figure 1 / Section 2.1 — STFQ programmed on a PIFO gives weighted fair
queueing.

Regenerates: per-flow bandwidth shares of backlogged flows with unequal
weights, compared against the exact weighted allocation and the GPS fluid
reference.  Paper claim: the STFQ scheduling transaction realises WFQ on a
single PIFO.
"""

from __future__ import annotations

from conftest import measured_shares, report, run_overload_experiment

from repro.algorithms import build_wfq_tree
from repro.baselines import DeficitRoundRobin
from repro.metrics import expected_weighted_shares, max_share_error, weighted_jain_index

WEIGHTS = {"w1": 1.0, "w2": 2.0, "w4": 4.0, "w8": 8.0}
LINK_RATE = 100e6
DURATION = 0.05


def run_stfq():
    tree = build_wfq_tree(WEIGHTS)
    return run_overload_experiment(
        tree, {flow: LINK_RATE for flow in WEIGHTS}, LINK_RATE, DURATION
    )


def test_fig1_stfq_weighted_shares(benchmark):
    port = benchmark(run_stfq)
    shares = measured_shares(port, list(WEIGHTS), start=0.01, end=DURATION)
    expected = expected_weighted_shares(WEIGHTS)
    report(
        "Figure 1: STFQ-on-PIFO weighted fair shares",
        [
            {
                "flow": flow,
                "weight": WEIGHTS[flow],
                "expected_share": expected[flow],
                "measured_share": shares[flow],
            }
            for flow in WEIGHTS
        ],
    )
    assert max_share_error(shares, expected) < 0.03
    assert weighted_jain_index(shares, WEIGHTS) > 0.99
    # The port must stay work conserving: the link is saturated.
    assert port.utilization > 0.95


def test_fig1_stfq_vs_drr_baseline(benchmark):
    """STFQ and the switch-standard DRR approximation agree on long-run
    shares; STFQ is smoother packet by packet (smaller max share error)."""
    def run_both():
        stfq_port = run_stfq()
        drr_port = run_overload_experiment(
            None,
            {flow: LINK_RATE for flow in WEIGHTS},
            LINK_RATE,
            DURATION,
            scheduler=DeficitRoundRobin(weights=WEIGHTS, quantum_bytes=1500),
        )
        return stfq_port, drr_port

    stfq_port, drr_port = benchmark(run_both)
    expected = expected_weighted_shares(WEIGHTS)
    stfq_error = max_share_error(
        measured_shares(stfq_port, list(WEIGHTS), 0.01, DURATION), expected
    )
    drr_error = max_share_error(
        measured_shares(drr_port, list(WEIGHTS), 0.01, DURATION), expected
    )
    report(
        "Figure 1: STFQ vs DRR share error",
        [
            {"scheduler": "STFQ on PIFO", "max_share_error": stfq_error},
            {"scheduler": "DRR baseline", "max_share_error": drr_error},
        ],
    )
    assert stfq_error < 0.03
    assert drr_error < 0.08
