"""Deficit Round Robin (Shreedhar & Varghese) baseline.

DRR is the practical approximation of fair queueing that fixed-function
switches actually ship.  It serves backlogged flows in round-robin order,
each getting a *quantum* of bytes per round proportional to its weight; the
unused remainder (deficit) carries over while the flow stays backlogged.

It is the natural baseline for the WFQ/STFQ and HPFQ experiments: over long
windows its shares match the weighted-fair allocation, while per-packet it
is burstier than STFQ.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Mapping, Optional

from ..core.packet import Packet


class DeficitRoundRobin:
    """Weighted Deficit Round Robin scheduler.

    Parameters
    ----------
    weights:
        Flow weights; a flow's quantum is ``quantum_bytes * weight``.
    quantum_bytes:
        Base quantum added to a flow's deficit each time it is visited.
        Should be at least one MTU so every visit can send at least one
        packet.
    capacity_packets:
        Optional bound on total buffered packets (tail drop).
    """

    def __init__(
        self,
        weights: Optional[Mapping[str, float]] = None,
        quantum_bytes: int = 1500,
        default_weight: float = 1.0,
        capacity_packets: Optional[int] = None,
    ) -> None:
        if quantum_bytes <= 0:
            raise ValueError("quantum_bytes must be positive")
        self.weights = dict(weights or {})
        self.default_weight = default_weight
        self.quantum_bytes = quantum_bytes
        self.capacity_packets = capacity_packets
        self._queues: Dict[str, Deque[Packet]] = {}
        self._deficits: Dict[str, float] = {}
        self._active: Deque[str] = deque()
        self._count = 0
        self.drops = 0

    def weight_of(self, flow: str) -> float:
        return self.weights.get(flow, self.default_weight)

    # -- scheduler interface -----------------------------------------------------
    def enqueue(self, packet: Packet, now: float = 0.0) -> bool:
        if self.capacity_packets is not None and self._count >= self.capacity_packets:
            self.drops += 1
            return False
        flow = packet.flow
        queue = self._queues.setdefault(flow, deque())
        was_empty = not queue
        packet.enqueue_time = now
        queue.append(packet)
        self._count += 1
        if was_empty and flow not in self._active:
            self._active.append(flow)
            self._deficits.setdefault(flow, 0.0)
        return True

    def dequeue(self, now: float = 0.0) -> Optional[Packet]:
        if self._count == 0:
            return None
        # Visit flows round-robin until one can send its head packet.  Each
        # full visit adds the flow's quantum to its deficit, so the loop
        # terminates: eventually some deficit exceeds its head packet size.
        while True:
            flow = self._active[0]
            queue = self._queues[flow]
            if not queue:
                # Flow went idle; drop it from the active list and reset its
                # deficit, as the DRR algorithm specifies.
                self._active.popleft()
                self._deficits[flow] = 0.0
                if not self._active:
                    return None
                continue
            head = queue[0]
            if self._deficits[flow] >= head.length:
                self._deficits[flow] -= head.length
                queue.popleft()
                self._count -= 1
                head.dequeue_time = now
                if not queue:
                    # Deficit is discarded when the flow empties.
                    self._active.popleft()
                    self._deficits[flow] = 0.0
                return head
            # Head does not fit: end this flow's turn, add a quantum for its
            # next visit and rotate.
            self._deficits[flow] += self.quantum_bytes * self.weight_of(flow)
            self._active.rotate(-1)

    def __len__(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0
