"""Property test of the lease protocol: exactly-once-or-quarantined.

Hypothesis drives K executors over one shared queue with randomised
crash points, interleavings and heartbeat-expiry timing (all on a fake
clock — no real sleeping, no real subprocesses).  Whatever the schedule,
the protocol must deliver:

* **coverage** — after the queue drains, the merge holds exactly one
  record per run-table entry;
* **exactly-once-or-quarantined** — every record is either ``ok`` or
  ``quarantined``; a crash schedule can delay a run but never lose it or
  double-count it;
* **clean merge** — the merged store passes
  :meth:`~repro.campaign.store.ResultStore.verify_records` with zero
  issues against the campaign's expected fingerprint set.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (
    Campaign,
    LeaseQueue,
    ResultStore,
    STATUS_QUARANTINED,
    STATUS_OK,
)
from tests.campaign.test_queue import Crash, FakeClock, fake_execute

TTL = 30.0
MAX_ATTEMPTS = 3
#: Safety valve: a protocol bug that livelocks shows up as hitting this.
MAX_ROUNDS = 200


def protocol_campaign(runs: int) -> Campaign:
    return Campaign(
        name="lease_protocol",
        title="synthetic table for protocol property tests",
        scenarios=["fig6_chain"],
        variants=["FIFO"],
        pifo_backends=["sorted"],
        lang_backends=[None],
        load_scales=[1.0],
        replicates=runs,
    )


class CrashyExecutor:
    """Executes fake runs, dying whenever the drawn schedule says so."""

    def __init__(self, crashes: list) -> None:
        self._crashes = crashes  # shared across executors, consumed in order

    def __call__(self, spec, policy):
        if self._crashes and self._crashes.pop(0):
            raise Crash(spec.run_id)
        return fake_execute(spec, policy)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    runs=st.integers(min_value=1, max_value=12),
    shard_size=st.integers(min_value=1, max_value=5),
    executors=st.integers(min_value=1, max_value=4),
    crashes=st.lists(st.booleans(), max_size=30),
    # Per-round clock advance: sometimes inside the TTL (leases stay
    # live), sometimes past it (crashed/slow leases become stealable).
    advances=st.lists(st.sampled_from([0.0, TTL / 2, TTL + 1.0]),
                      max_size=40),
)
def test_exactly_once_or_quarantined(tmp_path_factory, runs, shard_size,
                                     executors, crashes, advances):
    clock = FakeClock()
    campaign = protocol_campaign(runs)
    specs = campaign.expand(quick=True)
    root = tmp_path_factory.mktemp("lease_protocol")
    queue = LeaseQueue.initialize(
        root / "q", specs, campaign=campaign.name, shard_size=shard_size,
        lease_ttl_s=TTL, max_attempts=MAX_ATTEMPTS, time_fn=clock)
    execute = CrashyExecutor(list(crashes))
    advances = list(advances)

    rounds = 0
    while not queue.drained():
        rounds += 1
        assert rounds <= MAX_ROUNDS, "protocol livelocked"
        for index in range(executors):
            try:
                queue.work(f"executor-{index}", execute=execute,
                           max_shards=1)
            except Crash:
                pass  # the executor "process" died; its lease will expire
        # Once the crash budget is spent, always advance past the TTL so
        # orphaned leases become stealable and the queue can drain.
        clock.advance(advances.pop(0) if advances else TTL + 1.0)

    store = ResultStore(root / "merged.jsonl")
    queue.merge(store)
    records = store.load()

    # Coverage: exactly one record per run-table entry, in table order.
    assert [r["fingerprint"] for r in records] == [s.fingerprint()
                                                   for s in specs]
    # Exactly-once-or-quarantined: no other terminal state exists.
    assert all(r["status"] in (STATUS_OK, STATUS_QUARANTINED)
               for r in records)
    # A run is quarantined only after MAX_ATTEMPTS lease generations died
    # on it — impossible with fewer total crashes than that.
    quarantined = [r for r in records
                   if r["status"] == STATUS_QUARANTINED]
    if sum(crashes) < MAX_ATTEMPTS:
        assert not quarantined

    # Clean merge: schema + fingerprint verification finds nothing.
    summary = store.verify_records(
        expected_fingerprints={s.fingerprint() for s in specs})
    assert summary["issues"] == []
    assert summary["missing"] == 0
