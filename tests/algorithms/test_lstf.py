"""Tests for Least Slack-Time First (Figure 6)."""

from __future__ import annotations

import pytest

from repro.algorithms import LSTFTransaction, stamp_wait_time
from repro.core import Packet, ProgrammableScheduler, TransactionContext, single_node_tree
from repro.exceptions import TransactionError


def pkt(flow="A", slack=None, prev_wait=0.0):
    fields = {}
    if slack is not None:
        fields["slack"] = slack
    if prev_wait:
        fields["prev_wait_time"] = prev_wait
    return Packet(flow=flow, length=1000, fields=fields)


class TestLSTFTransaction:
    def test_rank_is_slack(self):
        txn = LSTFTransaction()
        assert txn(pkt(slack=0.02), TransactionContext()) == pytest.approx(0.02)

    def test_slack_decremented_by_previous_wait(self):
        txn = LSTFTransaction()
        packet = pkt(slack=0.05, prev_wait=0.02)
        rank = txn(packet, TransactionContext())
        assert rank == pytest.approx(0.03)
        # The transaction writes the decremented slack back into the packet.
        assert packet.get("slack") == pytest.approx(0.03)
        assert packet.get("prev_wait_time") == 0.0

    def test_missing_slack_raises(self):
        with pytest.raises(TransactionError):
            LSTFTransaction()(pkt(), TransactionContext())

    def test_stamp_wait_time_accumulates(self):
        packet = pkt(slack=1.0)
        stamp_wait_time(packet, 0.01)
        stamp_wait_time(packet, 0.02)
        assert packet.get("prev_wait_time") == pytest.approx(0.03)


class TestLSTFOrdering:
    def test_least_slack_leaves_first(self):
        scheduler = ProgrammableScheduler(single_node_tree(LSTFTransaction()))
        urgent = pkt(flow="urgent", slack=0.001)
        relaxed = pkt(flow="relaxed", slack=0.5)
        scheduler.enqueue(relaxed)
        scheduler.enqueue(urgent)
        assert scheduler.dequeue() is urgent

    def test_upstream_wait_promotes_packet(self):
        """A packet that already waited a long time upstream overtakes one
        with nominally smaller slack but no waiting history."""
        scheduler = ProgrammableScheduler(single_node_tree(LSTFTransaction()))
        waited = pkt(flow="waited", slack=0.10, prev_wait=0.09)   # effective 0.01
        fresh = pkt(flow="fresh", slack=0.05)                     # effective 0.05
        scheduler.enqueue(fresh)
        scheduler.enqueue(waited)
        assert scheduler.dequeue() is waited

    def test_two_hop_slack_chain(self):
        """Simulate two switches: slack decreases hop by hop by the wait time
        experienced at the previous hop."""
        hop1 = ProgrammableScheduler(single_node_tree(LSTFTransaction()))
        hop2 = ProgrammableScheduler(single_node_tree(LSTFTransaction()))
        packet = pkt(flow="A", slack=0.1)
        hop1.enqueue(packet, now=0.0)
        out = hop1.dequeue(now=0.0)
        stamp_wait_time(out, 0.04)  # waited 40 ms at hop 1
        hop2.enqueue(out, now=0.04)
        final = hop2.dequeue(now=0.04)
        assert final.get("slack") == pytest.approx(0.06)
