"""Multi-pipeline PIFO blocks (Section 6.3).

The highest-end switches exceed the packet rate a single 1 GHz pipeline can
source or sink, so they run several ingress and several egress pipelines
that *share* the scheduler subsystem.  The paper argues its design extends
naturally: the flow scheduler lives in flip-flops, so adding ports is
straightforward, and the rank store needs the same multi-port SRAM used by
multi-pipeline packet buffers today.

:class:`MultiPipelineBlock` models exactly that: a PIFO block whose per-cycle
budget is ``ingress_pipelines`` enqueues and ``egress_pipelines`` dequeues
instead of one of each.  Requests beyond the budget in a cycle are refused
(strict mode) or counted (permissive mode), which lets the Section 6.3
benchmark quantify how many pipelines a block must expose before a
3.2 Tbit/s-class switch stops losing scheduler slots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

from ..exceptions import HardwareModelError
from ..hardware.pifo_block import DequeuedElement, PIFOBlock


@dataclass(frozen=True)
class PipelinePortConfig:
    """Port provisioning of a multi-pipeline block.

    ``ingress_pipelines`` bounds enqueues per cycle, ``egress_pipelines``
    bounds dequeues per cycle.  The paper's single-pipeline baseline is
    (1, 1); a Tomahawk-class 3.2 Tbit/s switch needs roughly (6, 6) at a
    64-byte minimum packet size.
    """

    ingress_pipelines: int = 1
    egress_pipelines: int = 1

    def __post_init__(self) -> None:
        if self.ingress_pipelines <= 0 or self.egress_pipelines <= 0:
            raise ValueError("pipeline counts must be positive")


@dataclass
class MultiPipelineStats:
    """Per-cycle port-budget accounting."""

    enqueues_accepted: int = 0
    enqueues_refused: int = 0
    dequeues_accepted: int = 0
    dequeues_refused: int = 0
    #: Cycles in which at least one enqueue had to be refused.
    enqueue_overflow_cycles: int = 0
    #: Cycles in which at least one dequeue had to be refused.
    dequeue_overflow_cycles: int = 0
    cycles_observed: int = 0

    @property
    def enqueue_loss_fraction(self) -> float:
        total = self.enqueues_accepted + self.enqueues_refused
        return self.enqueues_refused / total if total else 0.0

    @property
    def dequeue_loss_fraction(self) -> float:
        total = self.dequeues_accepted + self.dequeues_refused
        return self.dequeues_refused / total if total else 0.0


class MultiPipelineBlock:
    """A PIFO block shared by several ingress and egress pipelines.

    The underlying element storage and ordering semantics are exactly those
    of :class:`~repro.hardware.pifo_block.PIFOBlock`; only the per-cycle
    port budget changes.  The inner block runs in functional mode (its own
    1-enqueue/1-dequeue constraint is superseded by the port budget modelled
    here).

    Parameters
    ----------
    ports:
        Ingress/egress provisioning.
    strict:
        When True, operations beyond the per-cycle budget are refused
        (``enqueue`` returns False / ``dequeue`` returns None); when False
        they proceed but are counted, modelling an over-clocked block.
    """

    def __init__(
        self,
        ports: PipelinePortConfig = PipelinePortConfig(),
        name: str = "multi-pipeline-block",
        strict: bool = True,
        **block_kwargs: Any,
    ) -> None:
        self.ports = ports
        self.name = name
        self.strict = strict
        self.block = PIFOBlock(name=f"{name}.inner", strict_timing=False, **block_kwargs)
        self.stats = MultiPipelineStats()
        self._cycle: Optional[int] = None
        self._enqueues_this_cycle = 0
        self._dequeues_this_cycle = 0

    # -- cycle accounting -----------------------------------------------------
    def _advance_cycle(self, cycle: Optional[int]) -> None:
        if cycle is None or cycle == self._cycle:
            return
        if cycle < (self._cycle or 0):
            raise HardwareModelError(
                f"cycle numbers must not go backwards (got {cycle} after "
                f"{self._cycle})"
            )
        self._cycle = cycle
        self._enqueues_this_cycle = 0
        self._dequeues_this_cycle = 0
        self.stats.cycles_observed += 1

    # -- block interface --------------------------------------------------------
    def enqueue(
        self,
        logical_pifo: int,
        rank: float,
        flow: str,
        metadata: Any = None,
        cycle: Optional[int] = None,
        pipeline: int = 0,
    ) -> bool:
        """Enqueue from one ingress pipeline.  Returns False when the cycle's
        ingress port budget is exhausted (strict mode only)."""
        if not 0 <= pipeline < self.ports.ingress_pipelines:
            raise HardwareModelError(
                f"ingress pipeline {pipeline} out of range "
                f"(0..{self.ports.ingress_pipelines - 1})"
            )
        self._advance_cycle(cycle)
        if cycle is not None and self._enqueues_this_cycle >= self.ports.ingress_pipelines:
            self.stats.enqueues_refused += 1
            if self._enqueues_this_cycle == self.ports.ingress_pipelines:
                self.stats.enqueue_overflow_cycles += 1
            self._enqueues_this_cycle += 1
            if self.strict:
                return False
        else:
            self._enqueues_this_cycle += 1
        accepted = self.block.enqueue(logical_pifo, rank=rank, flow=flow, metadata=metadata)
        if accepted:
            self.stats.enqueues_accepted += 1
        return accepted

    def dequeue(
        self,
        logical_pifo: int,
        cycle: Optional[int] = None,
        pipeline: int = 0,
    ) -> Optional[DequeuedElement]:
        """Dequeue towards one egress pipeline.  Returns None when the PIFO
        is empty or the cycle's egress port budget is exhausted."""
        if not 0 <= pipeline < self.ports.egress_pipelines:
            raise HardwareModelError(
                f"egress pipeline {pipeline} out of range "
                f"(0..{self.ports.egress_pipelines - 1})"
            )
        self._advance_cycle(cycle)
        if cycle is not None and self._dequeues_this_cycle >= self.ports.egress_pipelines:
            self.stats.dequeues_refused += 1
            if self._dequeues_this_cycle == self.ports.egress_pipelines:
                self.stats.dequeue_overflow_cycles += 1
            self._dequeues_this_cycle += 1
            if self.strict:
                return None
        else:
            self._dequeues_this_cycle += 1
        element = self.block.dequeue(logical_pifo)
        if element is not None:
            self.stats.dequeues_accepted += 1
        return element

    def peek(self, logical_pifo: int) -> Optional[DequeuedElement]:
        return self.block.peek(logical_pifo)

    def __len__(self) -> int:
        return len(self.block)

    def is_empty(self, logical_pifo: Optional[int] = None) -> bool:
        return self.block.is_empty(logical_pifo)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiPipelineBlock(name={self.name!r}, "
            f"ingress={self.ports.ingress_pipelines}, "
            f"egress={self.ports.egress_pipelines}, len={len(self)})"
        )


def required_pipelines(
    aggregate_capacity_bps: float,
    min_packet_bytes: int = 64,
    clock_hz: float = 1e9,
) -> int:
    """How many pipelines a switch of the given aggregate capacity needs.

    A single pipeline at ``clock_hz`` forwards one minimum-size packet per
    cycle; the Section 6.3 example (3.2 Tbit/s Tomahawk-class switch, 64-byte
    packets) therefore needs about 6 ingress and 6 egress pipelines.
    """
    if aggregate_capacity_bps <= 0:
        raise ValueError("aggregate_capacity_bps must be positive")
    packets_per_second = aggregate_capacity_bps / (min_packet_bytes * 8)
    return max(1, math.ceil(packets_per_second / clock_hz))
