"""Metrics registry: counters, gauges and histograms, free when off.

Design
------
The registry follows a *construction-time capture* discipline: a component
asks for its instruments exactly once, when it is built, via
``metrics.active()``.  When no registry is enabled that call returns
``None`` and the component stores ``None`` — its hot loop then pays one
local ``is not None`` check (a single pointer comparison) and nothing
else.  There is no per-event name lookup, no dict hashing, and no
indirection through the module when metrics are off.

Three collection styles, by cost profile:

* **Inline instruments** (``Counter`` / ``Gauge`` / ``Histogram``) for
  code that already has the number in hand — the simulator event loop,
  the event-queue compactor.  ``inc()`` is one attribute add.
* **Callbacks** (``register_callback``) for state that can be read
  lazily — per-port switch counters, buffer occupancy, fault summaries.
  The hot path pays *zero*: the values are pulled only at
  ``snapshot()`` time.
* **Global sources** (``register_global_source``) for module-level
  counter dicts that exist whether or not a registry does (the tree-
  kernel cache).  Every registry snapshot folds them in, so there is a
  single source of truth for ``repro perf`` and ``campaign --json``.

Histograms use fixed bucket upper bounds (no dynamic resizing, no
allocation per observe): an ``observe`` is a linear scan over a handful
of floats plus two adds, which for the default 12-bucket latency layout
is faster than ``bisect`` up to ~20 buckets.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import (Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "enable",
    "disable",
    "active",
    "is_enabled",
    "collecting",
    "register_global_source",
    "global_sources_snapshot",
    "merge_counts",
]

#: Default bucket upper bounds for latency-style histograms, in seconds.
#: Spans 1 µs .. 10 s in roughly-logarithmic steps; the registry adds a
#: +Inf overflow bucket implicitly.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing count.  ``inc()`` is one attribute add."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, float]:
        return {self.name: self.value}


class Gauge:
    """Last-written value, with a high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def snapshot(self) -> Dict[str, float]:
        return {self.name: self.value, f"{self.name}.max": self.max_value}


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``buckets`` are upper bounds (inclusive) in ascending order; values
    above the last bound land in an implicit +Inf overflow bucket.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must ascend: {bounds}")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """(upper_bound, count) pairs; the final bound is +Inf."""
        bounds = list(self.bounds) + [float("inf")]
        return list(zip(bounds, self.counts))

    def snapshot(self) -> Dict[str, float]:
        out = {
            f"{self.name}.count": self.count,
            f"{self.name}.sum": self.sum,
            f"{self.name}.mean": self.mean,
        }
        if self.count:
            out[f"{self.name}.min"] = self.min
            out[f"{self.name}.max"] = self.max
        return out


# -- module-level global sources (exist with or without a registry) -----------

_global_sources: Dict[str, Callable[[], Mapping[str, float]]] = {}


def register_global_source(prefix: str,
                           fn: Callable[[], Mapping[str, float]]) -> None:
    """Register an always-on counter source folded into every snapshot.

    Used for module-level counter dicts (e.g. the tree-kernel cache)
    that accumulate regardless of whether a registry is enabled.
    Re-registering a prefix replaces the previous source.
    """
    _global_sources[prefix] = fn


def global_sources_snapshot() -> Dict[str, float]:
    """Flat ``prefix.key -> value`` mapping over all global sources."""
    out: Dict[str, float] = {}
    for prefix, fn in _global_sources.items():
        try:
            values = fn()
        except Exception:  # a broken source must not break observability
            continue
        for key, value in values.items():
            if isinstance(value, (int, float)):
                out[f"{prefix}.{key}"] = value
    return out


def merge_counts(dicts: Iterable[Mapping[str, float]]) -> Dict[str, float]:
    """Sum numeric values key-wise across several counter dicts.

    Single source of truth for aggregating per-worker counter dicts
    (engine kernel-cache totals, CLI summaries).
    """
    totals: Dict[str, float] = {}
    for counts in dicts:
        for key, value in counts.items():
            if isinstance(value, (int, float)):
                totals[key] = totals.get(key, 0) + value
    return totals


class MetricsRegistry:
    """Get-or-create instrument store plus lazy callback collection."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._callbacks: List[Tuple[str, Callable[[], Mapping[str, float]]]] = []
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type, *args) -> object:
        with self._lock:
            found = self._instruments.get(name)
            if found is not None:
                if not isinstance(found, kind):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(found).__name__}, not {kind.__name__}"
                    )
                return found
            made = kind(name, *args)
            self._instruments[name] = made
            return made

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get(name, Histogram, buckets)  # type: ignore[return-value]

    def register_callback(self, prefix: str,
                          fn: Callable[[], Mapping[str, float]]) -> None:
        """Attach a lazy source; read only at snapshot() time."""
        with self._lock:
            self._callbacks.append((prefix, fn))

    def snapshot(self) -> Dict[str, float]:
        """Flat name -> value mapping over instruments, callbacks and
        global sources.  Sorted keys, so output is deterministic."""
        out: Dict[str, float] = {}
        with self._lock:
            instruments = list(self._instruments.values())
            callbacks = list(self._callbacks)
        for instrument in instruments:
            out.update(instrument.snapshot())  # type: ignore[attr-defined]
        for prefix, fn in callbacks:
            try:
                values = fn()
            except Exception:
                continue
            for key, value in values.items():
                if isinstance(value, (int, float)):
                    out[f"{prefix}.{key}"] = value
        out.update(global_sources_snapshot())
        return dict(sorted(out.items()))

    def histograms(self) -> Dict[str, Histogram]:
        with self._lock:
            return {name: inst for name, inst in self._instruments.items()
                    if isinstance(inst, Histogram)}


# -- the module-level null fast path ------------------------------------------
#
# Components capture the result of ``active()`` at construction time.
# When disabled that is ``None`` and the hot loop's only cost is a local
# ``if m is not None`` — the module globals are never consulted again.

_active: Optional[MetricsRegistry] = None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the process-wide registry."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> None:
    global _active
    _active = None


def active() -> Optional[MetricsRegistry]:
    """The enabled registry, or None — capture this at construction."""
    return _active


def is_enabled() -> bool:
    return _active is not None


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None
               ) -> Iterator[MetricsRegistry]:
    """Enable a registry for the duration of a with-block (tests, CLI)."""
    global _active
    previous = _active
    installed = enable(registry)
    try:
        yield installed
    finally:
        _active = previous
