"""How much does an *exact* PIFO buy over an approximation?

The paper argues a true PIFO is feasible in hardware; the follow-on SP-PIFO
line of work instead approximates it with a few strict-priority FIFO queues.
This example compares the two on the same STFQ-ranked workload and prints
the inversion counts, showing what the exactness is worth and where the
approximation struggles (rank distributions that drift over time).

Run it with::

    python examples/sp_pifo_approximation.py
"""

from __future__ import annotations

import random

from repro.extensions import SPPIFOQueue, compare_with_exact_pifo, count_inversions


def uniform_rank_workload(elements: int, seed: int = 1):
    rng = random.Random(seed)
    return [(index, rng.uniform(0.0, 100.0)) for index in range(elements)]


def drifting_rank_workload(elements: int, flows: int = 16, seed: int = 2):
    rng = random.Random(seed)
    finish = {f"flow{i}": 0.0 for i in range(flows)}
    arrivals = []
    for index in range(elements):
        flow = rng.choice(list(finish))
        finish[flow] += rng.uniform(0.5, 1.5)
        arrivals.append((index, finish[flow]))
    return arrivals


def sweep(label: str, arrivals) -> None:
    print(f"--- {label} ({len(arrivals)} elements) ---")
    print(f"{'design':28s} {'inversions':>12s} {'adjacent out-of-order':>22s}")
    for queues in (2, 4, 8, 16):
        result = compare_with_exact_pifo(arrivals, num_queues=queues, drain_every=2)
        print(f"SP-PIFO, {queues:2d} queues          {result.inversions:12d} "
              f"{result.unpifoness:22.3f}")
    exact = compare_with_exact_pifo(arrivals, num_queues=2, drain_every=2)
    print(f"{'exact PIFO (this paper)':28s} {exact.exact_inversions:12d} "
          f"{0.0:22.3f}")
    print()


def peek_inside_an_sp_pifo() -> None:
    print("--- inside an SP-PIFO: bounds adapt to the rank distribution ---")
    queue = SPPIFOQueue(num_queues=4)
    rng = random.Random(3)
    for index in range(200):
        queue.push(index, rng.uniform(0.0, 100.0))
    print("queue bounds after 200 pushes :", [round(b, 1) for b in queue.bounds()])
    print("per-queue occupancy           :", queue.occupancy())
    drained = []
    while not queue.is_empty:
        drained.append(queue.pop_with_rank()[0])
    print("inversions when drained       :", count_inversions(drained))
    print()


if __name__ == "__main__":
    sweep("stationary uniform ranks", uniform_rank_workload(3000))
    sweep("drifting STFQ virtual times", drifting_rank_workload(3000))
    peek_inside_an_sp_pifo()
