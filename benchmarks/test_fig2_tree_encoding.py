"""Figure 2 — a tree of PIFOs encodes the instantaneous scheduling order.

Regenerates: the P3, P1, P2, P4 example of Figure 2 and measures the cost of
encoding/decoding scheduling order through a two-level PIFO tree at scale.
"""

from __future__ import annotations

from conftest import report

from repro.algorithms import build_fig3_tree
from repro.core import PIFO, Packet, ProgrammableScheduler


def figure2_order():
    root, left, right = PIFO(name="root"), PIFO(name="L"), PIFO(name="R")
    for index, child in enumerate(["L", "R", "R", "L"]):
        root.push(child, rank=index)
    left.push("P3", 0)
    left.push("P4", 1)
    right.push("P1", 0)
    right.push("P2", 1)
    order = []
    while root:
        child = root.pop()
        order.append(left.pop() if child == "L" else right.pop())
    return order


def test_fig2_instantaneous_order(benchmark):
    order = benchmark(figure2_order)
    report("Figure 2: PIFO-tree order encoding",
           [{"paper_order": "P3, P1, P2, P4", "measured_order": ", ".join(order)}])
    assert order == ["P3", "P1", "P2", "P4"]


def test_fig2_tree_walk_throughput(benchmark):
    """Throughput of the enqueue-path (leaf-to-root transactions) plus the
    dequeue-path (root-to-leaf reference walk) for a two-level tree."""
    packets = [Packet(flow=flow, length=1000) for flow in "ABCD" for _ in range(250)]

    def enqueue_dequeue_all():
        scheduler = ProgrammableScheduler(build_fig3_tree())
        for packet in packets:
            scheduler.enqueue(packet)
        return len(scheduler.drain())

    count = benchmark(enqueue_dequeue_all)
    assert count == 1000
