"""Classic strict-priority scheduler baseline.

One FIFO per priority level; the lowest-numbered non-empty level is served
first.  This is one of the three algorithms the paper notes are actually
found in today's switches (alongside DRR and traffic shaping).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from ..core.packet import Packet


class StrictPriorityQueue:
    """Strict priority across levels, FIFO within a level."""

    def __init__(self, capacity_per_level: Optional[int] = None) -> None:
        if capacity_per_level is not None and capacity_per_level <= 0:
            raise ValueError("capacity_per_level must be positive or None")
        self.capacity_per_level = capacity_per_level
        self._levels: Dict[int, Deque[Packet]] = {}
        self.drops = 0
        self._count = 0

    def enqueue(self, packet: Packet, now: float = 0.0) -> bool:
        level = self._levels.setdefault(packet.priority, deque())
        if (
            self.capacity_per_level is not None
            and len(level) >= self.capacity_per_level
        ):
            self.drops += 1
            return False
        packet.enqueue_time = now
        level.append(packet)
        self._count += 1
        return True

    def dequeue(self, now: float = 0.0) -> Optional[Packet]:
        for priority in sorted(self._levels):
            level = self._levels[priority]
            if level:
                packet = level.popleft()
                packet.dequeue_time = now
                self._count -= 1
                return packet
        return None

    def __len__(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0
