"""Generalized Processor Sharing (GPS) fluid reference.

GPS is the idealised fluid fair-queueing discipline that WFQ, STFQ and DRR
approximate: at every instant, each backlogged flow is served at a rate
proportional to its weight.  It cannot be implemented packet-by-packet, but
it can be computed offline for a given arrival trace, which makes it the
ground truth for fairness experiments — a packet scheduler is "fair" to the
extent its per-flow service tracks the GPS service curve.

:class:`GPSFluidSimulator` replays an arrival trace through the fluid system
and reports per-flow service as a function of time plus per-packet virtual
finish times.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.packet import Packet

Arrival = Tuple[float, Packet]


@dataclass
class GPSResult:
    """Output of a GPS fluid run."""

    #: Per-flow cumulative bytes served at the end of the run.
    served_bytes: Dict[str, float]
    #: Per-packet finish times in the fluid system, in input order.
    finish_times: List[float]
    #: Time at which the fluid system emptied (or the horizon).
    end_time: float

    def share_of(self, flow: str) -> float:
        total = sum(self.served_bytes.values())
        return self.served_bytes.get(flow, 0.0) / total if total else 0.0


class GPSFluidSimulator:
    """Offline fluid simulation of weighted GPS on a single link."""

    def __init__(
        self,
        link_rate_bps: float,
        weights: Optional[Mapping[str, float]] = None,
        default_weight: float = 1.0,
    ) -> None:
        if link_rate_bps <= 0:
            raise ValueError("link_rate_bps must be positive")
        self.link_rate_bytes_per_s = link_rate_bps / 8.0
        self.weights = dict(weights or {})
        self.default_weight = default_weight

    def weight_of(self, flow: str) -> float:
        return self.weights.get(flow, self.default_weight)

    def run(self, arrivals: Sequence[Arrival], horizon: Optional[float] = None) -> GPSResult:
        """Simulate the fluid system over a finite arrival trace.

        The simulation advances from event to event (arrivals and backlog
        departures), serving every backlogged flow at rate
        ``weight / total_backlogged_weight * link_rate`` in between.
        """
        ordered = sorted(
            ((time, index, packet) for index, (time, packet) in enumerate(arrivals)),
            key=lambda item: (item[0], item[1]),
        )
        backlog: Dict[str, float] = {}
        served: Dict[str, float] = {}
        # Per-flow FIFO of (cumulative_bytes_required, original_index);
        # packets finish strictly in arrival order within a flow, so head
        # removal is O(1) with a deque.
        pending_finish: Dict[str, Deque[Tuple[float, int]]] = {}
        cumulative_in: Dict[str, float] = {}
        finish_times: List[Optional[float]] = [None] * len(ordered)

        now = 0.0
        next_arrival = 0

        def _advance(until: float) -> None:
            nonlocal now
            while now < until - 1e-15:
                active = {f: b for f, b in backlog.items() if b > 1e-12}
                if not active:
                    now = until
                    return
                total_weight = sum(self.weight_of(f) for f in active)
                # Time until the first active flow empties at current rates.
                rates = {
                    f: self.weight_of(f) / total_weight * self.link_rate_bytes_per_s
                    for f in active
                }
                time_to_empty = min(backlog[f] / rates[f] for f in active)
                step = min(time_to_empty, until - now)
                for flow, rate in rates.items():
                    delta = rate * step
                    backlog[flow] -= delta
                    served[flow] = served.get(flow, 0.0) + delta
                    # Record finish times of packets fully served.
                    queue = pending_finish.get(flow, ())
                    while queue and served[flow] >= queue[0][0] - 1e-9:
                        _bytes_needed, index = queue.popleft()
                        finish_times[index] = now + step
                now += step

        for time, index, packet in ordered:
            _advance(time)
            now = max(now, time)
            flow = packet.flow
            backlog[flow] = backlog.get(flow, 0.0) + packet.length
            cumulative_in[flow] = cumulative_in.get(flow, 0.0) + packet.length
            pending_finish.setdefault(flow, deque()).append((cumulative_in[flow], index))
            next_arrival += 1

        # Drain the remaining backlog (or stop at the horizon).
        remaining = sum(backlog.values())
        if horizon is not None:
            _advance(horizon)
        else:
            while remaining > 1e-9:
                active = {f: b for f, b in backlog.items() if b > 1e-12}
                if not active:
                    break
                total_weight = sum(self.weight_of(f) for f in active)
                rates = {
                    f: self.weight_of(f) / total_weight * self.link_rate_bytes_per_s
                    for f in active
                }
                time_to_empty = min(backlog[f] / rates[f] for f in active)
                _advance(now + time_to_empty)
                remaining = sum(backlog.values())

        return GPSResult(
            served_bytes=dict(served),
            finish_times=[t if t is not None else float("inf") for t in finish_times],
            end_time=now,
        )
