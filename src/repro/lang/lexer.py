"""Tokenizer for the transaction language.

The language is deliberately small: it needs to express exactly the programs
that appear in the paper's figures.  Its surface syntax is Python-like —
statements end at a newline, blocks are introduced by indentation — but the
lexer is tolerant of the C-flavoured details that appear in the figures
(``if (cond):`` with or without the parentheses or the colon, ``;`` at the
end of a line, ``//`` comments).

The lexer produces a flat stream of :class:`Token` objects.  Indentation is
converted into explicit ``INDENT`` / ``DEDENT`` tokens, exactly like
Python's own tokenizer, which keeps the parser a plain recursive-descent
parser with no knowledge of whitespace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .errors import LexerError


class TokenType(enum.Enum):
    """Kinds of token the lexer emits."""

    NUMBER = "NUMBER"
    NAME = "NAME"
    STRING = "STRING"

    # operators and punctuation
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    ASSIGN = "="
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    DOT = "."
    COLON = ":"

    # keywords
    IF = "if"
    ELSE = "else"
    ELIF = "elif"
    IN = "in"
    NOT = "not"
    AND = "and"
    OR = "or"
    TRUE = "true"
    FALSE = "false"

    # layout
    NEWLINE = "NEWLINE"
    INDENT = "INDENT"
    DEDENT = "DEDENT"
    EOF = "EOF"


#: Keywords recognised by the lexer, case-insensitive so that the paper's
#: ``If``/``if`` inconsistencies both work.
KEYWORDS = {
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "elif": TokenType.ELIF,
    "in": TokenType.IN,
    "not": TokenType.NOT,
    "and": TokenType.AND,
    "or": TokenType.OR,
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
}

#: Two-character operators, checked before single-character ones.
TWO_CHAR_OPERATORS = {
    "==": TokenType.EQ,
    "!=": TokenType.NE,
    "<=": TokenType.LE,
    ">=": TokenType.GE,
}

SINGLE_CHAR_OPERATORS = {
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "=": TokenType.ASSIGN,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    ":": TokenType.COLON,
}


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` holds the literal text for names and operators and the parsed
    value for numbers (``int`` or ``float``).
    """

    type: TokenType
    value: object
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


def _strip_comment(line: str) -> str:
    """Remove ``//`` and ``#`` comments, ignoring them inside nothing (the
    language has no string literals that could contain them)."""
    for marker in ("//", "#"):
        index = line.find(marker)
        if index != -1:
            line = line[:index]
    return line


def _measure_indent(line: str) -> Tuple[int, str]:
    """Return (indent width, stripped text).  Tabs count as 4 columns."""
    width = 0
    for ch in line:
        if ch == " ":
            width += 1
        elif ch == "\t":
            width += 4
        else:
            break
    return width, line.lstrip(" \t")


class _LineLexer:
    """Tokenizes a single logical line (no indentation handling)."""

    def __init__(self, text: str, line_no: int, indent_offset: int) -> None:
        self.text = text
        self.line_no = line_no
        self.offset = indent_offset
        self.pos = 0

    def _error(self, message: str) -> LexerError:
        return LexerError(message, line=self.line_no, column=self.pos + self.offset + 1)

    def tokens(self) -> Iterator[Token]:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch in " \t":
                self.pos += 1
                continue
            if ch == ";":
                # A semicolon ends a statement like a newline does.
                yield self._token(TokenType.NEWLINE, ";")
                self.pos += 1
                continue
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield self._number()
                continue
            if ch.isalpha() or ch == "_":
                yield self._name()
                continue
            two = text[self.pos : self.pos + 2]
            if two in TWO_CHAR_OPERATORS:
                yield self._token(TWO_CHAR_OPERATORS[two], two)
                self.pos += 2
                continue
            if ch in SINGLE_CHAR_OPERATORS:
                yield self._token(SINGLE_CHAR_OPERATORS[ch], ch)
                self.pos += 1
                continue
            raise self._error(f"unexpected character {ch!r}")

    def _peek(self, ahead: int) -> str:
        index = self.pos + ahead
        return self.text[index] if index < len(self.text) else ""

    def _token(self, token_type: TokenType, value: object) -> Token:
        return Token(token_type, value, self.line_no, self.pos + self.offset + 1)

    def _number(self) -> Token:
        start = self.pos
        text = self.text
        seen_dot = False
        seen_exp = False
        while self.pos < len(text):
            ch = text[self.pos]
            if ch.isdigit():
                self.pos += 1
            elif ch == "." and not seen_dot and not seen_exp:
                # A dot followed by a letter is attribute access on an int
                # literal, which the language does not allow; stop the number.
                if self._peek(1).isalpha():
                    break
                seen_dot = True
                self.pos += 1
            elif ch in "eE" and not seen_exp and self.pos > start:
                nxt = self._peek(1)
                if nxt.isdigit() or (nxt in "+-" and self._peek(2).isdigit()):
                    seen_exp = True
                    self.pos += 2 if nxt in "+-" else 1
                else:
                    break
            else:
                break
        literal = text[start : self.pos]
        try:
            value: object = float(literal) if (seen_dot or seen_exp) else int(literal)
        except ValueError:  # pragma: no cover - defensive
            raise self._error(f"invalid number literal {literal!r}") from None
        return Token(TokenType.NUMBER, value, self.line_no, start + self.offset + 1)

    def _name(self) -> Token:
        start = self.pos
        text = self.text
        while self.pos < len(text) and (text[self.pos].isalnum() or text[self.pos] == "_"):
            self.pos += 1
        word = text[start : self.pos]
        token_type = KEYWORDS.get(word.lower(), TokenType.NAME)
        value: object = word
        if token_type in (TokenType.TRUE, TokenType.FALSE):
            value = token_type is TokenType.TRUE
        return Token(token_type, value, self.line_no, start + self.offset + 1)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list of tokens ending with ``EOF``.

    Raises :class:`~repro.lang.errors.LexerError` for characters outside the
    language or for inconsistent indentation (a dedent that does not return
    to a previously seen indentation level).
    """
    tokens: List[Token] = []
    indent_stack: List[int] = [0]
    open_parens = 0

    lines = source.splitlines()
    for line_index, raw_line in enumerate(lines, start=1):
        line = _strip_comment(raw_line).rstrip()
        if not line.strip():
            continue
        indent, text = _measure_indent(line)

        if open_parens == 0:
            indent = _emit_indentation(tokens, indent_stack, indent, line_index)
        line_tokens = list(_LineLexer(text, line_index, indent_offset=len(raw_line) - len(text)).tokens())
        for token in line_tokens:
            if token.type is TokenType.LPAREN or token.type is TokenType.LBRACKET:
                open_parens += 1
            elif token.type is TokenType.RPAREN or token.type is TokenType.RBRACKET:
                open_parens = max(0, open_parens - 1)
            tokens.append(token)
        if open_parens == 0 and line_tokens:
            last = line_tokens[-1]
            if last.type is not TokenType.NEWLINE:
                tokens.append(Token(TokenType.NEWLINE, "\n", line_index, len(raw_line) + 1))

    last_line = len(lines) + 1
    while len(indent_stack) > 1:
        indent_stack.pop()
        tokens.append(Token(TokenType.DEDENT, "", last_line, 1))
    tokens.append(Token(TokenType.EOF, "", last_line, 1))
    return tokens


def _emit_indentation(
    tokens: List[Token],
    indent_stack: List[int],
    indent: int,
    line_no: int,
) -> int:
    """Push INDENT/DEDENT tokens to match ``indent`` and return it."""
    current = indent_stack[-1]
    if indent > current:
        indent_stack.append(indent)
        tokens.append(Token(TokenType.INDENT, indent, line_no, 1))
    elif indent < current:
        while indent_stack and indent_stack[-1] > indent:
            indent_stack.pop()
            tokens.append(Token(TokenType.DEDENT, indent, line_no, 1))
        if not indent_stack or indent_stack[-1] != indent:
            raise LexerError(
                f"unindent to column {indent} does not match any outer "
                "indentation level",
                line=line_no,
                column=1,
            )
    return indent


def token_types(source: str) -> List[TokenType]:
    """Convenience helper used by tests: the token-type sequence of a
    program, without values or positions."""
    return [token.type for token in tokenize(source)]
