"""Event primitives for the discrete-event simulator.

The simulator processes events in non-decreasing time order; events scheduled
for the same instant run in the order they were scheduled (a monotonically
increasing sequence number breaks ties), which keeps runs deterministic.

Hot-path design
---------------
An event is a bare ``(time, seq, callback)`` tuple — no wrapper object, no
dataclass ``__lt__``: the heap compares tuples in C, and since ``seq`` is
unique the callback is never compared.  Cancellation marks the event's
sequence number in a *tombstone set*; tombstoned entries are skipped on pop.
When tombstones outnumber half the heap the queue **compacts** — rebuilds
the heap without the dead entries — so a workload that arms and cancels many
wake-ups (shaped ports) cannot grow the heap without bound.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, List, Optional, Set, Tuple, Union

from ..exceptions import SimulationError
from ..obs import metrics

#: A scheduled callback: ``(time, seq, callback)``.  Returned by
#: :meth:`EventQueue.push` as the cancellation handle.
Event = Tuple[float, int, Callable[[], Any]]

#: Environment variable selecting the default event-queue backend
#: (``heap`` or ``wheel``) for simulators that do not pass one explicitly.
EVENT_QUEUE_ENV = "REPRO_EVENT_QUEUE"


class EventQueue:
    """A priority queue of ``(time, seq, callback)`` events.

    Ordered by (time, scheduling order).  ``push`` returns the raw entry
    tuple, which doubles as the handle for :meth:`cancel`.
    """

    __slots__ = ("_heap", "_tombstones", "_next_seq", "_metrics")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._tombstones: Set[int] = set()
        self._next_seq = 0
        # Captured once at construction: the active metrics registry's
        # instruments, or None.  push/cancel/pop stay untouched — only
        # compact() (rare by design) reports, so the disabled cost here
        # is literally zero on the per-event path.
        registry = metrics.active()
        self._metrics = None if registry is None else (
            registry.counter("sim.event_compactions"),
            registry.histogram("sim.tombstone_ratio",
                               buckets=(0.1, 0.25, 0.5, 0.75, 1.0)),
            registry.gauge("sim.heap_size"),
        )

    def push(self, time: float, callback: Callable[[], Any],
             name: str = "") -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle.

        ``name`` is accepted for API compatibility and ignored — per-event
        labels cost an allocation on the hottest path in the simulator.
        """
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = (time, seq, callback)
        heapq.heappush(self._heap, entry)
        return entry

    def insert(self, entry: Event) -> None:
        """Re-queue an already-built ``(time, seq, callback)`` entry.

        Used by the simulator when it demotes a deferred event back into
        the queue; the entry keeps its original sequence number so ordering
        is unaffected.
        """
        heapq.heappush(self._heap, entry)

    def cancel(self, entry: Event) -> None:
        """Mark an event so the simulator skips it when its time comes.

        Idempotent.  Compacts the heap when tombstones pile up past half
        its size.
        """
        self._tombstones.add(entry[1])
        if len(self._tombstones) * 2 > len(self._heap):
            self.compact()

    def cancelled(self, entry: Event) -> bool:
        """Whether the entry has been cancelled (and not yet collected)."""
        return entry[1] in self._tombstones

    def compact(self) -> None:
        """Rebuild the heap without tombstoned entries.

        In-place (``heap[:] = ...``) so callers holding a reference to the
        underlying list — the flattened :meth:`Simulator.run` loop — stay
        valid.  Also drops tombstones for entries already popped, keeping
        the set from leaking under cancel-after-fire misuse.
        """
        tombstones = self._tombstones
        if tombstones:
            heap = self._heap
            m = self._metrics
            if m is not None:
                compactions, ratio, heap_size = m
                compactions.inc()
                if heap:
                    ratio.observe(len(tombstones) / len(heap))
            heap[:] = [entry for entry in heap if entry[1] not in tombstones]
            heapq.heapify(heap)
            tombstones.clear()
            if m is not None:
                heap_size.set(len(heap))

    def pop(self) -> Event:
        """Remove and return the earliest live (non-cancelled) event."""
        heap = self._heap
        tombstones = self._tombstones
        while heap:
            entry = heapq.heappop(heap)
            if tombstones and entry[1] in tombstones:
                tombstones.discard(entry[1])
                continue
            return entry
        raise SimulationError("pop from an empty event queue")

    def peek(self) -> Optional[Event]:
        """Earliest live event without removing it, or ``None`` when empty.

        Lazily discards cancelled entries sitting at the head.
        """
        heap = self._heap
        tombstones = self._tombstones
        while heap:
            entry = heap[0]
            if tombstones and entry[1] in tombstones:
                heapq.heappop(heap)
                tombstones.discard(entry[1])
                continue
            return entry
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` when empty."""
        entry = self.peek()
        return None if entry is None else entry[0]

    def __len__(self) -> int:
        """Exact number of live (non-cancelled) events.

        ``len(heap) - len(tombstones)`` is only an estimate: a tombstone
        for an entry that already fired (cancel-after-fire) is not in the
        heap, so the subtraction under-counts — progress displays and
        ``repro campaign status`` event totals drift.  Count the live
        entries instead; the scan only runs while tombstones exist.
        """
        tombstones = self._tombstones
        if not tombstones:
            return len(self._heap)
        return sum(1 for entry in self._heap if entry[1] not in tombstones)

    def __bool__(self) -> bool:
        tombstones = self._tombstones
        if not tombstones:
            return bool(self._heap)
        return any(entry[1] not in tombstones for entry in self._heap)


class TimingWheelQueue:
    """Timing-wheel event queue: O(1) scheduling for near-horizon events.

    The sim's event population is dominated by port transmit completions a
    few microseconds out — a textbook timing-wheel workload.  The wheel is
    a power-of-two ring of slots, each ``tick`` seconds wide; an event at
    time ``t`` lands in slot ``int(t / tick) % slots``.  Events beyond the
    wheel horizon (``slots * tick`` ahead of the cursor) go to a heap
    **overflow ring** and migrate into the wheel lazily as the cursor
    approaches them — the hierarchical second level, without paying a
    multi-level cascade on the hot path.

    Ordering is identical to :class:`EventQueue`: (time, seq).  Within a
    slot, entries are kept sorted descending and popped from the tail; a
    slot is only re-sorted when a push dirtied it.  Slots are aliased
    (ticks congruent modulo ``slots`` share a slot), so the cursor checks
    the head entry's tick before serving a slot — an aliased future entry
    never jumps the queue.

    Cancellation uses the same tombstone-set protocol as the heap backend
    (entries are shared immutable tuples), with compaction when tombstones
    pile up.  API-compatible with :class:`EventQueue` plus :meth:`peek`
    and :meth:`insert`, which the simulator's generic run loop uses.
    """

    __slots__ = ("_slots", "_dirty", "_nslots", "_mask", "_tick", "_tick_inv",
                 "_cursor", "_overflow", "_tombstones", "_next_seq",
                 "_wheel_count", "_metrics")

    def __init__(self, tick: float = 1e-6, slots: int = 4096) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        if slots <= 0 or slots & (slots - 1):
            raise ValueError("slots must be a positive power of two")
        self._slots: List[List[Event]] = [[] for _ in range(slots)]
        self._dirty = bytearray(slots)
        self._nslots = slots
        self._mask = slots - 1
        self._tick = float(tick)
        self._tick_inv = 1.0 / float(tick)
        #: Absolute tick index the wheel is currently serving.
        self._cursor = 0
        #: Far-horizon events (tick >= cursor + nslots), a plain heap.
        self._overflow: List[Event] = []
        self._tombstones: Set[int] = set()
        self._next_seq = 0
        #: Entries resident in wheel slots (tombstoned ones included until
        #: they are lazily discarded).
        self._wheel_count = 0
        registry = metrics.active()
        self._metrics = None if registry is None else (
            registry.counter("sim.event_compactions"),
            registry.histogram("sim.tombstone_ratio",
                               buckets=(0.1, 0.25, 0.5, 0.75, 1.0)),
            registry.gauge("sim.heap_size"),
        )

    def push(self, time: float, callback: Callable[[], Any],
             name: str = "") -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = (time, seq, callback)
        self.insert(entry)
        return entry

    def insert(self, entry: Event) -> None:
        """Place an already-built entry, preserving its sequence number."""
        idx = int(entry[0] * self._tick_inv)
        cursor = self._cursor
        if idx < cursor:
            # A peek may have advanced the cursor past this entry's tick
            # (peeking walks forward to find the head).  Rewind — the
            # skipped slots are empty or hold aliased future entries, and
            # the per-slot tick check keeps ordering exact either way.
            if idx < 0:
                idx = 0
            self._cursor = idx
        elif idx >= cursor + self._nslots:
            heapq.heappush(self._overflow, entry)
            return
        i = idx & self._mask
        self._slots[i].append(entry)
        self._dirty[i] = 1
        self._wheel_count += 1

    def cancel(self, entry: Event) -> None:
        """Tombstone an event; compacts when tombstones pile up.

        Compaction rebuilds every slot — O(nslots) even when nearly
        empty — so it needs an absolute tombstone floor on top of the
        ratio check: a near-empty queue taking steady cancels must not
        pay a full ring scan per cancel.
        """
        self._tombstones.add(entry[1])
        tombstones = len(self._tombstones)
        if (tombstones > 64
                and tombstones * 2 > self._wheel_count + len(self._overflow)):
            self.compact()

    def cancelled(self, entry: Event) -> bool:
        return entry[1] in self._tombstones

    def compact(self) -> None:
        """Rebuild wheel and overflow without tombstoned entries."""
        tombstones = self._tombstones
        if not tombstones:
            return
        m = self._metrics
        total = self._wheel_count + len(self._overflow)
        if m is not None:
            compactions, ratio, size_gauge = m
            compactions.inc()
            if total:
                ratio.observe(len(tombstones) / total)
        live = [entry for slot in self._slots for entry in slot
                if entry[1] not in tombstones]
        live.extend(entry for entry in self._overflow
                    if entry[1] not in tombstones)
        for slot in self._slots:
            slot.clear()
        self._dirty[:] = bytes(self._nslots)
        self._overflow.clear()
        self._wheel_count = 0
        tombstones.clear()
        for entry in live:
            self.insert(entry)
        if m is not None:
            size_gauge.set(len(live))

    def _migrate(self, limit: int) -> None:
        """Pull overflow entries with tick < ``limit`` into the wheel."""
        overflow = self._overflow
        tombstones = self._tombstones
        tick_inv = self._tick_inv
        mask = self._mask
        slots = self._slots
        dirty = self._dirty
        pop = heapq.heappop
        while overflow and int(overflow[0][0] * tick_inv) < limit:
            entry = pop(overflow)
            if tombstones and entry[1] in tombstones:
                tombstones.discard(entry[1])
                continue
            i = int(entry[0] * tick_inv) & mask
            slots[i].append(entry)
            dirty[i] = 1
            self._wheel_count += 1

    def _resolve(self) -> Optional[List[Event]]:
        """Advance the cursor to the next live event's slot.

        Returns the slot list (sorted, live head at the tail) or ``None``
        when the queue is empty.  Lazily discards tombstoned entries and
        migrates overflow entries that came into the horizon.
        """
        tombstones = self._tombstones
        overflow = self._overflow
        slots = self._slots
        mask = self._mask
        nslots = self._nslots
        tick_inv = self._tick_inv
        dirty = self._dirty
        cursor = self._cursor
        while True:
            if self._wheel_count == 0:
                # Wheel empty: jump straight to the overflow head.
                while overflow and tombstones and overflow[0][1] in tombstones:
                    tombstones.discard(heapq.heappop(overflow)[1])
                if not overflow:
                    self._cursor = cursor
                    return None
                head_tick = int(overflow[0][0] * tick_inv)
                if head_tick > cursor:
                    cursor = head_tick
                self._cursor = cursor
                self._migrate(cursor + nslots)
                continue
            i = cursor & mask
            slot = slots[i]
            if not slot:
                cursor += 1
                if overflow:
                    self._cursor = cursor
                    self._migrate(cursor + nslots)
                continue
            if dirty[i]:
                slot.sort(reverse=True)
                dirty[i] = 0
            entry = slot[-1]
            if tombstones and entry[1] in tombstones:
                slot.pop()
                tombstones.discard(entry[1])
                self._wheel_count -= 1
                continue
            if int(entry[0] * tick_inv) != cursor:
                # Aliased entry for a tick a full wheel turn (or more)
                # ahead — not due yet.
                cursor += 1
                if overflow:
                    self._cursor = cursor
                    self._migrate(cursor + nslots)
                continue
            self._cursor = cursor
            return slot

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        slot = self._resolve()
        if slot is None:
            raise SimulationError("pop from an empty event queue")
        self._wheel_count -= 1
        return slot.pop()

    def peek(self) -> Optional[Event]:
        """Earliest live event without removing it, or ``None``."""
        slot = self._resolve()
        return None if slot is None else slot[-1]

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` when empty."""
        entry = self.peek()
        return None if entry is None else entry[0]

    def __len__(self) -> int:
        """Exact number of live (non-cancelled) events (see EventQueue)."""
        tombstones = self._tombstones
        if not tombstones:
            return self._wheel_count + len(self._overflow)
        live = sum(1 for slot in self._slots for entry in slot
                   if entry[1] not in tombstones)
        live += sum(1 for entry in self._overflow
                    if entry[1] not in tombstones)
        return live

    def __bool__(self) -> bool:
        tombstones = self._tombstones
        if not tombstones:
            return bool(self._wheel_count or self._overflow)
        return self.peek() is not None


#: Anything the simulator accepts as an event queue.
AnyEventQueue = Union[EventQueue, TimingWheelQueue]

#: Registered backends for :func:`make_event_queue`.
EVENT_QUEUE_BACKENDS = ("heap", "wheel")


def make_event_queue(kind: Optional[str] = None) -> AnyEventQueue:
    """Build an event queue backend by name.

    ``kind`` may be ``"heap"`` (the default), ``"wheel"``, or ``None`` to
    consult the ``REPRO_EVENT_QUEUE`` environment variable (same values;
    unset means heap).
    """
    if kind is None:
        kind = os.environ.get(EVENT_QUEUE_ENV) or "heap"
    if kind == "heap":
        return EventQueue()
    if kind == "wheel":
        tick = float(os.environ.get("REPRO_WHEEL_TICK", "1e-6"))
        slots = int(os.environ.get("REPRO_WHEEL_SLOTS", "4096"))
        return TimingWheelQueue(tick=tick, slots=slots)
    raise ValueError(
        f"unknown event queue backend {kind!r}; "
        f"expected one of {', '.join(EVENT_QUEUE_BACKENDS)}"
    )
