"""Lease queue: many executors draining one run table, safely.

The :class:`~repro.campaign.engine.WarmWorkerEngine` parallelises a
campaign *within* one host.  The :class:`LeaseQueue` parallelises it
*across* executors — separate processes, or separate hosts pointed at a
shared directory — using nothing but the filesystem:

* A **manifest** (``manifest.json``, written via tmp+rename) pins the run
  table: the expanded RunSpecs in canonical order, the shard size, the
  worker policy, and the lease TTL.  Every executor derives identical
  shards from it, so there is no coordinator process.

* **Generation-numbered lease files** make claims atomic.  Claiming shard
  ``N`` creates ``shards/0007.lease.g1`` with ``O_CREAT | O_EXCL`` — the
  filesystem picks exactly one winner.  Stealing an *expired* lease
  (heartbeat mtime older than the TTL) creates the next generation
  (``.g2``) the same way, so two would-be stealers cannot both win.
  Stale generations are left behind as an audit trail.

* **Heartbeat + cursor** live in the current generation's file: the
  holder rewrites it (tmp+rename) after every run with the advanced
  cursor, and touches its mtime between runs.  A crash leaves the cursor
  at the first unexecuted spec, so the stealer resumes mid-shard instead
  of repeating completed work.

* **Retry / quarantine** carry PR 7's semantics across hosts.  Each lease
  records how many holders have died at its current cursor
  (``attempt`` / ``attempt_cursor``); when a steal would push that past
  ``max_attempts``, the stealer writes a
  :data:`~repro.campaign.store.STATUS_QUARANTINED` record for the
  poisoned spec and advances past it — one broken run cannot wedge the
  queue.

* **Per-executor segments** (``segments/<executor>.jsonl``) are ordinary
  :class:`~repro.campaign.store.ResultStore` files, one per executor, so
  appends never contend.  :meth:`merge` folds them into a canonical store
  in run-table order, preferring ``ok`` records when a run was executed
  more than once (a stolen lease can duplicate its contested spec —
  duplicates collapse at merge, which is where the
  exactly-once-or-quarantined guarantee lives).

The wall clock is injectable (``time_fn``) so the protocol is testable
with a fake clock: lease mtimes are *set* from ``time_fn`` rather than
read from the filesystem's idea of "now".
"""

from __future__ import annotations

import errno
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..exceptions import ReproError
from ..obs.progress import ProgressWriter
from .spec import RunSpec
from .store import (
    STATUS_QUARANTINED,
    ResultStore,
    record_is_ok,
)
from .runner import WorkerPolicy, execute_spec_guarded, failure_record

DEFAULT_SHARD_SIZE = 4
#: A lease whose heartbeat is older than this is presumed dead.  Must be
#: comfortably larger than the per-run bound (``policy.timeout_s`` times
#: ``policy.max_attempts``), or live executors get robbed mid-run.
DEFAULT_LEASE_TTL_S = 60.0
#: Executors (lease generations) allowed to die on one spec before it is
#: quarantined.
DEFAULT_MAX_ATTEMPTS = 3

MANIFEST_NAME = "manifest.json"
SHARDS_DIR = "shards"
SEGMENTS_DIR = "segments"


class QueueError(ReproError):
    """The lease queue directory is missing, malformed, or misused."""


def _atomic_write_json(path: Path, payload: Dict) -> None:
    """Write ``payload`` to ``path`` via tmp+rename (single-file atomic)."""
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)


@dataclass
class _Lease:
    """An executor's live claim on one shard (parsed lease-file state)."""

    shard: int
    generation: int
    executor: str
    #: Index (within the shard) of the first unexecuted spec.
    cursor: int
    #: Lease generations that have died while at ``attempt_cursor``.
    attempt: int
    attempt_cursor: int

    def to_dict(self) -> Dict:
        return {
            "executor": self.executor,
            "cursor": self.cursor,
            "attempt": self.attempt,
            "attempt_cursor": self.attempt_cursor,
        }


@dataclass
class WorkReport:
    """What one :meth:`LeaseQueue.work` invocation accomplished."""

    executor: str
    shards: int = 0
    executed: int = 0
    quarantined: int = 0
    #: Shards abandoned because a newer lease generation appeared.
    preempted: int = 0

    def to_dict(self) -> Dict:
        return {"executor": self.executor, "shards": self.shards,
                "executed": self.executed, "quarantined": self.quarantined,
                "preempted": self.preempted}


class LeaseQueue:
    """A shared-directory work queue over a campaign's run table."""

    def __init__(self, root, time_fn: Callable[[], float] = time.time) -> None:
        self.root = Path(root)
        self._time_fn = time_fn
        self._manifest: Optional[Dict] = None
        self._specs: Optional[List[RunSpec]] = None

    # -- setup -------------------------------------------------------------
    @classmethod
    def initialize(
        cls,
        root,
        specs: Sequence[RunSpec],
        campaign: str,
        shard_size: int = DEFAULT_SHARD_SIZE,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        policy: Optional[WorkerPolicy] = None,
        time_fn: Callable[[], float] = time.time,
    ) -> "LeaseQueue":
        """Create (or idempotently reopen) a queue directory.

        A fresh directory gets a manifest pinning the run table; an
        existing one is reopened as-is — re-serving the same campaign is a
        no-op, re-serving a *different* one raises :class:`QueueError`
        rather than silently mixing run tables.
        """
        if shard_size < 1:
            raise QueueError("shard_size must be >= 1")
        queue = cls(root, time_fn=time_fn)
        manifest_path = queue.root / MANIFEST_NAME
        if manifest_path.exists():
            existing = queue.manifest
            if existing["campaign"] != campaign:
                raise QueueError(
                    f"queue at {queue.root} already serves campaign "
                    f"{existing['campaign']!r}, not {campaign!r}")
            fresh = [spec.to_dict() for spec in specs]
            if fresh != existing["runs"]:
                raise QueueError(
                    f"queue at {queue.root} pins a different run table "
                    f"({len(existing['runs'])} runs) than the one being "
                    f"served ({len(fresh)} runs)")
            return queue
        queue.root.mkdir(parents=True, exist_ok=True)
        (queue.root / SHARDS_DIR).mkdir(exist_ok=True)
        (queue.root / SEGMENTS_DIR).mkdir(exist_ok=True)
        _atomic_write_json(manifest_path, {
            "campaign": campaign,
            "shard_size": shard_size,
            "lease_ttl_s": lease_ttl_s,
            "max_attempts": max_attempts,
            "policy": (policy or WorkerPolicy()).to_dict(),
            "runs": [spec.to_dict() for spec in specs],
        })
        return queue

    @property
    def manifest(self) -> Dict:
        if self._manifest is None:
            path = self.root / MANIFEST_NAME
            if not path.exists():
                raise QueueError(f"no queue manifest at {path} "
                                 "(run `repro campaign serve` first)")
            self._manifest = json.loads(path.read_text(encoding="utf-8"))
        return self._manifest

    @property
    def specs(self) -> List[RunSpec]:
        if self._specs is None:
            self._specs = [RunSpec.from_dict(run)
                           for run in self.manifest["runs"]]
        return self._specs

    @property
    def shard_count(self) -> int:
        size = self.manifest["shard_size"]
        return -(-len(self.specs) // size)  # ceil division

    def shard_specs(self, shard: int) -> List[RunSpec]:
        size = self.manifest["shard_size"]
        return self.specs[shard * size:(shard + 1) * size]

    # -- paths -------------------------------------------------------------
    def _lease_path(self, shard: int, generation: int) -> Path:
        return self.root / SHARDS_DIR / f"{shard:04d}.lease.g{generation}"

    def _done_path(self, shard: int) -> Path:
        return self.root / SHARDS_DIR / f"{shard:04d}.done"

    def segment_store(self, executor: str) -> ResultStore:
        if not executor or "/" in executor or executor.startswith("."):
            raise QueueError(f"invalid executor name {executor!r}")
        return ResultStore(self.root / SEGMENTS_DIR / f"{executor}.jsonl")

    # -- lease protocol ----------------------------------------------------
    def _now(self) -> float:
        return self._time_fn()

    def _latest_generation(self, shard: int) -> int:
        """Highest lease generation on disk for ``shard`` (0 = unclaimed)."""
        prefix = f"{shard:04d}.lease.g"
        latest = 0
        shards_dir = self.root / SHARDS_DIR
        try:
            names = os.listdir(shards_dir)
        except FileNotFoundError:
            raise QueueError(f"no queue shards directory at {shards_dir}")
        for name in names:
            if name.startswith(prefix):
                try:
                    latest = max(latest, int(name[len(prefix):]))
                except ValueError:
                    continue
        return latest

    def _read_lease(self, shard: int, generation: int) -> Optional[_Lease]:
        path = self._lease_path(shard, generation)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            # Torn mid-rename observation; treat as unreadable-but-live so
            # nobody quarantines on a transient.
            return _Lease(shard, generation, executor="?", cursor=0,
                          attempt=1, attempt_cursor=0)
        return _Lease(shard, generation, executor=data["executor"],
                      cursor=data["cursor"], attempt=data["attempt"],
                      attempt_cursor=data["attempt_cursor"])

    def _lease_expired(self, shard: int, generation: int) -> bool:
        path = self._lease_path(shard, generation)
        try:
            mtime = path.stat().st_mtime
        except FileNotFoundError:
            return False
        return self._now() - mtime > self.manifest["lease_ttl_s"]

    def _create_lease(self, shard: int, generation: int,
                      lease: _Lease) -> bool:
        """Atomically create a lease file; ``False`` if someone else won."""
        path = self._lease_path(shard, generation)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError as exc:
            if exc.errno == errno.EEXIST:
                return False
            raise
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(lease.to_dict(), handle, sort_keys=True)
        self._touch(path)
        return True

    def _touch(self, path: Path) -> None:
        """Heartbeat: stamp the lease mtime from the queue's clock."""
        now = self._now()
        os.utime(path, (now, now))

    def _write_lease(self, lease: _Lease) -> None:
        path = self._lease_path(lease.shard, lease.generation)
        _atomic_write_json(path, lease.to_dict())
        self._touch(path)

    def _owns(self, lease: _Lease) -> bool:
        """Still the newest generation?  A newer one means we were robbed."""
        return self._latest_generation(lease.shard) == lease.generation

    def claim_next(self, executor: str) -> Optional[_Lease]:
        """Claim or steal one shard; ``None`` when nothing is claimable.

        Scans shards in order: an unclaimed shard is claimed at
        generation 1; a shard whose newest lease has missed its heartbeat
        TTL is stolen at the next generation (inheriting the dead lease's
        cursor, and quarantining the spec it died on once the death count
        at that cursor exceeds ``max_attempts``).
        """
        max_attempts = self.manifest["max_attempts"]
        for shard in range(self.shard_count):
            if self._done_path(shard).exists():
                continue
            generation = self._latest_generation(shard)
            if generation == 0:
                lease = _Lease(shard, 1, executor, cursor=0, attempt=1,
                               attempt_cursor=0)
                if self._create_lease(shard, 1, lease):
                    return lease
                continue  # lost the race; move on
            if not self._lease_expired(shard, generation):
                continue
            dead = self._read_lease(shard, generation)
            if dead is None:  # vanished under us; re-scan later
                continue
            attempt = (dead.attempt + 1 if dead.cursor == dead.attempt_cursor
                       else 2)
            lease = _Lease(shard, generation + 1, executor,
                           cursor=dead.cursor, attempt=attempt,
                           attempt_cursor=dead.cursor)
            if not self._create_lease(shard, generation + 1, lease):
                continue  # another stealer won
            if lease.attempt > max_attempts:
                self._quarantine(lease)
                if lease.cursor >= len(self.shard_specs(shard)):
                    self._finish(lease)
                    continue
            return lease
        return None

    def _quarantine(self, lease: _Lease) -> None:
        """Write a quarantined record for the spec killing this shard."""
        spec = self.shard_specs(lease.shard)[lease.cursor]
        record = failure_record(
            spec, STATUS_QUARANTINED,
            QueueError(f"quarantined after {lease.attempt - 1} lease "
                       f"generations died at this run"),
            attempts=lease.attempt - 1, wall_clock_s=0.0, trace="")
        self.segment_store(lease.executor).append(record)
        lease.cursor += 1
        lease.attempt = 1
        lease.attempt_cursor = lease.cursor
        self._write_lease(lease)

    def _finish(self, lease: _Lease) -> None:
        """Mark the shard done (idempotent across racing finishers)."""
        try:
            fd = os.open(self._done_path(lease.shard),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError as exc:
            if exc.errno != errno.EEXIST:
                raise
            return
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump({"executor": lease.executor,
                       "generation": lease.generation}, handle)

    # -- executor loop -----------------------------------------------------
    def work(
        self,
        executor: str,
        execute: Optional[Callable[[RunSpec, WorkerPolicy], Dict]] = None,
        max_shards: Optional[int] = None,
        block: bool = False,
        poll_s: float = 0.5,
    ) -> WorkReport:
        """Drain shards until the queue is empty (or ``max_shards`` hit).

        ``execute`` defaults to
        :func:`~repro.campaign.runner.execute_spec_guarded` (full retry /
        timeout policy per run); tests inject deterministic substitutes.
        An exception out of ``execute`` propagates — from the queue's
        point of view that executor crashed, and its lease will expire and
        be stolen.  With ``block=True`` the loop polls for stealable
        leases until the queue drains; otherwise it returns as soon as
        nothing is claimable.
        """
        policy = WorkerPolicy.from_dict(self.manifest["policy"])
        run = execute or execute_spec_guarded
        report = WorkReport(executor=executor)
        store = self.segment_store(executor)
        # Per-executor live status, next to the manifest: every executor
        # publishes its own ``progress_<name>.json`` (atomic tmp+rename),
        # which ``repro campaign status <queue-dir>`` folds together with
        # the lease-level shard counts.
        status = ProgressWriter(
            str(self.root / f"progress_{executor}.json"),
            campaign=self.manifest["campaign"],
            total=len(self.specs),
            workers=1,
            executor=executor,
            time_fn=self._time_fn,
        )
        while max_shards is None or report.shards < max_shards:
            lease = self.claim_next(executor)
            if lease is None:
                if not block or self.drained():
                    break
                status.heartbeat(leases_in_flight=0)
                time.sleep(poll_s)
                continue
            report.shards += 1
            specs = self.shard_specs(lease.shard)
            preempted = False
            status.heartbeat(leases_in_flight=len(specs) - lease.cursor)
            while lease.cursor < len(specs):
                if not self._owns(lease):
                    # A stealer decided we were dead.  Stop touching the
                    # shard — our partial appends are deduped at merge.
                    report.preempted += 1
                    preempted = True
                    break
                record = run(specs[lease.cursor], policy)
                store.append(record)
                report.executed += 1
                lease.cursor += 1
                lease.attempt = 1
                lease.attempt_cursor = lease.cursor
                self._write_lease(lease)
                status.leases_in_flight = len(specs) - lease.cursor
                status.record_run(ok=record_is_ok(record))
            if not preempted:
                self._finish(lease)
        status.finish("done")
        return report

    # -- queue state -------------------------------------------------------
    def drained(self) -> bool:
        return all(self._done_path(shard).exists()
                   for shard in range(self.shard_count))

    def status(self) -> Dict:
        """Queue-level progress snapshot (for ``serve --wait`` / humans)."""
        done = leased = expired = 0
        for shard in range(self.shard_count):
            if self._done_path(shard).exists():
                done += 1
            else:
                generation = self._latest_generation(shard)
                if generation:
                    leased += 1
                    if self._lease_expired(shard, generation):
                        expired += 1
        executors = sorted(path.stem for path in
                           (self.root / SEGMENTS_DIR).glob("*.jsonl"))
        return {
            "campaign": self.manifest["campaign"],
            "runs": len(self.specs),
            "shards": self.shard_count,
            "done": done,
            "leased": leased,
            "expired": expired,
            "open": self.shard_count - done - leased,
            "executors": executors,
        }

    # -- merge -------------------------------------------------------------
    def iter_merged_records(self) -> Iterator[Dict]:
        """Best record per run, streamed in run-table order.

        A run may appear in several segments (a stolen lease re-executes
        its contested spec).  Precedence: ``ok`` beats ``quarantined``
        beats other failures; ties go to the lexicographically later
        executor so the choice is deterministic across hosts.
        """
        best: Dict[str, Dict] = {}
        rank = {STATUS_QUARANTINED: 1}
        segments = sorted((self.root / SEGMENTS_DIR).glob("*.jsonl"))
        for segment in segments:
            for record in ResultStore(segment).iter_records():
                fingerprint = record.get("fingerprint")
                if fingerprint is None:
                    continue
                score = (2 if record_is_ok(record)
                         else rank.get(record.get("status"), 0))
                held = best.get(fingerprint)
                if held is None or score >= held[0]:
                    best[fingerprint] = (score, record)
        for spec in self.specs:
            held = best.get(spec.fingerprint())
            if held is not None:
                yield held[1]

    def merge(self, store: ResultStore) -> int:
        """Fold every segment into ``store``; returns records written.

        Appends only runs the target store has not already completed, so
        merging into a partially-populated canonical store (or merging
        twice) is safe.
        """
        completed = store.completed_fingerprints()
        written = 0
        for record in self.iter_merged_records():
            if record.get("fingerprint") in completed:
                continue
            store.append(record)
            written += 1
        return written

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LeaseQueue(root={str(self.root)!r})"
