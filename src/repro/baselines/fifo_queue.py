"""Classic FIFO queue baseline.

Implements the same scheduler interface as
:class:`~repro.core.scheduler.ProgrammableScheduler` (``enqueue``,
``dequeue``, ``__len__``) so it can be dropped into an
:class:`~repro.sim.link.OutputPort` for side-by-side comparisons with the
PIFO-programmed FIFO transaction.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..core.packet import Packet


class FIFOQueue:
    """A tail-drop FIFO queue."""

    def __init__(self, capacity_packets: Optional[int] = None) -> None:
        if capacity_packets is not None and capacity_packets <= 0:
            raise ValueError("capacity_packets must be positive or None")
        self.capacity_packets = capacity_packets
        self._queue: Deque[Packet] = deque()
        self.drops = 0

    def enqueue(self, packet: Packet, now: float = 0.0) -> bool:
        if (
            self.capacity_packets is not None
            and len(self._queue) >= self.capacity_packets
        ):
            self.drops += 1
            return False
        packet.enqueue_time = now
        self._queue.append(packet)
        return True

    def dequeue(self, now: float = 0.0) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        packet.dequeue_time = now
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue
