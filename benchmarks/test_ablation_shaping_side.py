"""Ablation (Section 3.5, "Output rate limiting") — input-side vs output-side
rate limiting.

The PIFO shaping transaction limits on the input side: once elements have
been released into the shared scheduling PIFO they can drain at line rate.
The paper describes the resulting transient: if a higher-priority class
starves the shaped class for a while, the released-but-unsent backlog later
leaves in a line-rate burst.  An output-side token bucket does not have this
transient.  This benchmark reproduces exactly that contrast.
"""

from __future__ import annotations

from conftest import report

from repro.algorithms import (
    ClassPriorityTransaction,
    FIFOTransaction,
    TokenBucketShapingTransaction,
)
from repro.baselines import OutputTokenBucketShaper
from repro.core import FlowIn, ProgrammableScheduler, ScheduleTree, TreeNode
from repro.metrics import max_windowed_rate_bps
from repro.sim import OutputPort, PacketSource, Simulator
from repro.traffic import FlowSpec, cbr_arrivals, merge_arrivals

LINK_RATE = 100e6
SHAPED_RATE = 10e6
DURATION = 0.4
STARVE_UNTIL = 0.2


def build_input_shaped_tree():
    """Strict priority between 'high' and rate-limited 'low' using the PIFO
    shaping transaction (input-side limiting)."""
    root = TreeNode(
        name="Root",
        scheduling=ClassPriorityTransaction({"high": 0, "low": 1}),
    )
    root.add_child(
        TreeNode(name="high", predicate=FlowIn(["high"]), scheduling=FIFOTransaction())
    )
    root.add_child(
        TreeNode(
            name="low",
            predicate=FlowIn(["low"]),
            scheduling=FIFOTransaction(),
            shaping=TokenBucketShapingTransaction(rate_bps=SHAPED_RATE,
                                                  burst_bytes=3000),
        )
    )
    return ScheduleTree(root)


def workload(duration):
    low = cbr_arrivals(FlowSpec(name="low", rate_bps=30e6, packet_size=1500), duration)
    # The high-priority class saturates the link until STARVE_UNTIL.
    high = cbr_arrivals(
        FlowSpec(name="high", rate_bps=LINK_RATE, packet_size=1500,
                 end_time=STARVE_UNTIL),
        duration,
    )
    return merge_arrivals(low, high)


def run_input_side():
    sim = Simulator()
    port = OutputPort(sim, ProgrammableScheduler(build_input_shaped_tree()),
                      rate_bps=LINK_RATE)
    PacketSource(sim, port, workload(DURATION))
    sim.run(until=DURATION)
    return port


def run_output_side():
    """Same workload where the low class goes through a classic output-side
    token-bucket shaper on its own queue (high bypasses on a separate port
    feeding the same measurement, approximating an egress shaper)."""
    sim = Simulator()
    shaper_port = OutputPort(
        sim, OutputTokenBucketShaper(rate_bps=SHAPED_RATE, burst_bytes=3000),
        rate_bps=LINK_RATE,
    )
    low = cbr_arrivals(FlowSpec(name="low", rate_bps=30e6, packet_size=1500), DURATION)
    PacketSource(sim, shaper_port, low)
    sim.run(until=DURATION)
    return shaper_port


def test_ablation_input_side_bursts_after_starvation(benchmark):
    def run_both():
        return run_input_side(), run_output_side()

    input_port, output_port = benchmark(run_both)
    window = 0.01
    input_peak = max_windowed_rate_bps(
        [p for p in input_port.sink.packets if p.flow == "low"],
        window_s=window, skip_first_windows=1,
    )
    output_peak = max_windowed_rate_bps(
        output_port.sink.packets, window_s=window, skip_first_windows=1
    )
    input_mean = input_port.sink.throughput_bps(flow="low", start=0.02, end=DURATION)
    report(
        "Ablation: input-side (PIFO shaping txn) vs output-side rate limiting",
        [
            {"design": "input-side shaping", "peak_10ms_Mbps": input_peak / 1e6,
             "long_run_Mbps": input_mean / 1e6},
            {"design": "output-side token bucket", "peak_10ms_Mbps": output_peak / 1e6,
             "long_run_Mbps": output_port.sink.throughput_bps(start=0.02, end=DURATION) / 1e6},
        ],
    )
    # Long-term both respect the 10 Mbit/s limit...
    assert input_mean <= SHAPED_RATE * 1.3
    # ...but after the starvation period the input-side design briefly sends
    # the released backlog well above the rate limit, while the output-side
    # shaper never exceeds it by more than one burst.
    assert input_peak > SHAPED_RATE * 2
    assert output_peak <= SHAPED_RATE * 1.5
