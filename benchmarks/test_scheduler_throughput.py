"""Microbenchmarks — raw scheduler throughput of the Python models.

Not a paper table; this benchmark sizes the reproduction itself: packets per
second sustained by the reference engine, the mesh-backed hardware model and
the classic baselines, for the workloads the other benchmarks use.  Useful
when scaling simulation durations and when comparing against the paper's
1 GHz (10^9 packets/s) hardware target to keep expectations calibrated.
"""

from __future__ import annotations

import random

from conftest import report

from repro.algorithms import FIFOTransaction, build_fig3_tree, build_wfq_tree
from repro.baselines import DeficitRoundRobin, FIFOQueue
from repro.core import Packet, ProgrammableScheduler, single_node_tree
from repro.hardware import HardwareScheduler

PACKET_COUNT = 2000


def make_packets(seed=0):
    rng = random.Random(seed)
    return [
        Packet(flow=rng.choice("ABCD"), length=rng.choice([500, 1000, 1500]))
        for _ in range(PACKET_COUNT)
    ]


def drive(scheduler, packets):
    for packet in packets:
        scheduler.enqueue(packet, now=0.0)
    count = 0
    while scheduler.dequeue(now=0.0) is not None:
        count += 1
    return count


def test_throughput_reference_wfq(benchmark):
    packets = make_packets()
    count = benchmark(lambda: drive(
        ProgrammableScheduler(build_wfq_tree({f: 1.0 for f in "ABCD"})),
        [p.copy() for p in packets]))
    assert count == PACKET_COUNT


def test_throughput_reference_hpfq(benchmark):
    packets = make_packets()
    count = benchmark(lambda: drive(
        ProgrammableScheduler(build_fig3_tree()), [p.copy() for p in packets]))
    assert count == PACKET_COUNT


def test_throughput_hardware_model_hpfq(benchmark):
    packets = make_packets()
    count = benchmark(lambda: drive(
        HardwareScheduler(build_fig3_tree()), [p.copy() for p in packets]))
    assert count == PACKET_COUNT


def test_throughput_reference_fifo(benchmark):
    packets = make_packets()
    count = benchmark(lambda: drive(
        ProgrammableScheduler(single_node_tree(FIFOTransaction())),
        [p.copy() for p in packets]))
    assert count == PACKET_COUNT


def test_throughput_baseline_fifo_queue(benchmark):
    packets = make_packets()
    count = benchmark(lambda: drive(FIFOQueue(), [p.copy() for p in packets]))
    assert count == PACKET_COUNT


def test_throughput_baseline_drr(benchmark):
    packets = make_packets()
    count = benchmark(lambda: drive(
        DeficitRoundRobin(weights={f: 1.0 for f in "ABCD"}),
        [p.copy() for p in packets]))
    assert count == PACKET_COUNT


def test_throughput_summary_table(benchmark):
    """One consolidated run printing packets/second for every model."""
    packets = make_packets()

    def run_all():
        import time

        results = {}
        candidates = {
            "reference FIFO": lambda: ProgrammableScheduler(
                single_node_tree(FIFOTransaction())),
            "reference HPFQ": lambda: ProgrammableScheduler(build_fig3_tree()),
            "hardware-model HPFQ": lambda: HardwareScheduler(build_fig3_tree()),
            "baseline FIFO queue": lambda: FIFOQueue(),
            "baseline DRR": lambda: DeficitRoundRobin(),
        }
        for name, factory in candidates.items():
            clones = [p.copy() for p in packets]
            start = time.perf_counter()
            drive(factory(), clones)
            elapsed = time.perf_counter() - start
            results[name] = PACKET_COUNT / elapsed
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "Python-model throughput (packets/second; hardware target is 10^9)",
        [{"model": name, "packets_per_second": rate} for name, rate in results.items()],
    )
    assert all(rate > 1000 for rate in results.values())
