"""Figure 4 / Section 2.3 — Hierarchies with Shaping.

Regenerates: throughput of the Right class as offered load increases.  Paper
claim: the token-bucket shaping transaction caps Right at 10 Mbit/s
regardless of offered load, while Left remains work conserving.
"""

from __future__ import annotations

from conftest import report, run_overload_experiment

from repro.algorithms import FIG4_RIGHT_RATE_BPS, build_fig4_tree
from repro.metrics import max_windowed_rate_bps

LINK_RATE = 100e6
DURATION = 0.1
OFFERED_LOADS = (5e6, 20e6, 50e6)


def right_class_rate(offered_per_flow_bps):
    port = run_overload_experiment(
        build_fig4_tree(),
        {"A": 30e6, "B": 30e6, "C": offered_per_flow_bps, "D": offered_per_flow_bps},
        LINK_RATE,
        DURATION,
    )
    sustained = port.sink.throughput_bps(start=0.02, end=DURATION)
    right = sum(
        port.sink.throughput_bps(flow=f, start=0.02, end=DURATION) for f in "CD"
    )
    left = sum(
        port.sink.throughput_bps(flow=f, start=0.02, end=DURATION) for f in "AB"
    )
    peak_right = max_windowed_rate_bps(
        port.sink.packets, window_s=0.02, flows=["C", "D"], skip_first_windows=1
    )
    return {"total": sustained, "right": right, "left": left, "right_peak": peak_right}


def test_fig4_right_class_capped_regardless_of_load(benchmark):
    def sweep():
        return {load: right_class_rate(load) for load in OFFERED_LOADS}

    results = benchmark(sweep)
    report(
        "Figure 4: Right-class throughput vs offered load (cap = 10 Mbit/s)",
        [
            {
                "offered_per_flow_Mbps": load / 1e6,
                "right_Mbps": results[load]["right"] / 1e6,
                "right_peak_Mbps": results[load]["right_peak"] / 1e6,
                "left_Mbps": results[load]["left"] / 1e6,
            }
            for load in OFFERED_LOADS
        ],
    )
    for load in OFFERED_LOADS:
        measured = results[load]
        if 2 * load <= FIG4_RIGHT_RATE_BPS:
            # Below the cap the Right class gets what it asks for.
            assert measured["right"] >= 2 * load * 0.9
        else:
            # Above the cap it is pinned at ~10 Mbit/s.
            assert measured["right"] <= FIG4_RIGHT_RATE_BPS * 1.15
            assert measured["right"] >= FIG4_RIGHT_RATE_BPS * 0.7
        # Left class is never starved by the shaper.
        assert measured["left"] >= 55e6


def test_fig4_left_class_absorbs_unused_capacity(benchmark):
    result = benchmark(lambda: right_class_rate(50e6))
    report(
        "Figure 4: work conservation for the unshaped class",
        [{"left_Mbps": result["left"] / 1e6, "right_Mbps": result["right"] / 1e6}],
    )
    # Left offered 60 Mbit/s and Right is capped, so Left should get ~60.
    assert result["left"] >= 55e6
