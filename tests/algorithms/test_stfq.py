"""Tests for the STFQ / WFQ scheduling transaction (Figure 1)."""

from __future__ import annotations

import pytest

from repro.algorithms import STFQTransaction, WFQTransaction, build_wfq_tree
from repro.core import Packet, ProgrammableScheduler, TransactionContext


def ctx(flow, length, now=0.0):
    return TransactionContext(now=now, element_flow=flow, element_length=length)


class TestSTFQTransaction:
    def test_first_packet_gets_virtual_time(self):
        txn = STFQTransaction()
        assert txn(Packet(flow="A", length=1000), ctx("A", 1000)) == 0.0

    def test_back_to_back_packets_spaced_by_length_over_weight(self):
        txn = STFQTransaction(weights={"A": 2.0})
        first = txn(Packet(flow="A", length=1000), ctx("A", 1000))
        second = txn(Packet(flow="A", length=1000), ctx("A", 1000))
        assert first == 0.0
        assert second == pytest.approx(500.0)  # 1000 / weight 2

    def test_higher_weight_gets_smaller_start_increments(self):
        heavy = STFQTransaction(weights={"H": 10.0})
        light = STFQTransaction(weights={"L": 1.0})
        for _ in range(3):
            heavy_rank = heavy(Packet(flow="H", length=1000), ctx("H", 1000))
            light_rank = light(Packet(flow="L", length=1000), ctx("L", 1000))
        assert heavy_rank < light_rank

    def test_start_time_uses_max_of_virtual_time_and_last_finish(self):
        txn = STFQTransaction()
        txn(Packet(flow="A", length=1000), ctx("A", 1000))  # finish = 1000
        # Advance virtual time beyond A's finish tag via the dequeue hook.
        txn.on_dequeue(None, TransactionContext(extras={"rank": 5000.0}))
        rank = txn(Packet(flow="A", length=1000), ctx("A", 1000))
        assert rank == pytest.approx(5000.0)

    def test_new_flow_starts_at_current_virtual_time(self):
        txn = STFQTransaction()
        txn(Packet(flow="A", length=1000), ctx("A", 1000))
        txn.on_dequeue(None, TransactionContext(extras={"rank": 800.0}))
        rank = txn(Packet(flow="B", length=1000), ctx("B", 1000))
        assert rank == pytest.approx(800.0)

    def test_virtual_time_never_moves_backwards(self):
        txn = STFQTransaction()
        txn.on_dequeue(None, TransactionContext(extras={"rank": 100.0}))
        txn.on_dequeue(None, TransactionContext(extras={"rank": 50.0}))
        assert txn.state["virtual_time"] == 100.0

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            STFQTransaction(weights={"A": 0.0})
        with pytest.raises(ValueError):
            STFQTransaction(default_weight=-1.0)
        txn = STFQTransaction()
        with pytest.raises(ValueError):
            txn.set_weight("A", 0.0)

    def test_set_weight_updates_future_ranks(self):
        txn = STFQTransaction()
        txn.set_weight("A", 4.0)
        txn(Packet(flow="A", length=1000), ctx("A", 1000))
        assert txn.state["last_finish"]["A"] == pytest.approx(250.0)

    def test_wfq_alias(self):
        assert WFQTransaction is STFQTransaction


class TestWFQBehaviour:
    def test_equal_weights_alternate(self):
        scheduler = ProgrammableScheduler(build_wfq_tree({"A": 1.0, "B": 1.0}))
        for _ in range(4):
            scheduler.enqueue(Packet(flow="A", length=1000))
            scheduler.enqueue(Packet(flow="B", length=1000))
        order = [p.flow for p in scheduler.drain()]
        # Perfect alternation after the first pair.
        assert order.count("A") == order.count("B") == 4
        for i in range(0, 8, 2):
            assert {order[i], order[i + 1]} == {"A", "B"}

    def test_weighted_shares_in_drain_order(self):
        scheduler = ProgrammableScheduler(build_wfq_tree({"A": 1.0, "B": 3.0}))
        for _ in range(12):
            scheduler.enqueue(Packet(flow="A", length=1000))
            scheduler.enqueue(Packet(flow="B", length=1000))
        order = [p.flow for p in scheduler.drain()]
        first_12 = order[:12]
        assert first_12.count("B") == 9
        assert first_12.count("A") == 3

    def test_unequal_packet_sizes_share_bytes_not_packets(self):
        scheduler = ProgrammableScheduler(build_wfq_tree({"A": 1.0, "B": 1.0}))
        # A sends 500-byte packets, B sends 1500-byte packets.
        for _ in range(30):
            scheduler.enqueue(Packet(flow="A", length=500))
        for _ in range(10):
            scheduler.enqueue(Packet(flow="B", length=1500))
        order = scheduler.drain()
        # In any prefix covering whole "rounds", bytes should be balanced.
        bytes_a = sum(p.length for p in order[:20] if p.flow == "A")
        bytes_b = sum(p.length for p in order[:20] if p.flow == "B")
        assert abs(bytes_a - bytes_b) <= 1500

    def test_idle_flow_does_not_accumulate_credit(self):
        scheduler = ProgrammableScheduler(build_wfq_tree({"A": 1.0, "B": 1.0}))
        # A is active alone for a while.
        for _ in range(10):
            scheduler.enqueue(Packet(flow="A", length=1000))
        drained = scheduler.drain()
        assert len(drained) == 10
        # Now B becomes active; it must not starve A by claiming the service
        # it "missed" while idle (virtual time protects against this).
        for _ in range(6):
            scheduler.enqueue(Packet(flow="A", length=1000))
            scheduler.enqueue(Packet(flow="B", length=1000))
        order = [p.flow for p in scheduler.drain()]
        assert order[:2].count("B") <= 1
        assert order.count("A") == 6
