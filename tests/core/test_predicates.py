"""Tests for packet predicates."""

from __future__ import annotations

from repro.core import (
    And,
    ClassEquals,
    ClassIn,
    FieldEquals,
    FlowEquals,
    FlowIn,
    MatchAll,
    MatchNone,
    Not,
    Or,
    Packet,
    PriorityEquals,
)


def packet(**kwargs):
    defaults = dict(flow="A", length=100)
    defaults.update(kwargs)
    return Packet(**defaults)


class TestSimplePredicates:
    def test_match_all(self):
        assert MatchAll()(packet())

    def test_match_none(self):
        assert not MatchNone()(packet())

    def test_class_equals(self):
        assert ClassEquals("Left")(packet(packet_class="Left"))
        assert not ClassEquals("Left")(packet(packet_class="Right"))
        assert not ClassEquals("Left")(packet())

    def test_class_in(self):
        predicate = ClassIn(["Left", "Right"])
        assert predicate(packet(packet_class="Right"))
        assert not predicate(packet(packet_class="Middle"))

    def test_flow_equals(self):
        assert FlowEquals("A")(packet(flow="A"))
        assert not FlowEquals("A")(packet(flow="B"))

    def test_flow_in(self):
        predicate = FlowIn(["A", "B"])
        assert predicate(packet(flow="B"))
        assert not predicate(packet(flow="C"))

    def test_priority_equals(self):
        assert PriorityEquals(2)(packet(priority=2))
        assert not PriorityEquals(2)(packet(priority=1))

    def test_field_equals(self):
        predicate = FieldEquals("tenant", "t1")
        assert predicate(packet(fields={"tenant": "t1"}))
        assert not predicate(packet(fields={"tenant": "t2"}))
        assert not predicate(packet())


class TestCombinators:
    def test_and(self):
        predicate = And(FlowEquals("A"), PriorityEquals(0))
        assert predicate(packet(flow="A", priority=0))
        assert not predicate(packet(flow="A", priority=1))

    def test_or(self):
        predicate = Or(FlowEquals("A"), FlowEquals("B"))
        assert predicate(packet(flow="B"))
        assert not predicate(packet(flow="C"))

    def test_not(self):
        predicate = Not(FlowEquals("A"))
        assert predicate(packet(flow="B"))
        assert not predicate(packet(flow="A"))

    def test_nested_composition(self):
        predicate = And(Not(ClassEquals("control")), Or(FlowIn(["A"]), PriorityEquals(7)))
        assert predicate(packet(flow="A"))
        assert predicate(packet(flow="Z", priority=7))
        assert not predicate(packet(flow="Z"))
        assert not predicate(packet(flow="A", packet_class="control"))

    def test_reprs_are_informative(self):
        assert "Left" in repr(ClassEquals("Left"))
        assert "And" in repr(And(MatchAll()))
