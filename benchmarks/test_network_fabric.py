"""Fabric throughput microbenchmark (reproduction-sizing, not a paper table).

Measures end-to-end packets/second sustained by the :mod:`repro.net` fabric
on the two canonical topologies — a 3-hop linear chain and a 4-leaf /
2-spine Clos with ECMP — parametrized over every swappable PIFO backend, so
regressions in the multi-hop forwarding path (per-hop delivery hooks, hop
stamping, routing lookups) show up directly.  The workloads are the
:data:`repro.perf.WORKLOADS` the ``repro perf`` CLI drives — one
definition, so the profiled simulation and the gated numbers can never
drift apart.  Fabrics run in the sweep configuration (``telemetry=False``,
streaming sinks, packet recycling) — the same settings the campaign engine
uses, and the configuration the hot path is tuned for; the lockstep suite
(tests/net/test_telemetry_lockstep.py) proves results are identical with
telemetry on.  Writes the measured rates to ``BENCH_network_fabric.json``
at the repo root (the artifact CI uploads, and the committed baseline the
perf-regression CI job gates on).  Set ``BENCH_QUICK=1`` to shrink the
workloads for smoke runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from conftest import report

from repro.perf import PACKET_SIZE, run_workload

BENCH_QUICK = bool(os.environ.get("BENCH_QUICK"))
#: Packets pushed end to end through each topology, per backend.
CHAIN_PACKETS = 2_000 if BENCH_QUICK else 10_000
CLOS_PACKETS = 2_000 if BENCH_QUICK else 10_000
#: Best-of-N rounds per configuration: the artifact gates CI, so one
#: scheduler hiccup must not commit as a regression.
ROUNDS = int(os.environ.get("BENCH_ROUNDS", "1" if BENCH_QUICK else "3"))
BACKENDS = ["sorted", "calendar", "bucketed"]
BENCH_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_network_fabric.json"


def _best_run(topology, count, **kwargs):
    """Best-of-``ROUNDS`` measurement (max pkt/s; results are identical)."""
    best = None
    for _ in range(ROUNDS):
        result = run_workload(topology, packets=count, **kwargs)
        if best is None or result.packets_per_second > best.packets_per_second:
            best = result
    return best


@pytest.mark.parametrize("backend", BACKENDS)
def test_fabric_chain_throughput(benchmark, backend):
    """Every PIFO backend pushes the chain workload through unmodified."""
    result = benchmark.pedantic(
        lambda: run_workload("chain3", packets=CHAIN_PACKETS,
                             pifo_backend=backend),
        rounds=1, iterations=1,
    )
    assert result.delivered >= CHAIN_PACKETS * 0.99


def test_fabric_throughput_summary():
    """Consolidated packets/second table; writes the CI artifact.

    ``backends`` rows run the default datapath — fused whole-tree kernels
    (:mod:`repro.lang.treekernel`) plus fused fabric delivery — and are
    what the perf-regression gate holds the build to.  ``interpreted``
    rows re-measure the same workloads with both fusions disabled (the
    pre-kernel reference path, also gated so the fallback never rots),
    and ``speedup_fused_vs_interpreted`` records the ratio the tree-kernel
    compiler buys end to end.  The lockstep suite
    (tests/net/test_treekernel_lockstep.py) proves the two configurations
    deliver identical packets in identical order.
    """
    rows = []
    artifact = {"packet_size_bytes": PACKET_SIZE, "telemetry": False,
                "tree_kernel": True, "topologies": {}}
    for topology, count in (("chain3", CHAIN_PACKETS),
                            ("leaf_spine4x2", CLOS_PACKETS)):
        entry = {"packets": count, "backends": {}, "interpreted": {}}
        artifact["topologies"][topology] = entry
        for backend in BACKENDS:
            result = _best_run(topology, count, pifo_backend=backend)
            assert result.delivered >= count * 0.99
            assert result.kernel_installs > 0
            assert result.kernel_fallbacks == 0
            rate = result.packets_per_second
            rows.append(
                {
                    "topology": topology,
                    "backend": backend,
                    "datapath": "fused",
                    "delivered": result.delivered,
                    "packets_per_second": rate,
                }
            )
            entry["backends"][backend] = rate
        # Interpreted reference on the default backend only: one row per
        # topology bounds the benchmark's runtime while still gating the
        # fallback path end to end.
        reference = _best_run(topology, count,
                              pifo_backend="sorted", tree_kernel=False)
        assert reference.delivered >= count * 0.99
        assert reference.kernel_installs == 0
        entry["interpreted"]["sorted"] = reference.packets_per_second
        entry["speedup_fused_vs_interpreted"] = (
            entry["backends"]["sorted"] / reference.packets_per_second
        )
        rows.append(
            {
                "topology": topology,
                "backend": "sorted",
                "datapath": "interpreted",
                "delivered": reference.delivered,
                "packets_per_second": reference.packets_per_second,
            }
        )
    report("Fabric throughput (end-to-end packets/second)", rows)
    BENCH_ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    # A Python fabric should comfortably sustain thousands of packets/s on
    # every backend; anything lower signals a forwarding-path regression.
    assert all(row["packets_per_second"] > 1000 for row in rows)
