"""Network-fabric tour: topologies, routing, and declarative scenarios.

Three stops:

1. run the built-in ``fig6_chain`` scenario (LSTF vs per-hop FIFO on a
   3-switch chain) and print the urgent-packet verdict;
2. build a custom dumbbell scenario from scratch — topology builder,
   traffic matrix, one scheduler variant per contender — and run it;
3. peek under the hood: route a single packet across a leaf-spine fabric
   and print its per-hop delay decomposition.

Run with::

    python examples/fabric_scenarios.py
"""

from __future__ import annotations

from repro.algorithms import FIFOTransaction, SRPTTransaction
from repro.core import Packet, ProgrammableScheduler, single_node_tree
from repro.net import (
    Demand,
    Fabric,
    Scenario,
    dumbbell,
    get_scenario,
    leaf_spine,
)
from repro.sim import Simulator


def transaction_factory(transaction_class):
    def factory(switch, port):
        return ProgrammableScheduler(single_node_tree(transaction_class()))

    return factory


def stop1_builtin_scenario() -> None:
    print("== 1. Built-in scenario: LSTF vs per-hop FIFO on a chain ==")
    scenario = get_scenario("fig6_chain")
    for label, result in scenario.run(quick=True).items():
        urgent = result.flow_stats["urgent"]
        verdict = "meets" if urgent["max_delay"] <= 0.02 else "MISSES"
        print(
            f"  {label:<5} max urgent delay "
            f"{urgent['max_delay'] * 1e3:6.2f} ms -> {verdict} the 20 ms budget"
        )


def stop2_custom_scenario() -> None:
    print("\n== 2. Custom dumbbell: SRPT vs FIFO over one bottleneck ==")
    scenario = Scenario(
        name="dumbbell_fct",
        title="SRPT vs FIFO on a dumbbell bottleneck",
        topology=lambda: dumbbell(hosts_per_side=2, access_rate_bps=1e9,
                                  bottleneck_rate_bps=0.5e9),
        demands=[
            Demand(src="l0", dst="r0", kind="flows", rate_bps=0.35e9, seed=1),
            Demand(src="l1", dst="r1", kind="flows", rate_bps=0.35e9, seed=2),
        ],
        variants={
            "SRPT": transaction_factory(SRPTTransaction),
            "FIFO": transaction_factory(FIFOTransaction),
        },
        duration=0.1,
        keep_packets=False,
    )
    for label, result in scenario.run().items():
        fct = result.fct
        print(
            f"  {label:<5} {fct.count} flows, mean FCT {fct.mean * 1e3:6.2f} ms,"
            f" p99 {fct.p99 * 1e3:7.2f} ms"
        )


def stop3_per_hop_decomposition() -> None:
    print("\n== 3. One packet across a leaf-spine fabric, hop by hop ==")
    sim = Simulator()
    net = leaf_spine(leaves=2, spines=2, hosts_per_leaf=1,
                     host_rate_bps=1e9, propagation_delay=2e-6)
    fabric = Fabric(sim, net, transaction_factory(FIFOTransaction))
    packet = Packet(flow="probe", length=1500, dst="h1_0")
    fabric.attach_source("h0_0", [(0.0, packet)])
    fabric.run(drain=True)
    for node, delay in packet.per_hop_delays().items():
        print(f"  {node:<8} {delay * 1e6:8.2f} us")
    print(f"  end-to-end (incl. wires): {packet.end_to_end_delay * 1e6:8.2f} us")


if __name__ == "__main__":
    stop1_builtin_scenario()
    stop2_custom_scenario()
    stop3_per_hop_decomposition()
