"""Packet-trace collector and chrome://tracing converter contracts.

* Attaching the collector is a pure observation: the traced run delivers
  the identical packets as an untraced run of the same scenario.
* Span timestamps are internally consistent (arrival <= enqueue <=
  dequeue <= tx, wait = dequeue - enqueue) and every delivered packet
  contributes one span per hop.
* JSONL and chrome-document serialisations round-trip losslessly,
  including through a torn (partially written) final line.
"""

from __future__ import annotations

import json

from repro.algorithms import FIFOTransaction
from repro.core import ProgrammableScheduler, single_node_tree
from repro.net import Demand, Scenario, get_scenario, linear_chain
from repro.obs.trace import (
    TraceCollector,
    read_spans,
    spans_from_chrome,
    spans_to_chrome,
    write_spans,
)


def fifo_factory(switch, port):
    return ProgrammableScheduler(single_node_tree(FIFOTransaction()))


def _tiny_scenario() -> Scenario:
    return Scenario(
        name="trace_tiny",
        title="trace tiny",
        topology=lambda: linear_chain(2, link_rate_bps=2e6),
        demands=[
            Demand(src="h_src", dst="h_dst", kind="cbr",
                   rate_bps=8e5, packet_size=500, flow="c"),
        ],
        variants={"FIFO": fifo_factory},
        duration=0.05,
    )


def _traced_run(scenario, variant=None):
    collector = TraceCollector()
    results = scenario.run(variant=variant, telemetry=True,
                           tree_kernel=False, trace_hook=collector.attach)
    return collector, results


class TestCollector:
    def test_tracing_does_not_perturb_the_run(self):
        scenario = _tiny_scenario()
        untraced = scenario.run(tree_kernel=False)["FIFO"]
        collector, traced = _traced_run(scenario)
        assert traced["FIFO"].conservation == untraced.conservation
        assert traced["FIFO"].flow_stats == untraced.flow_stats

    def test_one_span_per_hop(self):
        scenario = _tiny_scenario()
        collector, results = _traced_run(scenario)
        delivered = results["FIFO"].conservation["delivered"]
        assert delivered > 0
        # chain2: every delivered packet crosses the source NIC plus two
        # switches; nothing is dropped in this underloaded scenario.
        assert len(collector.spans) == delivered * 3
        assert {span["node"] for span in collector.spans} \
            == {"h_src", "s1", "s2"}

    def test_span_timestamps_are_consistent(self):
        collector, _ = _traced_run(_tiny_scenario())
        for span in collector.spans:
            assert span["arrival"] <= span["enqueue"] <= span["dequeue"]
            assert span["dequeue"] <= span["tx"]
            assert span["wait"] == span["dequeue"] - span["enqueue"]
            assert span["queue_depth"] >= 0

    def test_ranks_recorded_at_admission(self):
        # LSTF computes a real rank per packet; the probe must capture it.
        collector, _ = _traced_run(get_scenario("fig6_chain"),
                                   variant="LSTF")
        switch_spans = [s for s in collector.spans
                        if s["node"].startswith("s")]
        assert switch_spans
        assert any(span["rank"] is not None for span in switch_spans)


class TestSerialisation:
    def _spans(self):
        collector, _ = _traced_run(_tiny_scenario())
        return collector.spans

    def test_jsonl_round_trip(self, tmp_path):
        spans = self._spans()
        path = tmp_path / "spans.jsonl"
        count = write_spans(spans, str(path))
        assert count == len(spans)
        assert read_spans(str(path)) == spans

    def test_torn_final_line_is_tolerated(self, tmp_path):
        spans = self._spans()
        path = tmp_path / "spans.jsonl"
        write_spans(spans, str(path))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"packet_id": 99, "truncat')
        assert read_spans(str(path)) == spans

    def test_chrome_round_trip_is_lossless(self):
        spans = self._spans()
        doc = spans_to_chrome(spans)
        restored = spans_from_chrome(doc)
        canon = lambda rows: [dict(sorted(r.items())) for r in rows]
        assert canon(restored) == canon(spans)

    def test_chrome_document_shape(self):
        spans = self._spans()
        doc = spans_to_chrome(spans)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert json.dumps(doc)  # serialisable
        complete = [e for e in events if e.get("ph") == "X"]
        meta = [e for e in events if e.get("ph") == "M"]
        assert len(complete) == len(spans)
        assert {m["name"] for m in meta} \
            == {"process_name", "thread_name"}
        for event in complete:
            assert event["dur"] >= 0.0
