"""The reference programmable-scheduler engine.

:class:`ProgrammableScheduler` executes a :class:`~repro.core.tree.ScheduleTree`
with the exact semantics of Sections 2.1-2.3:

* **Enqueue** — the packet walks its matching path from leaf to root.  At
  each node the scheduling transaction computes a rank and one element is
  pushed into that node's scheduling PIFO (the packet at the leaf, a
  reference to the child node elsewhere).  The first node on the path with a
  shaping transaction pushes a release token into its shaping PIFO and
  *suspends* the walk; when the token's wall-clock time arrives the walk
  *resumes* at the parent (Figure 5).  Suspend/resume can repeat if several
  shaped nodes lie on the path.
* **Dequeue** — starting at the root's scheduling PIFO, pop an element; if
  it is a reference, recursively pop the referenced child until a packet is
  reached (Figure 2).  Transactions get an ``on_dequeue`` callback so that
  algorithms like STFQ can maintain their virtual time.

The engine is intentionally simple and single-threaded: it is the semantic
ground truth against which the cycle-level hardware model
(:mod:`repro.hardware`) is validated.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from ..exceptions import PIFOFullError, SchedulerError
from .backend import BackendSpec
from .packet import Packet
from .pifo import Rank
from .transaction import TransactionContext
from .tree import ScheduleTree, TreeNode, _packet_flow


@dataclass
class ShapingToken:
    """A suspended enqueue waiting in a node's shaping PIFO.

    Attributes
    ----------
    node:
        The shaped node; on release, a reference to this node is enqueued
        into its parent's scheduling PIFO.
    packet:
        The packet whose arrival triggered the walk.  Its metadata (length,
        flow) feeds the remaining transactions on the path.
    path:
        The full leaf-to-root path the packet matched.
    resume_index:
        Index into ``path`` of the node at which the walk resumes (the
        shaped node's parent).
    release_time:
        Wall-clock time at which the token becomes eligible.
    """

    node: TreeNode
    packet: Packet
    path: List[TreeNode]
    resume_index: int
    release_time: float


@dataclass
class SchedulerStats:
    """Counters maintained by the reference scheduler."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    shaping_releases: int = 0
    transactions_executed: int = 0
    per_flow_enqueued: dict = field(default_factory=dict)
    per_flow_dequeued: dict = field(default_factory=dict)


def _tree_kernel_default(flag: Optional[bool]) -> bool:
    """Resolve the fused-kernel switch against ``REPRO_TREE_KERNEL``."""
    if flag is not None:
        return flag
    value = os.environ.get("REPRO_TREE_KERNEL", "").strip().lower()
    return value not in ("0", "off", "false", "no")


class ProgrammableScheduler:
    """Reference implementation of a PIFO-programmed packet scheduler.

    Parameters
    ----------
    tree:
        The scheduling algorithm, expressed as a tree of scheduling and
        shaping transactions.
    drop_on_full:
        When a node's scheduling PIFO is at capacity, drop the packet
        (returning ``False`` from :meth:`enqueue`) instead of raising.
        Mirrors a switch dropping on buffer exhaustion.
    pifo_backend:
        Optional backend spec (see :mod:`repro.core.backend`) applied to
        every PIFO in the tree before the run starts.
    tree_kernel:
        Whether to fuse the whole tree into a generated per-shape kernel
        (:mod:`repro.lang.treekernel`) replacing :meth:`enqueue` /
        :meth:`dequeue` with specialised straight-line code.  Defaults to
        on (overridable per process via ``REPRO_TREE_KERNEL=0``); trees the
        kernel cannot fuse (shaping transactions) automatically stay on the
        interpreted path, with the reason in ``kernel_fallback_reason``.

    Shaping releases are driven by a single **global shaping calendar**: a
    heap of ``(release_time, seq, token)`` shared by the whole tree.  The
    per-node shaping PIFOs remain authoritative for introspection (and are
    what the hardware compiler places into mesh blocks), but release
    processing pops the calendar in O(log n) per token instead of scanning
    every node of the tree on every poll.
    """

    def __init__(
        self,
        tree: ScheduleTree,
        drop_on_full: bool = True,
        pifo_backend: BackendSpec = None,
        tree_kernel: Optional[bool] = None,
    ) -> None:
        self.tree = tree
        self.drop_on_full = drop_on_full
        if pifo_backend is not None:
            tree.use_backend(pifo_backend)
        self.pifo_backend: BackendSpec = tree.pifo_backend
        self.stats = SchedulerStats()
        self._buffered_packets = 0
        #: Global shaping calendar: (release_time, push order, token).
        self._shaping_calendar: List[Tuple[float, int, ShapingToken]] = []
        self._calendar_seq = 0
        # Reused transaction contexts: one per direction, mutated per call.
        # Transactions treat the context as read-only inputs consumed during
        # the call (the documented contract), so reuse is observationally
        # identical while removing two allocations per packet per node.
        self._enq_ctx = TransactionContext()
        self._deq_ctx = TransactionContext()
        #: The installed fused kernel (None when running interpreted).
        self.tree_kernel = None
        #: Why the fused kernel is not installed (None when it is).
        self.kernel_fallback_reason: Optional[str] = None
        # Fused kernels bind per-instance enqueue/dequeue, which would
        # shadow overrides in subclasses — only enable for this exact class.
        self._tree_kernel_enabled = (
            _tree_kernel_default(tree_kernel)
            and type(self) is ProgrammableScheduler
        )
        self._install_kernel()

    def use_backend(self, backend: BackendSpec) -> None:
        """Swap every PIFO in the tree onto ``backend`` (entries migrate)."""
        self.tree.use_backend(backend)
        self.pifo_backend = backend
        self._install_kernel()

    # ------------------------------------------------------------------ #
    # Fused tree kernel                                                   #
    # ------------------------------------------------------------------ #
    def _install_kernel(self) -> None:
        """(Re)build and bind the fused kernel, or fall back interpreted.

        Called from every sanctioned mutation point (construction,
        :meth:`reset`, :meth:`use_backend`) and from the kernel's own
        staleness guard when the tree was changed behind the scheduler's
        back (``tree.use_backend``, ``add_child``, direct transaction
        resets).
        """
        if not self._tree_kernel_enabled:
            self._uninstall_kernel()
            return
        from ..lang.treekernel import TreeKernelError, compile_tree_kernel

        try:
            kernel = compile_tree_kernel(self)
        except TreeKernelError as exc:
            self._uninstall_kernel()
            self.kernel_fallback_reason = str(exc)
            return
        self.tree_kernel = kernel
        self.kernel_fallback_reason = None
        # Instance-attribute binding: reads shadow the class methods, so
        # ports and fabrics call the fused closures with zero dispatch.
        self.enqueue = kernel.enqueue
        self.dequeue = kernel.dequeue
        self.transfer = kernel.transfer

    def _uninstall_kernel(self) -> None:
        self.tree_kernel = None
        self.kernel_fallback_reason = "disabled"
        self.__dict__.pop("enqueue", None)
        self.__dict__.pop("dequeue", None)
        self.__dict__.pop("transfer", None)

    def set_tree_kernel(self, enabled: bool) -> None:
        """Enable/disable the fused kernel on a live (idle) scheduler."""
        self._tree_kernel_enabled = (
            enabled and type(self) is ProgrammableScheduler
        )
        self._install_kernel()

    def _kernel_stale_enqueue(self, packet: Packet, now: Optional[float]) -> bool:
        """Guard trip on enqueue: re-specialise, then retry the call."""
        self._install_kernel()
        return self.enqueue(packet, now=now)

    def _kernel_stale_dequeue(self, now: float) -> Optional[Packet]:
        """Guard trip on dequeue: re-specialise, then retry the call."""
        self._install_kernel()
        return self.dequeue(now=now)

    def _kernel_stale_transfer(self, packet: Packet, now: float) -> Optional[Packet]:
        """Guard trip on transfer: re-specialise, then retry (or compose)."""
        self._install_kernel()
        kernel = self.tree_kernel
        if kernel is not None:
            return kernel.transfer(packet, now)
        if not self.enqueue(packet, now=now):
            return None
        return self.dequeue(now=now)

    def _dequeue_descend(self, node: TreeNode, now: float) -> Packet:
        """Continue a dequeue below a reference popped by the fused kernel.

        Replicates the class :meth:`dequeue` descent loop from the point
        where the interpreted engine would have set ``node = element`` —
        the kernel handles the (overwhelmingly common) root level inline
        and delegates deeper levels here.
        """
        ctx = self._deq_ctx
        ctx.now = now
        extras = ctx.extras
        while True:
            if node.scheduling_pifo.is_empty:
                raise SchedulerError(
                    f"dangling reference: node {node.name!r} was referenced "
                    "by its parent but its scheduling PIFO is empty"
                )
            entry = node.scheduling_pifo.pop_entry()
            element = entry.element
            is_ref = isinstance(element, TreeNode)
            if node.needs_dequeue_hook:
                ctx.node = node.name
                ctx.element_flow = element.name if is_ref else element.flow
                ctx.element_length = 0 if is_ref else element.length
                extras["rank"] = entry.rank
                node.scheduling.on_dequeue(element, ctx)
            if is_ref:
                node = element
                continue
            packet: Packet = element
            packet.dequeue_time = now
            self._buffered_packets -= 1
            stats = self.stats
            stats.dequeued += 1
            per_flow = stats.per_flow_dequeued
            try:
                per_flow[packet.flow] += 1
            except KeyError:
                per_flow[packet.flow] = 1
            return packet

    # ------------------------------------------------------------------ #
    # Enqueue path                                                        #
    # ------------------------------------------------------------------ #
    def enqueue(self, packet: Packet, now: Optional[float] = None) -> bool:
        """Run the packet's transactions and buffer it.

        Returns ``True`` if the packet was buffered, ``False`` if it was
        dropped because a PIFO on its path was full.
        """
        time_now = packet.arrival_time if now is None else now
        path = self.tree.match_path(packet)
        try:
            if len(path) == 1 and path[0].shaping is None:
                # Single work-conserving node (the dominant tree shape in
                # throughput runs): skip the generic walk's loop framing.
                node = path[0]
                ctx = self._enq_ctx
                ctx.now = time_now
                ctx.node = node.name
                ctx.element_length = packet.length
                flow_fn = node.flow_fn
                ctx.element_flow = (packet.flow if flow_fn is _packet_flow
                                    else flow_fn(packet))
                node.scheduling_pifo.push(packet, node.scheduling(packet, ctx))
                self.stats.transactions_executed += 1
            else:
                self._walk_up(packet, path, start_index=0, now=time_now,
                              from_child=None)
        except PIFOFullError:
            if not self.drop_on_full:
                raise
            self.stats.dropped += 1
            return False
        packet.enqueue_time = time_now
        self._buffered_packets += 1
        stats = self.stats
        stats.enqueued += 1
        per_flow = stats.per_flow_enqueued
        try:
            per_flow[packet.flow] += 1
        except KeyError:
            per_flow[packet.flow] = 1
        return True

    def enqueue_many(
        self, packets: Iterable[Packet], now: Optional[float] = None
    ) -> int:
        """Enqueue a batch of packets; returns how many were buffered.

        The batch fast path used by the simulator's
        :meth:`~repro.sim.link.OutputPort.receive_many` and the throughput
        benchmarks; drops (full PIFOs) are counted, not raised, regardless
        of ``drop_on_full``.
        """
        accepted = 0
        for packet in packets:
            try:
                if self.enqueue(packet, now=now):
                    accepted += 1
            except PIFOFullError:
                self.stats.dropped += 1
        return accepted

    def _walk_up(
        self,
        packet: Packet,
        path: List[TreeNode],
        start_index: int,
        now: float,
        from_child: Optional[TreeNode],
    ) -> None:
        """Execute transactions along ``path[start_index:]``.

        Suspends (returns early) at the first node carrying a shaping
        transaction that is not the last node of the path.
        """
        child = from_child
        ctx = self._enq_ctx
        ctx.now = now
        ctx.element_length = packet.length
        for index in range(start_index, len(path)):
            node = path[index]
            element = packet if child is None else child
            ctx.node = node.name
            if child is not None:
                ctx.element_flow = child.name
            else:
                flow_fn = node.flow_fn
                ctx.element_flow = (packet.flow if flow_fn is _packet_flow
                                    else flow_fn(packet))
            rank = node.scheduling(packet, ctx)
            node.scheduling_pifo.push(element, rank)
            self.stats.transactions_executed += 1

            has_parent_on_path = index + 1 < len(path)
            if node.shaping is not None and has_parent_on_path:
                send_time = node.shaping(packet, ctx)
                self.stats.transactions_executed += 1
                token = ShapingToken(
                    node=node,
                    packet=packet,
                    path=path,
                    resume_index=index + 1,
                    release_time=send_time,
                )
                assert node.shaping_pifo is not None
                node.shaping_pifo.push(token, send_time)
                heapq.heappush(
                    self._shaping_calendar,
                    (send_time, self._calendar_seq, token),
                )
                self._calendar_seq += 1
                return
            child = node

    # ------------------------------------------------------------------ #
    # Shaping releases                                                    #
    # ------------------------------------------------------------------ #
    def _calendar_entry_is_stale(self, token: ShapingToken) -> bool:
        """A calendar entry is stale when its token is no longer the head of
        its node's shaping PIFO — which only happens when the tree was reset
        or the token was removed behind the scheduler's back."""
        pifo = token.node.shaping_pifo
        return pifo is None or pifo.is_empty or pifo.peek() is not token

    def process_shaping_releases(self, now: float) -> int:
        """Release every shaping token whose time has arrived.

        Tokens are processed in global release-time order so that multiple
        shaped nodes interleave deterministically.  Pops the global shaping
        calendar — O(log n) per released token, independent of the number
        of tree nodes — instead of the seed's per-call scan of every node.
        Returns the number of tokens released.
        """
        released = 0
        calendar = self._shaping_calendar
        while calendar and calendar[0][0] <= now:
            _, _, token = heapq.heappop(calendar)
            if self._calendar_entry_is_stale(token):
                continue
            token.node.shaping_pifo.pop()
            self.stats.shaping_releases += 1
            released += 1
            # Resume the walk at the parent, using the token's release time
            # as "now" so rank computations are independent of how late the
            # caller polls.
            self._walk_up(
                token.packet,
                token.path,
                start_index=token.resume_index,
                now=max(token.release_time, 0.0),
                from_child=token.node,
            )
        return released

    def next_shaping_release(self) -> Optional[float]:
        """Earliest pending shaping release time, or ``None`` if none.

        The simulator uses this to schedule a wake-up for non-work-conserving
        algorithms instead of busy-polling.  O(1) plus lazy cleanup of stale
        calendar entries.
        """
        calendar = self._shaping_calendar
        while calendar:
            release_time, _, token = calendar[0]
            if self._calendar_entry_is_stale(token):
                heapq.heappop(calendar)
                continue
            return release_time
        return None

    # ------------------------------------------------------------------ #
    # Dequeue path                                                        #
    # ------------------------------------------------------------------ #
    def dequeue(self, now: float = 0.0) -> Optional[Packet]:
        """Return the next packet to transmit, or ``None`` if none eligible.

        ``None`` can mean the scheduler is empty *or* that all buffered
        packets are held back by shaping transactions; use
        :meth:`next_shaping_release` to distinguish.
        """
        if self._shaping_calendar:
            self.process_shaping_releases(now)
        elif not self._buffered_packets:
            # Nothing buffered and nothing suspended: the common "is there
            # more work?" probe from a freshly idle port costs two int tests.
            return None
        node = self.tree.root
        if node.scheduling_pifo.is_empty:
            return None
        ctx = self._deq_ctx
        ctx.now = now
        extras = ctx.extras
        while True:
            entry = node.scheduling_pifo.pop_entry()
            element = entry.element
            is_ref = isinstance(element, TreeNode)
            if node.needs_dequeue_hook:
                ctx.node = node.name
                ctx.element_flow = element.name if is_ref else element.flow
                ctx.element_length = 0 if is_ref else element.length
                extras["rank"] = entry.rank
                node.scheduling.on_dequeue(element, ctx)
            if is_ref:
                node = element
                if node.scheduling_pifo.is_empty:
                    raise SchedulerError(
                        f"dangling reference: node {node.name!r} was referenced "
                        "by its parent but its scheduling PIFO is empty"
                    )
                continue
            packet: Packet = element
            packet.dequeue_time = now
            self._buffered_packets -= 1
            stats = self.stats
            stats.dequeued += 1
            per_flow = stats.per_flow_dequeued
            try:
                per_flow[packet.flow] += 1
            except KeyError:
                per_flow[packet.flow] = 1
            return packet

    def peek(self, now: float = 0.0) -> Optional[Packet]:
        """Return the packet that :meth:`dequeue` would return, without
        removing it.  Shaping releases due by ``now`` are applied."""
        if self._shaping_calendar:
            self.process_shaping_releases(now)
        node = self.tree.root
        if node.scheduling_pifo.is_empty:
            return None
        while True:
            element = node.scheduling_pifo.peek()
            if isinstance(element, TreeNode):
                node = element
                if node.scheduling_pifo.is_empty:
                    raise SchedulerError(
                        f"dangling reference: node {node.name!r} was referenced "
                        "by its parent but its scheduling PIFO is empty"
                    )
                continue
            return element

    # ------------------------------------------------------------------ #
    # Convenience                                                         #
    # ------------------------------------------------------------------ #
    def drain(self, now: float = 0.0) -> List[Packet]:
        """Dequeue until no packet is eligible at time ``now``.

        For work-conserving trees this empties the scheduler and returns the
        complete departure order; shaped trees may leave packets pending.
        """
        packets: List[Packet] = []
        while True:
            packet = self.dequeue(now)
            if packet is None:
                return packets
            packets.append(packet)

    def drain_timed(self, until: float, step: Optional[float] = None) -> List[Packet]:
        """Drain a shaped scheduler by advancing wall-clock time.

        Repeatedly dequeues, jumping the clock to the next shaping release
        when nothing is eligible, until ``until`` is reached or the
        scheduler is empty.  Packets' ``dequeue_time`` reflects when they
        became eligible, which is what the shaping experiments measure.
        """
        packets: List[Packet] = []
        now = 0.0
        while now <= until and len(self) > 0:
            packet = self.dequeue(now)
            if packet is not None:
                packets.append(packet)
                continue
            next_release = self.next_shaping_release()
            if next_release is None:
                break
            if step is not None:
                now = min(until, max(next_release, now + step))
            else:
                now = next_release
            if next_release > until:
                break
        return packets

    def __len__(self) -> int:
        """Number of packets currently buffered (not PIFO elements)."""
        return self._buffered_packets

    @property
    def is_empty(self) -> bool:
        return self._buffered_packets == 0

    def buffered_elements(self) -> int:
        """Total elements across every PIFO in the tree (packets + refs)."""
        return self.tree.buffered_elements()

    def reset(self) -> None:
        """Reset PIFOs, transaction state and counters for a fresh run."""
        self.tree.reset()
        self.stats = SchedulerStats()
        self._buffered_packets = 0
        self._shaping_calendar.clear()
        self._calendar_seq = 0
        # Fresh stats / transaction state invalidate the fused kernel's
        # hoisted cells; rebuild (cache hit: the shape is unchanged).
        self._install_kernel()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProgrammableScheduler(root={self.tree.root.name!r}, "
            f"buffered={self._buffered_packets})"
        )


def run_enqueue_dequeue(
    scheduler: ProgrammableScheduler,
    packets: Iterator[Packet],
    now: float = 0.0,
) -> List[Packet]:
    """Enqueue every packet, then drain — the standard unit-test harness for
    work-conserving algorithms."""
    for packet in packets:
        scheduler.enqueue(packet, now=now)
    return scheduler.drain(now=now)
