"""Section 5.4 — interconnecting PIFO blocks with a full mesh.

Regenerates the wiring arithmetic: 106 bits per directed block pair, 20
pairs for a 5-block mesh, 2120 bits total — small compared to the wiring of
an RMT match-action pipeline.
"""

from __future__ import annotations

from conftest import report

from repro.hardware import (
    MeshDesign,
    PAPER_TOTAL_MESH_WIRES,
    PAPER_WIRES_PER_SET,
    PIFOBlock,
    PIFOMesh,
)


def build_mesh_design():
    return MeshDesign()


def test_sec54_wire_counts(benchmark):
    mesh = benchmark(build_mesh_design)
    report(
        "Section 5.4: full-mesh wiring",
        [
            {
                "quantity": "bits per wire set",
                "paper": PAPER_WIRES_PER_SET,
                "model": mesh.bits_per_wire_set(),
            },
            {"quantity": "wire sets (5 blocks)", "paper": 20, "model": mesh.wire_sets()},
            {
                "quantity": "total mesh wires",
                "paper": PAPER_TOTAL_MESH_WIRES,
                "model": mesh.total_mesh_wires(),
            },
        ],
    )
    assert mesh.bits_per_wire_set() == PAPER_WIRES_PER_SET
    assert mesh.wire_sets() == 20
    assert mesh.total_mesh_wires() == PAPER_TOTAL_MESH_WIRES


def test_sec54_wiring_growth_with_block_count(benchmark):
    """Wiring grows quadratically with block count — the reason the paper
    argues a full mesh is only sensible because the number of blocks is
    small (fewer than ~5 levels of hierarchy in practice)."""
    def sweep():
        results = {}
        for count in (2, 3, 5, 8, 16):
            mesh = PIFOMesh()
            for index in range(count):
                mesh.add_block(PIFOBlock(name=f"b{index}"))
            results[count] = mesh.total_mesh_wires()
        return results

    wires = benchmark(sweep)
    report(
        "Section 5.4: total wires vs number of blocks",
        [{"blocks": count, "total_wires": total} for count, total in wires.items()],
    )
    assert wires[5] == PAPER_TOTAL_MESH_WIRES
    assert wires[16] / wires[5] > 10  # quadratic blow-up
