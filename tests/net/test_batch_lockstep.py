"""Batched port transmit: lockstep equivalence and mid-burst conservation.

Output ports drain up to ``batch_limit`` back-to-back packets inside one
transmit-complete callback while the link stays saturated.  That is a
pure event-count optimisation: every packet must carry exactly the
timestamps, ordering and drop decisions of the single-step datapath
(``batch_limit=1``), with telemetry on or off, fused or interpreted, and
under fault plans (which disable kernel fusion and exercise the
interpreted batching in :class:`~repro.sim.link.OutputPort`).

The hypothesis suite drives a LinkDown into the middle of a saturated
burst so the fault lands *between packets of one batch*, and checks the
PR 7 conservation identity
``injected == delivered + dropped + lost_to_faults + in_flight``
both at a probe instant just after the fault and at quiescence.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import FIFOTransaction
from repro.core import ProgrammableScheduler, single_node_tree
from repro.core.packet import Packet
from repro.net import Fabric, FaultPlan, LinkDown, LinkUp, Network, linear_chain
from repro.sim import Simulator


def fifo_factory(switch, port):
    return ProgrammableScheduler(single_node_tree(FIFOTransaction()))


def burst(count, length=1500, gap=0.0):
    """``count`` packets arriving back-to-back (gap=0 saturates the NIC)."""
    return [(i * gap, Packet(flow=f"f{i % 4}", length=length, dst="h_dst"))
            for i in range(count)]


def build(batch_limit, telemetry=True, fault_plan=None, hops=3,
          arrivals=None):
    sim = Simulator()
    fabric = Fabric(sim, linear_chain(hops, link_rate_bps=1e7),
                    fifo_factory, telemetry=telemetry,
                    fault_plan=fault_plan, batch_limit=batch_limit)
    fabric.attach_source("h_src", arrivals if arrivals is not None
                         else burst(120))
    return sim, fabric


def observable(fabric):
    sink = fabric.sink("h_dst")
    return {
        "order": sink.departure_order(),
        "departures": [p.departure_time for p in sink.packets],
        "arrivals": [p.arrival_time for p in sink.packets],
        "conservation": fabric.conservation_check(),
    }


class TestBatchedLockstep:
    @pytest.mark.parametrize("telemetry", [True, False])
    def test_batched_matches_single_step(self, telemetry):
        _, batched = build(batch_limit=32, telemetry=telemetry)
        batched.run(drain=True)
        _, single = build(batch_limit=1, telemetry=telemetry)
        single.run(drain=True)
        assert observable(batched) == observable(single)

    @pytest.mark.parametrize("telemetry", [True, False])
    def test_batched_matches_single_step_under_faults(self, telemetry):
        # Fault plans force the interpreted datapath; the OutputPort batch
        # loop must still mirror single-step exactly, including the
        # blackholed packet and the recovery burst.
        plan = FaultPlan(events=[LinkDown(0.002, "s1", "s2"),
                                 LinkUp(0.02, "s1", "s2")])
        _, batched = build(batch_limit=32, telemetry=telemetry,
                           fault_plan=plan)
        batched.run(drain=True)
        _, single = build(batch_limit=1, telemetry=telemetry,
                          fault_plan=plan)
        single.run(drain=True)
        obs_batched = observable(batched)
        assert obs_batched == observable(single)
        assert obs_batched["conservation"]["lost_to_faults"] > 0

    @staticmethod
    def _bottleneck(batch_limit):
        # Fast NIC into a 10x-slower egress: the switch port backlogs and
        # then drains *alone* — the only pending event is its own next
        # completion, which is exactly when fast-forward may engage.
        network = Network("bottleneck")
        network.add_host("h_src")
        network.add_switch("s1")
        network.add_host("h_dst")
        network.add_link("h_src", "s1", rate_bps=1e8)
        network.add_link("s1", "h_dst", rate_bps=1e7)
        sim = Simulator()
        fabric = Fabric(sim, network, fifo_factory,
                        batch_limit=batch_limit)
        fabric.attach_source("h_src", burst(120))
        fabric.run(drain=True)
        return sim, fabric

    def test_batch_limit_caps_per_callback_drain(self):
        # Draining a backlog, batching *schedules* far fewer events than
        # single-step (the point of the optimisation) while processing
        # the same count — ``events_processed`` parity is part of the
        # lockstep contract; the savings show in the sequence counter.
        sim_b, batched = self._bottleneck(batch_limit=32)
        sim_s, single = self._bottleneck(batch_limit=1)
        assert (batched.sink("h_dst").total_packets()
                == single.sink("h_dst").total_packets() == 120)
        assert observable(batched) == observable(single)
        assert sim_b.events_processed == sim_s.events_processed
        assert sim_b._queue._next_seq < sim_s._queue._next_seq


class TestMidBurstConservation:
    @given(
        down_packet=st.integers(min_value=1, max_value=40),
        probe_delay=st.floats(min_value=0.0, max_value=0.005,
                              allow_nan=False, allow_infinity=False),
        batch_limit=st.sampled_from([1, 2, 8, 32]),
        recover=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_linkdown_between_batch_packets(self, down_packet, probe_delay,
                                            batch_limit, recover):
        """Conservation holds at every instant, not just at quiescence.

        The fault time is placed mid-serialisation of the ``down_packet``-th
        packet on the s1->s2 link, i.e. between two packets of the same
        back-to-back batch.
        """
        tx_time = 1500 * 8 / 1e7           # per-packet serialisation time
        down_at = (down_packet + 0.5) * tx_time
        events = [LinkDown(down_at, "s1", "s2")]
        if recover:
            events.append(LinkUp(down_at + 0.01, "s1", "s2"))
        plan = FaultPlan(events=events)

        sim, fabric = build(batch_limit=batch_limit, fault_plan=plan,
                            arrivals=burst(60))
        probes = []

        def probe():
            probes.append(dict(fabric.conservation_check()))

        sim.schedule_at(down_at + probe_delay, probe)
        fabric.run(drain=True)

        assert probes, "probe never fired"
        for snapshot in probes:
            assert snapshot["injected"] == (
                snapshot["delivered"] + snapshot["dropped"]
                + snapshot["lost_to_faults"] + snapshot["in_flight"]
            ), snapshot

        final = fabric.conservation_check()
        assert final["injected"] == (final["delivered"] + final["dropped"]
                                     + final["lost_to_faults"]
                                     + final["in_flight"]), final
        assert final["lost_to_faults"] >= 1  # the mid-burst victim
        if recover:
            assert final["delivered"] > down_packet  # queued burst drained
