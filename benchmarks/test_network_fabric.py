"""Fabric throughput microbenchmark (reproduction-sizing, not a paper table).

Measures end-to-end packets/second sustained by the :mod:`repro.net` fabric
on the two canonical topologies — a 3-hop linear chain and a 4-leaf /
2-spine Clos with ECMP — parametrized over every swappable PIFO backend, so
regressions in the multi-hop forwarding path (per-hop delivery hooks, hop
stamping, routing lookups) show up directly.  Writes the measured rates to
``BENCH_network_fabric.json`` at the repo root (the artifact CI uploads).
Set ``BENCH_QUICK=1`` to shrink the workloads for smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest
from conftest import report

from repro.algorithms import ArrivalSequenceTransaction
from repro.core import ProgrammableScheduler, single_node_tree
from repro.net import Fabric, leaf_spine, linear_chain
from repro.sim import Simulator
from repro.traffic import FlowSpec, cbr_arrivals

BENCH_QUICK = bool(os.environ.get("BENCH_QUICK"))
#: Packets pushed end to end through each topology, per backend.
CHAIN_PACKETS = 2_000 if BENCH_QUICK else 10_000
CLOS_PACKETS = 2_000 if BENCH_QUICK else 10_000
BACKENDS = ["sorted", "calendar", "bucketed"]
BENCH_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_network_fabric.json"

PACKET_SIZE = 500
LINK_RATE = 1e9


def _fifo_factory(switch, port):
    # Arrival-sequence ranks are monotone integers, so every backend
    # (including the integer-only bucket queue) runs the same workload.
    return ProgrammableScheduler(single_node_tree(ArrivalSequenceTransaction()))


def _drive_chain(backend, packet_count):
    """CBR overload h_src -> h_dst across 3 switches; returns elapsed wall
    time once every packet has drained out of the fabric."""
    sim = Simulator()
    net = linear_chain(3, link_rate_bps=LINK_RATE)
    fabric = Fabric(sim, net, _fifo_factory, pifo_backend=backend,
                    keep_packets=False)
    duration = packet_count * PACKET_SIZE * 8.0 / (0.9 * LINK_RATE)
    spec = FlowSpec(name="load", rate_bps=0.9 * LINK_RATE,
                    packet_size=PACKET_SIZE, dst="h_dst")
    fabric.attach_source("h_src", cbr_arrivals(spec, duration=duration))
    start = time.perf_counter()
    fabric.run(drain=True)
    elapsed = time.perf_counter() - start
    assert fabric.delivered_packets >= packet_count * 0.99
    assert fabric.in_flight_packets() == 0
    return fabric.delivered_packets, elapsed


def _drive_clos(backend, packet_count):
    """Four cross-leaf CBR senders over a 4x2 leaf-spine with ECMP."""
    sim = Simulator()
    net = leaf_spine(leaves=4, spines=2, hosts_per_leaf=1,
                     host_rate_bps=LINK_RATE)
    fabric = Fabric(sim, net, _fifo_factory, ecmp=True, pifo_backend=backend,
                    keep_packets=False)
    pairs = [("h0_0", "h2_0"), ("h1_0", "h3_0"),
             ("h2_0", "h0_0"), ("h3_0", "h1_0")]
    per_sender = packet_count // len(pairs)
    duration = per_sender * PACKET_SIZE * 8.0 / (0.9 * LINK_RATE)
    for src, dst in pairs:
        spec = FlowSpec(name=f"{src}->{dst}", rate_bps=0.9 * LINK_RATE,
                        packet_size=PACKET_SIZE, src=src, dst=dst)
        fabric.attach_source(src, cbr_arrivals(spec, duration=duration))
    start = time.perf_counter()
    fabric.run(drain=True)
    elapsed = time.perf_counter() - start
    assert fabric.delivered_packets >= 4 * per_sender * 0.99
    assert fabric.in_flight_packets() == 0
    return fabric.delivered_packets, elapsed


@pytest.mark.parametrize("backend", BACKENDS)
def test_fabric_chain_throughput(benchmark, backend):
    """Every PIFO backend pushes the chain workload through unmodified."""
    delivered, _ = benchmark.pedantic(
        lambda: _drive_chain(backend, CHAIN_PACKETS), rounds=1, iterations=1
    )
    assert delivered >= CHAIN_PACKETS * 0.99


def test_fabric_throughput_summary():
    """Consolidated packets/second table; writes the CI artifact."""
    rows = []
    artifact = {"packet_size_bytes": PACKET_SIZE, "topologies": {}}
    for topology, driver, count in (
        ("chain3", _drive_chain, CHAIN_PACKETS),
        ("leaf_spine4x2", _drive_clos, CLOS_PACKETS),
    ):
        artifact["topologies"][topology] = {"packets": count, "backends": {}}
        for backend in BACKENDS:
            delivered, elapsed = driver(backend, count)
            rate = delivered / elapsed
            rows.append(
                {
                    "topology": topology,
                    "backend": backend,
                    "delivered": delivered,
                    "packets_per_second": rate,
                }
            )
            artifact["topologies"][topology]["backends"][backend] = rate
    report("Fabric throughput (end-to-end packets/second)", rows)
    BENCH_ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    # A Python fabric should comfortably sustain thousands of packets/s on
    # every backend; anything lower signals a forwarding-path regression.
    assert all(row["packets_per_second"] > 1000 for row in rows)
