"""Errors raised by the transaction language tool-chain.

All derive from :class:`repro.exceptions.ReproError` through
:class:`LangError`, so callers that already catch library errors keep
working, and from the language side a single ``except LangError`` covers the
lexer, the parser and the interpreter.
"""

from __future__ import annotations

from ..exceptions import ReproError


class LangError(ReproError):
    """Base class for every transaction-language error."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class LexerError(LangError):
    """Raised for characters or indentation the tokenizer cannot handle."""


class ParseError(LangError):
    """Raised when the token stream does not form a valid program."""


class RuntimeLangError(LangError):
    """Raised when a program fails while executing.

    Examples: reading an undefined variable, subscripting a non-mapping
    state variable, dividing by zero, or finishing a scheduling program
    without assigning ``p.rank``.
    """
