"""Traffic sources: feed arrival streams into an output port.

A source pulls ``(time, packet)`` pairs from an iterator (typically built by
:mod:`repro.traffic.generators`) and schedules each arrival in the
simulator.  Arrivals are scheduled lazily — one event in flight per source —
so even very long workloads do not pre-materialise the whole event list.

Hot-path design
---------------
The source prefetches arrivals from the iterator in chunks
(:data:`PREFETCH_CHUNK` at a time) so the generator machinery runs once per
chunk rather than once per packet, and the single in-flight event calls the
bound method ``self._on_arrival`` with the pending packet stored on the
source — no per-packet closure.
"""

from __future__ import annotations

from heapq import heappush
from itertools import islice
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from ..core.packet import Packet
from ..exceptions import TrafficError
from .simulator import Simulator

#: Arrivals pulled from the stream per refill.  Large enough to amortise
#: generator resumption, small enough that stopping a source mid-run wastes
#: almost nothing.
PREFETCH_CHUNK = 256


class PacketSource:
    """Replays an arrival stream into a destination port.

    Parameters
    ----------
    sim:
        The simulator.
    destination:
        Any object with a ``receive(packet)`` method (usually an
        :class:`~repro.sim.link.OutputPort`).
    arrivals:
        Iterable of ``(time, packet)`` pairs in non-decreasing time order.
    name:
        Label for debugging.
    """

    __slots__ = ("sim", "destination", "name", "_iterator", "generated_packets",
                 "_last_time", "_pending", "_pending_packet", "_batch", "_index",
                 "_arrival_cb", "_receive")

    def __init__(
        self,
        sim: Simulator,
        destination,
        arrivals: Iterable[Tuple[float, Packet]],
        name: str = "source",
    ) -> None:
        self.sim = sim
        self.destination = destination
        self.name = name
        self.generated_packets = 0
        self._last_time = -1.0
        self._pending = None
        self._pending_packet: Optional[Packet] = None
        #: Prefetched (time, packet) pairs and the cursor into them.
        self._batch: List[Tuple[float, Packet]] = []
        self._index = 0
        if isinstance(arrivals, list):
            # Already-materialised workload (perf builders, workload
            # cache replays convertible to lists): adopt it wholesale and
            # validate ordering once, up front — no per-chunk refills in
            # the hot path.
            self._iterator: Iterator[Tuple[float, Packet]] = iter(())
            last = self._last_time
            for time, _packet in arrivals:
                if time < last - 1e-12:
                    raise TrafficError(
                        f"source {self.name!r} produced arrivals out of "
                        f"order ({time} after {last})"
                    )
                last = time
            self._batch = arrivals
        else:
            self._iterator = iter(arrivals)
        #: The arrival callback and the destination's receive, bound once —
        #: both run once per generated packet.
        self._arrival_cb = self._on_arrival
        self._receive = destination.receive
        self._schedule_next()

    def _refill(self) -> bool:
        """Pull the next chunk of arrivals; returns False at end of stream."""
        batch = list(islice(self._iterator, PREFETCH_CHUNK))
        if not batch:
            return False
        last = self._last_time
        for time, _packet in batch:
            if time < last - 1e-12:
                raise TrafficError(
                    f"source {self.name!r} produced arrivals out of order "
                    f"({time} after {last})"
                )
            last = time
        self._batch = batch
        self._index = 0
        return True

    def _schedule_next(self) -> None:
        if self._index >= len(self._batch) and not self._refill():
            self._pending = None
            self._pending_packet = None
            return
        time, packet = self._batch[self._index]
        self._index += 1
        self._last_time = time
        self._pending_packet = packet
        self._pending = self.sim.schedule_at(time, self._arrival_cb)

    def _on_arrival(self) -> None:
        packet = self._pending_packet
        self.generated_packets += 1
        self._receive(packet)
        # _schedule_next with Simulator.schedule_at inlined: one arrival
        # event per generated packet makes the two calls measurable at
        # fabric scale.  Arrivals in the simulated past (a non-monotone
        # stream racing the clock) take the checked slow path.
        batch = self._batch
        index = self._index
        if index >= len(batch):
            if not self._refill():
                self._pending = None
                self._pending_packet = None
                return
            batch = self._batch
            index = 0
        time, nxt = batch[index]
        self._index = index + 1
        self._last_time = time
        self._pending_packet = nxt
        sim = self.sim
        if time >= sim.now:
            queue = sim._queue
            seq = queue._next_seq
            queue._next_seq = seq + 1
            entry = (time, seq, self._arrival_cb)
            heap = sim._raw_heap
            if heap is not None:
                heappush(heap, entry)
            else:
                queue.insert(entry)
            self._pending = entry
        else:
            self._pending = sim.schedule_at(time, self._arrival_cb)

    # -- arrival prefetch (fused NIC egress) -------------------------------
    # A fused NIC egress that owns this source's host can *pull* arrivals
    # at its own transmit completions instead of waiting for the scheduled
    # arrival event: peek the next arrival, and either take it (consuming
    # it without ever scheduling an event — cancelling the one in flight if
    # this is the first pull) or park it (re-arming the normal event so the
    # source regains ownership, e.g. past the current run horizon).

    def _peek_arrival(self) -> Tuple[float, Optional[Packet]]:
        """Next arrival as ``(time, packet)`` without consuming it.

        Returns ``(0.0, None)`` at end of stream.
        """
        if self._pending is not None:
            return self._pending[0], self._pending_packet
        if self._index >= len(self._batch) and not self._refill():
            return 0.0, None
        time, packet = self._batch[self._index]
        return time, packet

    def _take_arrival(self) -> None:
        """Consume the arrival last returned by :meth:`_peek_arrival`.

        The caller is now responsible for injecting the packet; no arrival
        event remains scheduled afterwards.
        """
        pending = self._pending
        self.generated_packets += 1
        if pending is not None:
            # First pull after the source owned the stream: unschedule the
            # in-flight arrival event (tombstoned, discarded on pop).
            self.sim.cancel(pending)
            self._pending = None
            self._pending_packet = None
            return
        time, _packet = self._batch[self._index]
        self._index += 1
        self._last_time = time

    def _park_arrival(self) -> None:
        """Hand stream ownership back to the source (schedule the event)."""
        if self._pending is None:
            self._schedule_next()

    def stop(self) -> None:
        """Cancel any not-yet-emitted arrival and drop the rest of the stream.

        Used by the fabric's drain phase so "finish the packets in flight"
        does not mean "replay the remainder of an arrival stream"."""
        if self._pending is not None:
            self.sim.cancel(self._pending)
            self._pending = None
            self._pending_packet = None
        self._iterator = iter(())
        self._batch = []
        self._index = 0


def chain_hops(
    sim: Simulator,
    upstream_port,
    downstream_port,
    transform: Optional[Callable[[Packet], Packet]] = None,
    propagation_delay: float = 0.0,
) -> None:
    """Connect two ports so packets leaving the first enter the second.

    ``transform`` may modify or replace the packet between hops (the LSTF
    experiment uses it to stamp the previous hop's wait time); a propagation
    delay can model the wire between switches.
    """

    def _forward(packet: Packet) -> None:
        forwarded = transform(packet) if transform is not None else packet
        if propagation_delay > 0:
            sim.schedule(propagation_delay, lambda p=forwarded: downstream_port.receive(p))
        else:
            downstream_port.receive(forwarded)

    previous = upstream_port.on_departure

    def _combined(packet: Packet) -> None:
        if previous is not None:
            previous(packet)
        _forward(packet)

    upstream_port.on_departure = _combined
