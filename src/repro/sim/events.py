"""Event primitives for the discrete-event simulator.

The simulator processes events in non-decreasing time order; events scheduled
for the same instant run in the order they were scheduled (a monotonically
increasing sequence number breaks ties), which keeps runs deterministic.

Hot-path design
---------------
An event is a bare ``(time, seq, callback)`` tuple — no wrapper object, no
dataclass ``__lt__``: the heap compares tuples in C, and since ``seq`` is
unique the callback is never compared.  Cancellation marks the event's
sequence number in a *tombstone set*; tombstoned entries are skipped on pop.
When tombstones outnumber half the heap the queue **compacts** — rebuilds
the heap without the dead entries — so a workload that arms and cancels many
wake-ups (shaped ports) cannot grow the heap without bound.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Set, Tuple

from ..exceptions import SimulationError
from ..obs import metrics

#: A scheduled callback: ``(time, seq, callback)``.  Returned by
#: :meth:`EventQueue.push` as the cancellation handle.
Event = Tuple[float, int, Callable[[], Any]]


class EventQueue:
    """A priority queue of ``(time, seq, callback)`` events.

    Ordered by (time, scheduling order).  ``push`` returns the raw entry
    tuple, which doubles as the handle for :meth:`cancel`.
    """

    __slots__ = ("_heap", "_tombstones", "_next_seq", "_metrics")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._tombstones: Set[int] = set()
        self._next_seq = 0
        # Captured once at construction: the active metrics registry's
        # instruments, or None.  push/cancel/pop stay untouched — only
        # compact() (rare by design) reports, so the disabled cost here
        # is literally zero on the per-event path.
        registry = metrics.active()
        self._metrics = None if registry is None else (
            registry.counter("sim.event_compactions"),
            registry.histogram("sim.tombstone_ratio",
                               buckets=(0.1, 0.25, 0.5, 0.75, 1.0)),
            registry.gauge("sim.heap_size"),
        )

    def push(self, time: float, callback: Callable[[], Any],
             name: str = "") -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle.

        ``name`` is accepted for API compatibility and ignored — per-event
        labels cost an allocation on the hottest path in the simulator.
        """
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = (time, seq, callback)
        heapq.heappush(self._heap, entry)
        return entry

    def cancel(self, entry: Event) -> None:
        """Mark an event so the simulator skips it when its time comes.

        Idempotent.  Compacts the heap when tombstones pile up past half
        its size.
        """
        self._tombstones.add(entry[1])
        if len(self._tombstones) * 2 > len(self._heap):
            self.compact()

    def cancelled(self, entry: Event) -> bool:
        """Whether the entry has been cancelled (and not yet collected)."""
        return entry[1] in self._tombstones

    def compact(self) -> None:
        """Rebuild the heap without tombstoned entries.

        In-place (``heap[:] = ...``) so callers holding a reference to the
        underlying list — the flattened :meth:`Simulator.run` loop — stay
        valid.  Also drops tombstones for entries already popped, keeping
        the set from leaking under cancel-after-fire misuse.
        """
        tombstones = self._tombstones
        if tombstones:
            heap = self._heap
            m = self._metrics
            if m is not None:
                compactions, ratio, heap_size = m
                compactions.inc()
                if heap:
                    ratio.observe(len(tombstones) / len(heap))
            heap[:] = [entry for entry in heap if entry[1] not in tombstones]
            heapq.heapify(heap)
            tombstones.clear()
            if m is not None:
                heap_size.set(len(heap))

    def pop(self) -> Event:
        """Remove and return the earliest live (non-cancelled) event."""
        heap = self._heap
        tombstones = self._tombstones
        while heap:
            entry = heapq.heappop(heap)
            if tombstones and entry[1] in tombstones:
                tombstones.discard(entry[1])
                continue
            return entry
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` when empty.

        Lazily discards cancelled entries sitting at the head.
        """
        heap = self._heap
        tombstones = self._tombstones
        while heap:
            entry = heap[0]
            if tombstones and entry[1] in tombstones:
                heapq.heappop(heap)
                tombstones.discard(entry[1])
                continue
            return entry[0]
        return None

    def __len__(self) -> int:
        return len(self._heap) - len(self._tombstones)

    def __bool__(self) -> bool:
        return len(self._heap) > len(self._tombstones)
