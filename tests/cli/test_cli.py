"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CAMPAIGNS, Campaign, register_campaign
from repro.cli import build_parser, main


class TestParser:
    def test_known_subcommands(self):
        parser = build_parser()
        for argv in (["list"], ["run", "table1"], ["report"], ["programs"],
                     ["scenarios"], ["show", "stfq"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_run_flags(self):
        args = build_parser().parse_args(["run", "fig1", "--quick", "--json"])
        assert args.experiment == "fig1"
        assert args.quick is True
        assert args.json is True

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestCommands:
    def test_no_command_prints_help_and_fails(self, capsys):
        assert main([]) == 1
        assert "usage:" in capsys.readouterr().out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig3" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "2048" in out
        assert "4096" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_run_json_output(self, capsys):
        assert main(["run", "sec5.4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "sec5.4"
        assert payload["rows"]

    def test_run_behavioural_experiment_quick(self, capsys):
        assert main(["run", "fig1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "measured_share" in out

    def test_report_subset(self, capsys):
        assert main(["report", "table1", "sec5.4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[table1]" in out
        assert "[sec5.4]" in out

    def test_report_unknown_experiment(self, capsys):
        assert main(["report", "bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_programs_command(self, capsys):
        assert main(["programs"]) == 0
        out = capsys.readouterr().out
        assert "stfq" in out
        assert "token_bucket" in out

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "fig6_chain" in out
        assert "leaf_spine_fct" in out
        assert "LSTF" in out

    def test_list_includes_fabric_experiments(self, capsys):
        assert main(["list"]) == 0
        assert "leaf_spine_fct" in capsys.readouterr().out

    def test_show_command(self, capsys):
        assert main(["show", "token_bucket"]) == 0
        out = capsys.readouterr().out
        assert "p.send_time" in out
        assert "Atom pipeline" in out
        assert "feasible at line rate : yes" in out

    def test_show_unknown_program(self, capsys):
        assert main(["show", "bogus"]) == 2
        assert "unknown program" in capsys.readouterr().err

    def test_run_json_out_writes_file(self, capsys, tmp_path):
        out = tmp_path / "result.json"
        assert main(["run", "sec5.4", "--json", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "wrote" in stdout
        payload = json.loads(out.read_text())
        assert payload["experiment_id"] == "sec5.4"

    def test_run_out_implies_json(self, tmp_path):
        out = tmp_path / "result.json"
        assert main(["run", "sec5.4", "--out", str(out)]) == 0
        assert json.loads(out.read_text())["rows"]


@pytest.fixture()
def cli_campaign():
    campaign = register_campaign(Campaign(
        name="cli_probe",
        title="one-run campaign for CLI tests",
        scenarios=["fig6_chain"],
        variants=["FIFO"],
        pifo_backends=["sorted"],
    ))
    yield campaign
    CAMPAIGNS.pop("cli_probe", None)


class TestCampaignCommands:
    def test_campaign_without_subcommand(self, capsys):
        assert main(["campaign"]) == 2
        assert "campaign" in capsys.readouterr().err

    def test_campaign_list(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper_sweep" in out
        assert "24" in out

    def test_campaign_run_unknown(self, capsys):
        assert main(["campaign", "run", "bogus"]) == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_campaign_run_and_report(self, capsys, tmp_path, cli_campaign):
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "fig6_chain/FIFO/sorted/native/x1/r0" in out
        assert store.exists()

        assert main(["campaign", "report", "cli_probe",
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "FIFO" in out
        assert "mean_delay_ms" in out

    def test_campaign_run_resume_skips_everything(self, capsys, tmp_path,
                                                  cli_campaign):
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", "cli_probe", "--quick", "--resume",
                     "--store", str(store), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["executed"] == 0
        assert summary["skipped"] == 1

    def test_campaign_run_json_summary(self, capsys, tmp_path, cli_campaign):
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick", "--json",
                     "--store", str(store)]) == 0
        # --json emits pure JSON on stdout (no banner, pipeable to jq).
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed"] == 1
        assert payload["campaign"] == "cli_probe"

    def test_campaign_report_group_by_and_out(self, capsys, tmp_path,
                                              cli_campaign):
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        out_file = tmp_path / "rows.json"
        assert main(["campaign", "report", "--store", str(store),
                     "--group-by", "scenario,pifo_backend",
                     "--out", str(out_file)]) == 0
        rows = json.loads(out_file.read_text())
        assert rows[0]["pifo_backend"] == "sorted"
        assert rows[0]["runs"] == 1

    def test_campaign_report_bad_group_key(self, capsys, tmp_path,
                                           cli_campaign):
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "--store", str(store),
                     "--group-by", "bogus"]) == 2
        assert "cannot group by" in capsys.readouterr().err

    def test_campaign_run_invalid_workers(self, capsys, tmp_path,
                                          cli_campaign):
        assert main(["campaign", "run", "cli_probe", "--quick", "--workers",
                     "0", "--store", str(tmp_path / "s.jsonl")]) == 2
        assert "workers" in capsys.readouterr().err

    def test_campaign_report_dedupes_reruns(self, capsys, tmp_path,
                                            cli_campaign):
        store = tmp_path / "store.jsonl"
        for _ in range(2):  # same campaign twice, no --resume
            assert main(["campaign", "run", "cli_probe", "--quick",
                         "--store", str(store)]) == 0
        capsys.readouterr()
        out_file = tmp_path / "rows.json"
        assert main(["campaign", "report", "--store", str(store),
                     "--out", str(out_file)]) == 0
        rows = json.loads(out_file.read_text())
        assert rows[0]["runs"] == 1  # last record wins, not doubled

    def test_campaign_report_missing_store(self, capsys, tmp_path):
        assert main(["campaign", "report", "--store",
                     str(tmp_path / "none.jsonl")]) == 2
        assert "no result store" in capsys.readouterr().err

    def test_campaign_report_needs_name_or_store(self, capsys):
        assert main(["campaign", "report"]) == 2
        assert "needs a campaign name" in capsys.readouterr().err


class TestCampaignVerify:
    def test_verify_clean_store(self, capsys, tmp_path, cli_campaign):
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["campaign", "verify", "cli_probe", "--quick",
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "all records verified" in out
        assert "missing runs  : 0" in out

    def test_verify_reports_issues_with_exit_1(self, capsys, tmp_path,
                                               cli_campaign):
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store)]) == 0
        with store.open("a") as handle:
            handle.write('{"fingerprint": "tampered"}\n')
            handle.write('{"half a record')  # torn tail
        capsys.readouterr()
        assert main(["campaign", "verify", "--store", str(store)]) == 1
        captured = capsys.readouterr()
        assert "ISSUE:" in captured.out
        assert "issue(s) found" in captured.err

    def test_verify_missing_store(self, capsys, tmp_path):
        assert main(["campaign", "verify", "--store",
                     str(tmp_path / "none.jsonl")]) == 2
        assert "no result store" in capsys.readouterr().err

    def test_verify_needs_name_or_store(self, capsys):
        assert main(["campaign", "verify"]) == 2
        assert "needs a campaign name or --store" in capsys.readouterr().err

    def test_verify_json_out(self, capsys, tmp_path, cli_campaign):
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        out_file = tmp_path / "verify.json"
        assert main(["campaign", "verify", "cli_probe", "--quick",
                     "--store", str(store), "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["records"] == 1
        assert payload["issues"] == []
        assert payload["missing"] == 0


class TestCampaignFailureReporting:
    def test_run_prints_failures_and_resume_hint(self, capsys, tmp_path,
                                                 cli_campaign, monkeypatch):
        from repro.campaign.runner import FAULT_ENV

        monkeypatch.setenv(FAULT_ENV, "fig6_chain:raise")
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "RuntimeError" in out
        assert "--resume" in out           # the re-run hint

    def test_run_abort_exit_code(self, capsys, tmp_path, cli_campaign,
                                 monkeypatch):
        from repro.campaign.runner import FAULT_ENV

        monkeypatch.setenv(FAULT_ENV, "fig6_chain:raise")
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store), "--max-failures", "0"]) == 3
        out = capsys.readouterr().out
        assert "aborted" in out

    def test_run_retry_flags_pass_through(self, capsys, tmp_path,
                                          cli_campaign, monkeypatch):
        from repro.campaign.runner import FAULT_ENV

        monkeypatch.setenv(FAULT_ENV, "fig6_chain:flaky:2")
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store), "--max-attempts", "2",
                     "--timeout", "60", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed"] == 1
        assert payload["failed"] == 0


class TestCampaignQueueCommands:
    def test_serve_initialises_queue(self, capsys, tmp_path, cli_campaign):
        queue_dir = tmp_path / "q"
        assert main(["campaign", "serve", "cli_probe", "--quick",
                     "--queue", str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "repro campaign work" in out
        assert (queue_dir / "manifest.json").exists()

    def test_serve_unknown_campaign(self, capsys, tmp_path):
        assert main(["campaign", "serve", "bogus",
                     "--queue", str(tmp_path / "q")]) == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_work_without_serve_fails(self, capsys, tmp_path):
        assert main(["campaign", "work",
                     "--queue", str(tmp_path / "absent")]) == 2
        assert "no queue manifest" in capsys.readouterr().err

    def test_serve_work_merge_round_trip(self, capsys, tmp_path,
                                         cli_campaign):
        queue_dir = tmp_path / "q"
        store = tmp_path / "merged.jsonl"
        assert main(["campaign", "serve", "cli_probe", "--quick",
                     "--queue", str(queue_dir)]) == 0
        capsys.readouterr()
        assert main(["campaign", "work", "--queue", str(queue_dir),
                     "--executor", "alice", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["executed"] == 1
        assert report["drained"] is True
        # Re-serving a drained queue merges the segments...
        assert main(["campaign", "serve", "cli_probe", "--quick",
                     "--queue", str(queue_dir), "--store", str(store),
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["merged"] == 1
        # ...and the merged store verifies against the run table.
        assert main(["campaign", "verify", "cli_probe", "--quick",
                     "--store", str(store), "--json"]) == 0
        verified = json.loads(capsys.readouterr().out)
        assert verified["issues"] == []
        assert verified["missing"] == 0

    def test_report_from_queue_dir(self, capsys, tmp_path, cli_campaign):
        queue_dir = tmp_path / "q"
        assert main(["campaign", "serve", "cli_probe", "--quick",
                     "--queue", str(queue_dir)]) == 0
        assert main(["campaign", "work", "--queue", str(queue_dir),
                     "--executor", "alice"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "--queue", str(queue_dir),
                     "--group-by", "scenario", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["scenario"] == "fig6_chain"
        assert rows[0]["runs"] == 1

    def test_run_json_includes_kernel_cache(self, capsys, tmp_path,
                                            cli_campaign):
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick", "--json",
                     "--store", str(store)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "kernel_cache" in payload
        assert payload["kernel_cache"]["installs"] >= 0

class TestTraceCommand:
    def test_trace_writes_spans_and_chrome(self, capsys, tmp_path):
        spans_path = tmp_path / "spans.jsonl"
        chrome_path = tmp_path / "trace.json"
        assert main(["trace", "fig6_chain", "--quick",
                     "--out", str(spans_path),
                     "--chrome", str(chrome_path)]) == 0
        out = capsys.readouterr().out
        assert "Packet trace" in out
        from repro.obs.trace import read_spans, spans_from_chrome

        spans = read_spans(str(spans_path))
        assert spans
        doc = json.loads(chrome_path.read_text())
        restored = spans_from_chrome(doc)
        canon = lambda rows: sorted(
            json.dumps(dict(sorted(r.items())), sort_keys=True)
            for r in rows)
        assert canon(restored) == canon(spans)

    def test_trace_json_summary(self, capsys, tmp_path):
        spans_path = tmp_path / "spans.jsonl"
        assert main(["trace", "fig6_chain", "--quick", "--variant", "FIFO",
                     "--out", str(spans_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["variant"] == "FIFO"
        assert payload["spans"] > 0

    def test_trace_unknown_scenario(self, capsys):
        assert main(["trace", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_trace_unknown_variant(self, capsys, tmp_path):
        assert main(["trace", "fig6_chain", "--variant", "NOPE",
                     "--out", str(tmp_path / "s.jsonl")]) == 2
        assert "unknown variant" in capsys.readouterr().err


class TestPerfCommand:
    def test_perf_prints_datapath_variant(self, capsys):
        assert main(["perf", "--packets", "500", "--event-queue", "wheel",
                     "--batch-limit", "4"]) == 0
        out = capsys.readouterr().out
        assert "queue=wheel" in out
        assert "batch_limit=4" in out
        assert "fused kernels" in out

    def test_perf_json_records_datapath_knobs(self, capsys):
        assert main(["perf", "--packets", "500", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["event_queue"] == "heap"
        assert payload["batch_limit"] == 32
        assert payload["delivered"] >= 495

    def test_perf_rejects_unknown_event_queue(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["perf", "--event-queue", "splay"])
        assert excinfo.value.code == 2


class TestCampaignStatusCommand:
    def test_status_of_finished_store(self, capsys, tmp_path, cli_campaign):
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "store"
        assert payload["state"] == "done"
        assert payload["done"] == payload["total"] == 1
        # The sidecar's counters converge with the store's records.
        assert payload["store_records"] == 1
        assert payload["store_ok"] == 1

    def test_status_of_queue_dir(self, capsys, tmp_path, cli_campaign):
        queue_dir = tmp_path / "q"
        assert main(["campaign", "serve", "cli_probe", "--quick",
                     "--queue", str(queue_dir)]) == 0
        assert main(["campaign", "work", "--queue", str(queue_dir),
                     "--executor", "alice"]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", str(queue_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "queue"
        assert payload["state"] == "done"
        assert payload["done"] == payload["total"] == 1
        assert payload["executors"][0]["executor"] == "alice"

    def test_status_human_rendering(self, capsys, tmp_path, cli_campaign):
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Campaign status" in out
        assert "done" in out

    def test_status_missing_target(self, capsys, tmp_path):
        assert main(["campaign", "status",
                     str(tmp_path / "missing.jsonl")]) == 2
        assert "no progress sidecar" in capsys.readouterr().err

    def test_status_store_without_sidecar_falls_back_to_counts(
            self, capsys, tmp_path, cli_campaign):
        import os

        store = tmp_path / "store.jsonl"
        assert main(["campaign", "run", "cli_probe", "--quick",
                     "--store", str(store)]) == 0
        os.remove(str(store) + ".progress")
        capsys.readouterr()
        assert main(["campaign", "status", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["state"] == "no-progress-file"
        assert payload["store_records"] == 1
