"""End-to-end: a hierarchy programmed *entirely* in the transaction language.

The strongest programmability claim is that the Figure 3/Figure 4 hierarchies
can be expressed as program text only — no hand-written transaction classes —
and still produce the paper's bandwidth shares on the simulated switch.
These tests rebuild HPFQ and Hierarchies-with-Shaping from
:mod:`repro.lang.programs` sources and compare against both the expected
shares and the hand-written trees.
"""

from __future__ import annotations

import pytest

from repro.algorithms import build_fig3_tree
from repro.core import Packet, ProgrammableScheduler
from repro.lang.trees import (
    build_fig3_tree_from_programs,
    build_fig4_tree_from_programs,
)
from repro.metrics import max_share_error
from repro.sim import OutputPort, PacketSource, Simulator
from repro.traffic import FlowSpec, cbr_arrivals, merge_arrivals

LINK_RATE = 100e6
DURATION = 0.05
FIG3_EXPECTED = {"A": 0.03, "B": 0.07, "C": 0.36, "D": 0.54}


def run_port(tree, rates, duration=DURATION):
    sim = Simulator()
    scheduler = ProgrammableScheduler(tree)
    port = OutputPort(sim, scheduler, rate_bps=LINK_RATE, name="port0")
    streams = [
        cbr_arrivals(FlowSpec(name=flow, rate_bps=rate, packet_size=1500), duration)
        for flow, rate in rates.items()
        if rate > 0
    ]
    PacketSource(sim, port, merge_arrivals(*streams))
    sim.run(until=duration)
    return port


class TestHPFQFromPrograms:
    def test_shares_match_figure3(self):
        port = run_port(
            build_fig3_tree_from_programs(),
            {flow: LINK_RATE for flow in "ABCD"},
        )
        shares = port.sink.share_by_flow(start=0.01, end=DURATION)
        assert max_share_error(shares, FIG3_EXPECTED) < 0.03

    def test_departure_order_matches_hand_written_tree(self):
        """On a deterministic backlogged workload the program-built tree and
        the hand-written tree produce the same departure sequence."""
        prog_sched = ProgrammableScheduler(build_fig3_tree_from_programs())
        hand_sched = ProgrammableScheduler(build_fig3_tree())
        for round_index in range(25):
            for flow in "ABCD":
                prog_sched.enqueue(Packet(flow=flow, length=1500))
                hand_sched.enqueue(Packet(flow=flow, length=1500))
        prog_order = [packet.flow for packet in prog_sched.drain()]
        hand_order = [packet.flow for packet in hand_sched.drain()]
        assert prog_order == hand_order

    def test_tree_validates_and_reports_structure(self):
        tree = build_fig3_tree_from_programs()
        assert tree.depth() == 2
        assert {node.name for node in tree.leaves()} == {"Left", "Right"}
        description = tree.describe()
        assert "stfq" in description


class TestShapedHierarchyFromPrograms:
    def test_right_class_capped_at_10mbps(self):
        port = run_port(
            build_fig4_tree_from_programs(),
            {"A": 30e6, "B": 30e6, "C": 40e6, "D": 40e6},
            duration=0.1,
        )
        right = sum(
            port.sink.throughput_bps(flow=flow, start=0.02, end=0.1) for flow in "CD"
        )
        left = sum(
            port.sink.throughput_bps(flow=flow, start=0.02, end=0.1) for flow in "AB"
        )
        assert right <= 10e6 * 1.2
        assert right >= 10e6 * 0.6
        assert left >= 55e6

    def test_compiled_and_interpreted_trees_schedule_identically(self):
        """The lang backend must be invisible to the scheduler: the compiled
        tree and the interpreter-forced tree emit the same departures."""
        compiled_sched = ProgrammableScheduler(
            build_fig3_tree_from_programs(backend="compiled")
        )
        interpreted_sched = ProgrammableScheduler(
            build_fig3_tree_from_programs(backend="interpreted")
        )
        for round_index in range(25):
            for flow in "ABCD":
                compiled_sched.enqueue(Packet(flow=flow, length=1500))
                interpreted_sched.enqueue(Packet(flow=flow, length=1500))
        compiled_order = [p.flow for p in compiled_sched.drain()]
        interpreted_order = [p.flow for p in interpreted_sched.drain()]
        assert compiled_order == interpreted_order

    def test_shaper_defers_elements(self):
        scheduler = ProgrammableScheduler(build_fig4_tree_from_programs())
        # A burst of Right-class packets beyond the burst allowance must be
        # held back by the shaping program.
        for _ in range(6):
            scheduler.enqueue(Packet(flow="C", length=1500), now=0.0)
        immediately = scheduler.drain(now=0.0)
        assert len(immediately) < 6
        assert scheduler.next_shaping_release() is not None
        later = scheduler.drain_timed(until=10.0)
        assert len(immediately) + len(later) == 6
