"""Lockstep equivalence: telemetry must be pure observability.

The ``telemetry=`` flag threaded through :class:`~repro.net.Fabric`,
:meth:`~repro.net.Scenario.run` and the campaign engine strips per-hop
traces (``packet.hops``), per-port switch-stat breakdowns and the tracked
buffer-occupancy maps from the forwarding hot path.  These tests pin the
contract that makes it safe to run sweeps with telemetry off: a
telemetry-off run produces the *identical* packet departure order and the
identical :class:`~repro.net.scenario.ScenarioResult` aggregates as the
telemetry-on run — only the hops / per-port observability fields differ.

``prev_wait_time`` is deliberately *not* telemetry: it is in-band data the
paper's LSTF transaction consumes (Section 3.1), so it stays stamped in
both modes — asserted here via fig6_chain, where disabling it would change
LSTF's scheduling decisions and fail the comparison.
"""

from __future__ import annotations

import pytest

from repro.algorithms import FIFOTransaction
from repro.core import ProgrammableScheduler, single_node_tree
from repro.core.packet import Packet
from repro.net import Demand, Fabric, Scenario, get_scenario, linear_chain
from repro.sim import Simulator


def fifo_factory(switch, port):
    return ProgrammableScheduler(single_node_tree(FIFOTransaction()))


def _strip_observability(result):
    """ScenarioResult fields that must match across telemetry modes."""
    return {
        "conservation": result.conservation,
        "flow_stats": result.flow_stats,
        "fct": result.fct,
        "fct_short": result.fct_short,
        "duration": result.duration,
        # per-node aggregates must match; per_port is telemetry-only.
        "node_aggregates": {
            node: {key: value for key, value in stats.items()
                   if key != "per_port"}
            for node, stats in result.stats_by_node.items()
        },
    }


class TestFabricLockstep:
    def _run(self, telemetry):
        sim = Simulator()
        fabric = Fabric(sim, linear_chain(3, link_rate_bps=1e7),
                        fifo_factory, telemetry=telemetry)
        arrivals = [
            (i * 0.0005, Packet(flow=f"f{i % 3}", length=700, dst="h_dst"))
            for i in range(60)
        ]
        fabric.attach_source("h_src", arrivals)
        fabric.run(drain=True)
        return fabric

    def test_departure_order_identical(self):
        on = self._run(telemetry=True)
        off = self._run(telemetry=False)
        sink_on = on.sink("h_dst")
        sink_off = off.sink("h_dst")
        assert sink_on.departure_order() == sink_off.departure_order()
        assert ([p.departure_time for p in sink_on.packets]
                == [p.departure_time for p in sink_off.packets])
        assert on.conservation_check() == off.conservation_check()

    def test_hops_recorded_only_with_telemetry(self):
        on = self._run(telemetry=True)
        off = self._run(telemetry=False)
        packet_on = on.sink("h_dst").packets[0]
        packet_off = off.sink("h_dst").packets[0]
        assert [hop[0] for hop in packet_on.hops] == ["h_src", "s1", "s2", "s3"]
        assert packet_off.hops == []

    def test_wait_time_stamped_in_both_modes(self):
        # prev_wait_time is in-band data (LSTF input), not telemetry.
        on = self._run(telemetry=True)
        off = self._run(telemetry=False)
        stamped_on = [p.get("prev_wait_time") for p in on.sink("h_dst").packets]
        stamped_off = [p.get("prev_wait_time") for p in off.sink("h_dst").packets]
        assert stamped_on == stamped_off
        assert all(value is not None for value in stamped_on)

    def test_per_port_stats_only_with_telemetry(self):
        on = self._run(telemetry=True)
        off = self._run(telemetry=False)
        stats_on = on.stats_by_node()
        stats_off = off.stats_by_node()
        assert stats_on["s1"]["per_port"]
        assert stats_off["s1"]["per_port"] == {}
        for node in stats_on:
            for key in ("received", "transmitted", "dropped_admission",
                        "dropped_scheduler"):
                assert stats_on[node][key] == stats_off[node][key]


class TestScenarioLockstep:
    @pytest.mark.parametrize("scenario_name", ["fig6_chain", "leaf_spine_fct"])
    def test_builtin_scenarios_identical_without_telemetry(self, scenario_name):
        scenario = get_scenario(scenario_name)
        with_telemetry = scenario.run(quick=True, telemetry=True)
        without_telemetry = scenario.run(quick=True, telemetry=False)
        assert set(with_telemetry) == set(without_telemetry)
        for variant in with_telemetry:
            assert (_strip_observability(with_telemetry[variant])
                    == _strip_observability(without_telemetry[variant])), (
                f"{scenario_name}/{variant} diverged with telemetry off"
            )

    def test_synthetic_scenario_identical_without_telemetry(self):
        scenario = Scenario(
            name="lockstep_tiny",
            title="lockstep tiny",
            topology=lambda: linear_chain(2, link_rate_bps=2e6),
            demands=[
                Demand(src="h_src", dst="h_dst", kind="poisson",
                       rate_bps=1.2e6, packet_size=500, flow="p"),
                Demand(src="h_src", dst="h_dst", kind="cbr",
                       rate_bps=4e5, packet_size=300, flow="c"),
            ],
            variants={"FIFO": fifo_factory},
            duration=0.2,
        )
        on = scenario.run(telemetry=True)["FIFO"]
        off = scenario.run(telemetry=False)["FIFO"]
        assert _strip_observability(on) == _strip_observability(off)
        assert on.delivered() > 0


class TestSwitchBurstLockstep:
    def _burst_switch(self, telemetry):
        from repro.switch import SharedMemorySwitch

        sim = Simulator()
        switch = SharedMemorySwitch(
            sim,
            lambda port: ProgrammableScheduler(
                single_node_tree(FIFOTransaction())),
            port_count=1, port_rate_bps=1e8, telemetry=telemetry,
        )
        accepted = switch.receive_many(
            [Packet(flow=f"f{i % 3}", length=400 + 100 * (i % 5))
             for i in range(40)],
            "port0",
        )
        sim.run()
        return switch, accepted

    def test_receive_many_service_order_identical(self):
        on, accepted_on = self._burst_switch(telemetry=True)
        off, accepted_off = self._burst_switch(telemetry=False)
        assert accepted_on == accepted_off == 40
        order_on = on.port("port0").sink.departure_order()
        order_off = off.port("port0").sink.departure_order()
        assert order_on == order_off
        assert on.stats.transmitted == off.stats.transmitted
        assert on.buffer.used_cells == off.buffer.used_cells == 0
