"""Warm-worker campaign execution engine: persistent pools, batch leases.

The original pool path in :mod:`repro.campaign.runner` lost to serial
execution on short runs (``speedup_max_workers_vs_serial < 1`` in
``BENCH_campaign.json``): every task paid a pickle/IPC round trip, every
fresh pool paid imports, and every worker re-compiled the tree kernels its
first runs needed.  :class:`WarmWorkerEngine` removes all three costs:

* **Warm workers.**  The pool is *persistent* — created once, reused across
  any number of campaign executions — and each worker's initializer imports
  :mod:`repro`, registers the scenario catalogue and **pre-warms the
  tree-kernel cache** for the campaign's factor space (every
  scenario x variant x PIFO backend x lang backend shape is compiled
  before the first lease arrives).  All of that is *cold-start* cost, paid
  once and measured separately from sweep throughput.

* **Batch leases, adaptively sized.**  Workers lease contiguous *batches*
  of RunSpecs instead of single runs.  The lease size adapts to the
  observed per-run wall clock (exponential moving average, persisted
  across campaigns on the same engine): short runs get large leases so the
  per-task IPC cost amortises away, long runs get small leases so the pool
  stays load-balanced.  The cyclic GC is suspended for the duration of a
  lease (the simulation substrate is reference-count clean) and re-enabled
  between leases.

* **Compact encoded result rows.**  Workers return each record already
  encoded as its canonical JSONL store line (plus a tiny
  ``(run_id, status, attempts)`` header tuple), so the parent appends raw
  bytes via :meth:`ResultStore.append_line` — the record is serialised
  exactly once, in parallel, and never re-encoded or deep-pickled.

Ordering and failure semantics are unchanged from the classic runner:
leases are committed in run-table order (a ``workers=N`` store is
byte-identical to serial modulo the timing fields), per-run failures come
back as structured records, and a dead or wedged worker trips the lease
watchdog so the caller can degrade to crash-isolated execution.
"""

from __future__ import annotations

import gc
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import merge_counts
from .spec import Campaign, RunSpec
from .store import encode_record
from .runner import (
    DEFAULT_WATCHDOG_RUN_S,
    WorkerPolicy,
    _start_method,
    execute_spec_guarded,
)

#: Target wall-clock seconds per lease.  Large enough that the per-lease
#: IPC round trip (~1 ms) is noise, small enough that a pool never idles
#: behind one long lease.
DEFAULT_TARGET_LEASE_S = 0.5

#: Hard cap on runs per lease, whatever the EMA says.
MAX_LEASE_RUNS = 64

#: Leases kept in flight per worker.  Two: one executing, one queued, so a
#: worker never waits on the parent between leases.
LEASES_PER_WORKER = 2


@dataclass(frozen=True)
class WarmupSpec:
    """What the worker initializer pre-warms: the campaign's factor space.

    Built from a :class:`Campaign` with :meth:`for_campaign`; shipped to
    workers as plain tuples so it pickles under any start method.
    """

    scenarios: Tuple[str, ...] = ()
    #: Variant labels to warm; empty = every variant of each scenario.
    variants: Tuple[str, ...] = ()
    pifo_backends: Tuple[Optional[str], ...] = (None,)
    lang_backends: Tuple[Optional[str], ...] = (None,)

    @classmethod
    def for_campaign(cls, campaign: Campaign) -> "WarmupSpec":
        return cls(
            scenarios=tuple(campaign.scenarios),
            variants=tuple(campaign.variants or ()),
            pifo_backends=tuple(campaign.pifo_backends),
            lang_backends=tuple(campaign.lang_backends),
        )

    def to_dict(self) -> Dict:
        return {
            "scenarios": list(self.scenarios),
            "variants": list(self.variants),
            "pifo_backends": list(self.pifo_backends),
            "lang_backends": list(self.lang_backends),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "WarmupSpec":
        return cls(
            scenarios=tuple(data["scenarios"]),
            variants=tuple(data["variants"]),
            pifo_backends=tuple(data["pifo_backends"]),
            lang_backends=tuple(data["lang_backends"]),
        )


def warm_kernel_cache(warmup: WarmupSpec) -> Dict[str, int]:
    """Compile every tree-kernel shape the campaign's runs will need.

    Instantiates one scheduler per (scenario, variant, PIFO backend, lang
    backend) combination — :class:`ProgrammableScheduler` compiles and
    caches its fused kernel at construction — so the first *run* a worker
    executes hits a fully warm cache instead of paying kernel generation
    inside the measured sweep.  Shapes dedupe in the cache, so the cost is
    one compile per distinct shape, not per combination.

    Returns :func:`repro.lang.treekernel.kernel_cache_info` after warming.
    """
    from ..lang.treekernel import kernel_cache_info
    from ..net import get_scenario

    for name in warmup.scenarios:
        scenario = get_scenario(name)
        labels = warmup.variants or tuple(scenario.variants)
        for label in labels:
            if label not in scenario.variants:
                continue
            for lang_backend in (warmup.lang_backends or (None,)):
                try:
                    factory = scenario.scheduler_factory(label, lang_backend)
                except KeyError:
                    continue  # scenario has no program twin for this label
                for pifo_backend in (warmup.pifo_backends or (None,)):
                    scheduler = factory("warm", "port0")
                    if (pifo_backend is not None
                            and hasattr(scheduler, "use_backend")):
                        scheduler.use_backend(pifo_backend)
    return kernel_cache_info()


# --------------------------------------------------------------------------- #
# Worker side                                                                  #
# --------------------------------------------------------------------------- #

#: Installed by the initializer; module global keeps the lease entry point a
#: picklable top-level function.
_LEASE_POLICY = WorkerPolicy()


def _engine_worker_init(policy_dict: Optional[Dict],
                        warmup_dict: Optional[Dict]) -> None:
    """Pool initializer: import, register, pre-warm — once per worker.

    Everything here is cold-start cost the leases never see: the
    :mod:`repro.net` import populates the scenario registry, and
    :func:`warm_kernel_cache` compiles the campaign's kernel shapes.
    """
    from .. import net  # noqa: F401  (side effect: scenario registry)

    net.list_scenarios()
    if policy_dict is not None:
        global _LEASE_POLICY
        _LEASE_POLICY = WorkerPolicy.from_dict(policy_dict)
    if warmup_dict is not None:
        warm_kernel_cache(WarmupSpec.from_dict(warmup_dict))
    # The warm heap (imports, registries, compiled kernels) is permanent:
    # freeze it out of the collector's scan set, then raise the gen-0
    # threshold so simulation churn triggers a handful of collections per
    # sweep instead of hundreds.  Cycle collection stays enabled — a
    # long-lived pool must not leak cyclic garbage — it just stops paying
    # rent on objects that will never die.
    gc.collect()
    gc.freeze()
    gc.set_threshold(50_000, 20, 20)


def _engine_ping(_: int) -> int:
    """No-op task: completing one proves this worker's initializer ran."""
    return os.getpid()


def _execute_lease(start: int, payloads: List[Dict]) -> Tuple:
    """Execute one lease of runs; return compact encoded rows.

    The hot path is reference-count clean, and the initializer already
    froze the warm heap and widened the collector thresholds, so the
    lease body is just the runs — no per-lease GC ceremony.

    Returns ``(start, rows, elapsed_s, pid, kernel_info)`` where each row
    is ``(run_id, status, attempts, line)`` and ``line`` is the record's
    canonical JSONL store line — the parent appends it verbatim.
    """
    from ..lang.treekernel import kernel_cache_info

    started = time.perf_counter()
    rows = []
    for payload in payloads:
        record = execute_spec_guarded(RunSpec.from_dict(payload),
                                      _LEASE_POLICY)
        rows.append((record["run_id"], record["status"],
                     record.get("attempts", 1), encode_record(record)))
    elapsed = time.perf_counter() - started
    return (start, rows, elapsed, os.getpid(), kernel_cache_info())


# --------------------------------------------------------------------------- #
# Parent side                                                                  #
# --------------------------------------------------------------------------- #
class EngineBroken(Exception):
    """The pool stalled or died; ``committed`` runs made it to the store."""

    def __init__(self, reason: str, committed: int) -> None:
        super().__init__(reason)
        self.reason = reason
        self.committed = committed


@dataclass
class _Lease:
    start: int
    size: int
    result: object  # multiprocessing.pool.AsyncResult


@dataclass
class EngineStats:
    """Observability counters the engine accumulates across executions."""

    leases: int = 0
    runs: int = 0
    #: EMA of per-run wall clock (drives adaptive lease sizing).
    mean_run_s: Optional[float] = None
    #: Wall clock spent creating + warming the pool (cold-start cost).
    cold_start_s: float = 0.0
    #: Latest kernel-cache counters per worker pid.
    kernel_by_pid: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def kernel_cache_totals(self) -> Dict[str, int]:
        """Kernel cache counters summed across the pool's workers."""
        totals = merge_counts(self.kernel_by_pid.values())
        totals["workers"] = len(self.kernel_by_pid)
        return totals


class WarmWorkerEngine:
    """A persistent, pre-warmed worker pool that leases batches of runs.

    Create once, call :meth:`execute` any number of times (the pool and
    its warm caches persist between calls), then :meth:`close`.  Also a
    context manager.

    Parameters
    ----------
    workers:
        Worker processes in the pool.
    policy:
        :class:`~repro.campaign.runner.WorkerPolicy` applied to every run
        (timeouts, retry, backoff) — same semantics as the classic runner.
    warmup:
        Factor space whose kernel shapes each worker pre-compiles in its
        initializer (see :class:`WarmupSpec`).  ``None`` skips kernel
        pre-warming (imports and scenario registration still happen).
    target_lease_s:
        Wall-clock size leases adapt towards.
    """

    def __init__(
        self,
        workers: int,
        policy: Optional[WorkerPolicy] = None,
        warmup: Optional[WarmupSpec] = None,
        target_lease_s: float = DEFAULT_TARGET_LEASE_S,
        max_lease_runs: int = MAX_LEASE_RUNS,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        #: Requested worker count, capped at the machine's cores: the
        #: runs are CPU-bound simulations, so oversubscribing past the
        #: core count buys only context-switch thrash (on a 1-core box a
        #: 4-worker pool *loses* to serial; one warm worker beats it).
        self.workers = max(1, min(workers, os.cpu_count() or workers))
        self.policy = policy or WorkerPolicy()
        self.warmup = warmup
        self.target_lease_s = target_lease_s
        self.max_lease_runs = max_lease_runs
        self.stats = EngineStats()
        self._pool = None

    # -- lifecycle ---------------------------------------------------------
    def warm(self) -> float:
        """Ensure the pool exists and every initializer has finished.

        Returns the cumulative cold-start seconds (pool creation, imports,
        scenario registration, kernel pre-warming).  Idempotent: a warm
        pool returns immediately.
        """
        if self._pool is None:
            started = time.perf_counter()
            # Warm the parent too: under fork every worker inherits the
            # imported scenario registry instead of rebuilding it.
            _engine_worker_init(None, None)
            context = multiprocessing.get_context(_start_method())
            warmup_dict = (self.warmup.to_dict()
                           if self.warmup is not None else None)
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_engine_worker_init,
                initargs=(self.policy.to_dict(), warmup_dict),
            )
            # A barrier of no-op tasks: the pool spawns all workers up
            # front and each runs its initializer before its first task,
            # so once these complete every worker is warm.
            self._pool.map(_engine_ping, range(self.workers * 2),
                           chunksize=1)
            self.stats.cold_start_s += time.perf_counter() - started
        return self.stats.cold_start_s

    def close(self) -> None:
        """Shut the pool down (gracefully when healthy)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WarmWorkerEngine":
        self.warm()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        specs: Sequence[RunSpec],
        commit: Callable[[Dict, Optional[str]], None],
        heartbeat: Optional[Callable[[int], None]] = None,
    ) -> int:
        """Run every spec through the pool; commit records in table order.

        ``commit(record, line)`` is called once per run, in run-table
        order, with the decoded record *and* its pre-encoded canonical
        store line (append the line, not a re-serialisation).  Returns the
        number of committed runs.

        ``heartbeat`` (if given) is called with the number of runs
        currently leased out whenever the in-flight set changes — the
        live-status sidecar hangs off this so an operator can watch a
        long lease make progress before any record commits.

        Raises :class:`EngineBroken` — with the committed count — when the
        pool stalls beyond the lease watchdog budget (dead or wedged
        worker); the caller decides how to execute the remainder.  Any
        exception out of ``commit`` (failure-budget aborts) and
        ``KeyboardInterrupt`` tear the pool down and propagate; the engine
        rebuilds it lazily on the next call.
        """
        self.warm()
        payloads = [spec.to_dict() for spec in specs]
        total = len(payloads)
        next_submit = 0
        committed = 0
        inflight: List[_Lease] = []
        ready: Dict[int, Tuple] = {}
        try:
            while committed < total:
                while (next_submit < total
                       and len(inflight) < self.workers * LEASES_PER_WORKER):
                    size = self._lease_size(total - next_submit)
                    batch = payloads[next_submit:next_submit + size]
                    result = self._pool.apply_async(
                        _execute_lease, (next_submit, batch))
                    inflight.append(_Lease(next_submit, size, result))
                    next_submit += size
                if heartbeat is not None:
                    heartbeat(sum(lease.size for lease in inflight))
                head = inflight[0]
                try:
                    outcome = head.result.get(timeout=self._budget(inflight))
                except multiprocessing.TimeoutError:
                    # The pool's result pipeline is stalled for good: a
                    # worker died mid-lease (its task is never re-queued)
                    # or is wedged beyond every per-run bound.
                    self._teardown()
                    raise EngineBroken(
                        "lease watchdog expired: worker died or wedged",
                        committed,
                    ) from None
                inflight.pop(0)
                self._observe(outcome)
                ready[outcome[0]] = outcome
                while committed in ready:
                    start, rows, *_ = ready.pop(committed)
                    for run_id, status, attempts, line in rows:
                        commit(json.loads(line), line)
                        committed += 1
            return committed
        except BaseException:
            # Failure-budget abort / Ctrl-C: kill outstanding leases and
            # reap the workers.  The next execute() re-warms lazily.
            self._teardown()
            raise

    def _teardown(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # -- adaptive sizing & watchdog ---------------------------------------
    def _lease_size(self, remaining: int) -> int:
        """Runs in the next lease, adapted to the observed per-run cost."""
        mean = self.stats.mean_run_s
        if mean is None:
            # No observations yet: small first wave, so the EMA learns the
            # per-run cost without serialising the whole table behind one
            # blind guess.
            size = max(1, min(4, remaining // (self.workers * 4)))
        elif mean <= 0:
            size = self.max_lease_runs
        else:
            size = int(self.target_lease_s / mean) or 1
        # Never leave workers idle at the tail: cap leases so the
        # remaining runs still spread across the pool.
        fair = max(1, -(-remaining // self.workers))  # ceil division
        return max(1, min(size, self.max_lease_runs, fair))

    def _budget(self, inflight: List[_Lease]) -> float:
        """Watchdog seconds to wait on the head lease while healthy.

        Covers every in-flight run (the head lease may be queued behind
        others on a busy pool) at the worst-case per-run bound, doubled
        for scheduler noise.
        """
        per_run = self.policy.timeout_s or DEFAULT_WATCHDOG_RUN_S
        per_run = (per_run + self.policy.backoff_s
                   * self.policy.max_attempts) * self.policy.max_attempts
        runs = sum(lease.size for lease in inflight)
        return 2.0 * per_run * max(1, runs) / max(1, self.workers) + 5.0

    def _observe(self, outcome: Tuple) -> None:
        """Fold one lease's telemetry into the engine stats."""
        start, rows, elapsed, pid, kernel_info = outcome
        self.stats.leases += 1
        self.stats.runs += len(rows)
        self.stats.kernel_by_pid[pid] = kernel_info
        if rows:
            per_run = elapsed / len(rows)
            if self.stats.mean_run_s is None:
                self.stats.mean_run_s = per_run
            else:
                self.stats.mean_run_s += 0.4 * (per_run
                                                - self.stats.mean_run_s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "warm" if self._pool is not None else "cold"
        return (f"WarmWorkerEngine(workers={self.workers}, {state}, "
                f"runs={self.stats.runs}, leases={self.stats.leases})")
