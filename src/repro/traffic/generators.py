"""Arrival-stream generators.

Each generator yields ``(time, packet)`` pairs in non-decreasing time order,
ready to feed a :class:`~repro.sim.source.PacketSource`.  All randomised
generators take an explicit seed; identical seeds reproduce identical
workloads.

Generators provided:

* :func:`cbr_arrivals` — constant bit rate (evenly spaced packets).
* :func:`poisson_arrivals` — Poisson packet arrivals at a mean rate.
* :func:`onoff_arrivals` — bursty on/off source (exponential on/off periods,
  CBR while on), the classic way to stress shaping and Stop-and-Go.
* :func:`backlogged_arrivals` — a large burst at t=0, the paper's standard
  "all flows are backlogged" overload scenario.
* :func:`flow_arrivals` — a sequence of finite flows whose sizes come from a
  flow-size distribution (heavy-tailed by default) and whose packets carry
  the SJF/SRPT/LAS metadata, for the flow-completion-time experiments.
* :func:`merge_arrivals` — deterministic merge of several streams.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.packet import Packet
from ..exceptions import TrafficError
from .distributions import EmpiricalCDF, web_search_flow_sizes
from .flows import FlowSpec

Arrival = Tuple[float, Packet]


def _packet_from_spec(spec: FlowSpec, extra_fields: Optional[Dict[str, Any]] = None) -> Packet:
    # Packets without metadata share the immutable empty mapping (fields=None)
    # instead of allocating a dict each — see repro.core.packet.
    if extra_fields:
        fields = dict(spec.fields)
        fields.update(extra_fields)
    elif spec.fields:
        fields = dict(spec.fields)
    else:
        fields = None
    return Packet.acquire(
        flow=spec.name,
        length=spec.packet_size,
        packet_class=spec.packet_class,
        priority=spec.priority,
        fields=fields,
        src=spec.src,
        dst=spec.dst,
    )


def cbr_arrivals(spec: FlowSpec, duration: float) -> Iterator[Arrival]:
    """Constant-bit-rate arrivals: one packet every ``size*8/rate`` seconds.

    Packets arrive over the half-open interval ``[start, start + duration)``;
    arrival times are computed as ``start + i * interval`` (not accumulated)
    so long workloads do not drift.
    """
    if spec.rate_bps <= 0:
        return
    interval = spec.packet_size * 8.0 / spec.rate_bps
    end = spec.start_time + duration if spec.end_time is None else min(
        spec.end_time, spec.start_time + duration
    )
    index = 0
    while True:
        time = spec.start_time + index * interval
        if time >= end - 1e-15:
            return
        yield time, _packet_from_spec(spec)
        index += 1


def poisson_arrivals(spec: FlowSpec, duration: float, seed: int = 0) -> Iterator[Arrival]:
    """Poisson arrivals with mean rate ``spec.rate_bps``."""
    if spec.rate_bps <= 0:
        return
    rng = random.Random(seed)
    mean_interval = spec.packet_size * 8.0 / spec.rate_bps
    time = spec.start_time
    end = spec.start_time + duration if spec.end_time is None else min(
        spec.end_time, spec.start_time + duration
    )
    while True:
        time += rng.expovariate(1.0 / mean_interval)
        if time > end:
            return
        yield time, _packet_from_spec(spec)


def onoff_arrivals(
    spec: FlowSpec,
    duration: float,
    mean_on_s: float = 0.01,
    mean_off_s: float = 0.01,
    seed: int = 0,
) -> Iterator[Arrival]:
    """Bursty on/off arrivals: CBR at ``spec.rate_bps`` during on periods.

    On and off period lengths are exponentially distributed with the given
    means, so the long-run average rate is
    ``rate_bps * mean_on / (mean_on + mean_off)``.
    """
    if mean_on_s <= 0 or mean_off_s <= 0:
        raise TrafficError("on/off period means must be positive")
    if spec.rate_bps <= 0:
        return
    rng = random.Random(seed)
    interval = spec.packet_size * 8.0 / spec.rate_bps
    time = spec.start_time
    end = spec.start_time + duration
    while time < end:
        on_until = time + rng.expovariate(1.0 / mean_on_s)
        while time < min(on_until, end):
            yield time, _packet_from_spec(spec)
            time += interval
        time = min(on_until, end) + rng.expovariate(1.0 / mean_off_s)


def backlogged_arrivals(
    spec: FlowSpec,
    packet_count: int,
    spacing: float = 0.0,
) -> Iterator[Arrival]:
    """A burst of ``packet_count`` packets starting at ``spec.start_time``.

    With ``spacing == 0`` all packets arrive in the same instant — the
    "continuously backlogged flow" setting used by the fairness examples.
    """
    if packet_count < 0:
        raise TrafficError("packet_count must be non-negative")
    for i in range(packet_count):
        yield spec.start_time + i * spacing, _packet_from_spec(spec)


def flow_arrivals(
    flow_name_prefix: str,
    load_bps: float,
    duration: float,
    size_distribution: Optional[EmpiricalCDF] = None,
    packet_size: int = 1500,
    seed: int = 0,
    packet_class: Optional[str] = None,
    tag_fields: bool = True,
    src: Optional[str] = None,
    dst: Optional[str] = None,
) -> Iterator[Arrival]:
    """Finite flows arriving as a Poisson process, sizes from a distribution.

    Flow inter-arrival times are chosen so the offered load equals
    ``load_bps``.  Each flow's packets arrive back to back (source sends at
    line rate) and, when ``tag_fields`` is true, carry the metadata needed by
    the fine-grained priority schedulers:

    * ``flow_size`` — total size of the flow in bytes (SJF),
    * ``remaining_size`` — bytes left including this packet (SRPT),
    * ``attained_service`` — bytes already sent before this packet (LAS).
    """
    if load_bps <= 0 or duration <= 0:
        return
    rng = random.Random(seed)
    sizes = size_distribution or web_search_flow_sizes()
    mean_flow_bytes = sizes.mean()
    flow_rate = load_bps / (mean_flow_bytes * 8.0)  # flows per second
    time = 0.0
    for flow_index in itertools.count():
        time += rng.expovariate(flow_rate)
        if time > duration:
            return
        flow_bytes = max(int(sizes.sample(rng)), 1)
        flow_name = f"{flow_name_prefix}{flow_index}"
        remaining = flow_bytes
        sent = 0
        packet_index = 0
        while remaining > 0:
            this_size = min(packet_size, remaining)
            fields: Dict[str, Any] = {}
            if tag_fields:
                fields = {
                    "flow_size": flow_bytes,
                    "remaining_size": remaining,
                    "attained_service": sent,
                }
            yield time, Packet.acquire(
                flow=flow_name,
                length=this_size,
                packet_class=packet_class,
                fields=fields if tag_fields else None,
                src=src,
                dst=dst,
            )
            sent += this_size
            remaining -= this_size
            packet_index += 1


def merge_arrivals(*streams: Iterable[Arrival]) -> Iterator[Arrival]:
    """Merge several arrival streams into one, ordered by time.

    Ties preserve the argument order, keeping merged workloads deterministic.
    """
    counter = itertools.count()
    decorated = [
        ((time, index, next(counter)), packet)
        for index, stream in enumerate(streams)
        for time, packet in stream
    ]
    # heapq.merge would be lazier but requires each stream pre-sorted and
    # wrapped; the experiments are small enough that materialising is fine
    # and considerably simpler.
    decorated.sort(key=lambda item: item[0])
    for (time, _index, _seq), packet in decorated:
        yield time, packet


def lazy_merge_arrivals(*streams: Iterable[Arrival]) -> Iterator[Arrival]:
    """Streaming merge (no materialisation) for long-running workloads."""
    counter = itertools.count()

    def _decorate(index: int, stream: Iterable[Arrival]):
        for time, packet in stream:
            yield time, index, next(counter), packet

    merged = heapq.merge(*(_decorate(i, s) for i, s in enumerate(streams)))
    for time, _index, _seq, packet in merged:
        yield time, packet


def total_bytes(arrivals: Sequence[Arrival]) -> int:
    """Sum of packet lengths in an arrival list (workload sanity checks)."""
    return sum(packet.length for _time, packet in arrivals)
