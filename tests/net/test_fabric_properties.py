"""Property-based fabric tests: routing determinism, packet conservation,
and a multi-hop shaping regression.

The property suite generates random *connected* topologies (random hosts,
random switches, a random spanning tree plus extra chords) with random
traffic between host pairs, and checks the two invariants any fabric must
hold whatever the graph looks like:

* routing is deterministic — two fabrics built from the same topology
  deliver every flow over the identical node path;
* packets are conserved — delivered + dropped == injected once the fabric
  drains, and the per-node stats account for every transit.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import FIFOTransaction, TokenBucketShapingTransaction
from repro.core import (
    MatchAll,
    Packet,
    ProgrammableScheduler,
    ScheduleTree,
    TreeNode,
    single_node_tree,
)
from repro.net import Fabric, Network, linear_chain, path
from repro.sim import Simulator
from repro.traffic import FlowSpec, cbr_arrivals


def fifo_factory(switch, port):
    return ProgrammableScheduler(single_node_tree(FIFOTransaction()))


# --------------------------------------------------------------------------- #
# Random connected topology strategy                                          #
# --------------------------------------------------------------------------- #
@st.composite
def connected_topologies(draw):
    """A random connected Network with 2-4 hosts and 1-4 switches.

    Hosts attach only to switches; the switch core is a random spanning
    tree plus random extra chords, so multi-path graphs appear regularly.
    """
    num_switches = draw(st.integers(min_value=1, max_value=4))
    num_hosts = draw(st.integers(min_value=2, max_value=4))
    net = Network(name="random")
    switches = [f"s{i}" for i in range(num_switches)]
    for name in switches:
        net.add_switch(name)
    # Spanning tree over the switches.
    for index in range(1, num_switches):
        parent = draw(st.integers(min_value=0, max_value=index - 1))
        net.add_link(switches[parent], switches[index])
    # Extra chords between switches.
    for left in range(num_switches):
        for right in range(left + 1, num_switches):
            if switches[right] in net.links[switches[left]]:
                continue
            if draw(st.booleans()):
                net.add_link(switches[left], switches[right])
    hosts = [f"h{i}" for i in range(num_hosts)]
    for host in hosts:
        net.add_host(host)
        attach = draw(st.integers(min_value=0, max_value=num_switches - 1))
        net.add_link(host, switches[attach])
    return net


@st.composite
def topologies_with_traffic(draw):
    net = draw(connected_topologies())
    hosts = net.hosts()
    pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(hosts), st.sampled_from(hosts)),
            min_size=1,
            max_size=4,
        ).filter(lambda ps: all(a != b for a, b in ps))
    )
    packet_counts = [draw(st.integers(min_value=1, max_value=20))
                     for _ in pairs]
    return net, list(zip(pairs, packet_counts))


class TestFabricProperties:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(topologies_with_traffic())
    def test_random_topologies_conserve_packets(self, case):
        net, traffic = case
        sim = Simulator()
        fabric = Fabric(sim, net, fifo_factory, ecmp=True)
        total = 0
        for index, ((src, dst), count) in enumerate(traffic):
            arrivals = [
                (i * 1e-5, Packet(flow=f"f{index}", length=500, dst=dst))
                for i in range(count)
            ]
            fabric.attach_source(src, arrivals)
            total += count
        fabric.run(drain=True)
        conservation = fabric.conservation_check()
        assert conservation["injected"] == total
        assert conservation["in_flight"] == 0
        assert (conservation["delivered"] + conservation["dropped"]
                == conservation["injected"])

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(topologies_with_traffic())
    def test_random_topologies_route_deterministically(self, case):
        net, traffic = case

        def run_once():
            sim = Simulator()
            fabric = Fabric(sim, net, fifo_factory, ecmp=True)
            probes = []
            for index, ((src, dst), count) in enumerate(traffic):
                packets = [Packet(flow=f"f{index}", length=500, dst=dst)
                           for i in range(count)]
                fabric.attach_source(
                    src, [(i * 1e-5, p) for i, p in enumerate(packets)]
                )
                probes.extend(packets)
            fabric.run(drain=True)
            return [tuple(hop[0] for hop in p.hops) for p in probes]

        first, second = run_once(), run_once()
        assert first == second
        # Every packet of one flow takes one path (ECMP never splits flows).
        for flow_paths in _group(first, traffic):
            assert len(set(flow_paths)) <= 1

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(connected_topologies())
    def test_routes_follow_shortest_paths(self, net):
        hosts = net.hosts()
        src, dst = hosts[0], hosts[1]
        sim = Simulator()
        fabric = Fabric(sim, net, fifo_factory, ecmp=False)
        packet = Packet(flow="probe", length=500, dst=dst)
        fabric.attach_source(src, [(0.0, packet)])
        fabric.run(drain=True)
        traversed = [hop[0] for hop in packet.hops] + [dst]
        assert traversed == path(net, src, dst)


def _group(paths, traffic):
    """Split the flat per-packet path list back into per-flow groups."""
    groups = []
    cursor = 0
    for (_pair, count) in traffic:
        groups.append(paths[cursor:cursor + count])
        cursor += count
    return groups


# --------------------------------------------------------------------------- #
# Multi-hop shaping regression                                                #
# --------------------------------------------------------------------------- #
class TestMultiHopShaping:
    def test_token_bucket_at_hop1_caps_throughput_at_hop3(self):
        """A 2 Mbit/s token bucket at s1 must govern what h_dst receives
        three hops later, even though s2/s3 run plain FIFO at 10 Mbit/s."""
        shaped_rate = 2e6
        duration = 0.5

        def shaped_tree():
            root = TreeNode(name="Root", scheduling=FIFOTransaction())
            root.add_child(
                TreeNode(
                    name="Shaped",
                    predicate=MatchAll(),
                    scheduling=FIFOTransaction(),
                    shaping=TokenBucketShapingTransaction(
                        rate_bps=shaped_rate, burst_bytes=3000
                    ),
                )
            )
            return ScheduleTree(root)

        def factory(switch, port):
            if switch == "s1":
                return ProgrammableScheduler(shaped_tree())
            return ProgrammableScheduler(single_node_tree(FIFOTransaction()))

        sim = Simulator()
        net = linear_chain(3, link_rate_bps=10e6)
        fabric = Fabric(sim, net, factory)
        spec = FlowSpec(name="offered", rate_bps=8e6, packet_size=1500,
                        dst="h_dst")
        fabric.attach_source("h_src", cbr_arrivals(spec, duration=duration))
        fabric.run(until=duration)
        sink = fabric.sink("h_dst")
        received_bps = sink.total_bytes() * 8.0 / duration
        # The cap holds at the far end (allow the initial burst allowance).
        assert received_bps <= shaped_rate * 1.15
        # ... and the shaper is not spuriously throttling far below its rate.
        assert received_bps >= shaped_rate * 0.8
