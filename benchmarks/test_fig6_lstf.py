"""Figure 6 / Section 3.1 — Least Slack-Time First.

Regenerates: deadline-miss behaviour of LSTF vs FIFO at a congested port.
Paper claim: LSTF (programmed as a one-line scheduling transaction)
schedules packets in increasing slack order, so urgent packets meet
deadlines that FIFO misses.
"""

from __future__ import annotations

import random

from conftest import report

from repro.algorithms import FIFOTransaction, LSTFTransaction
from repro.core import Packet, ProgrammableScheduler, single_node_tree
from repro.sim import OutputPort, PacketSource, Simulator

LINK_RATE = 10e6  # deliberately slow so queues build
DURATION = 0.2


def make_arrivals(seed=0):
    """A congested mix: many relaxed packets and a few urgent ones."""
    rng = random.Random(seed)
    arrivals = []
    time = 0.0
    for index in range(200):
        time += rng.expovariate(2000.0)  # ~2000 pkt/s offered vs ~833 pkt/s capacity
        urgent = index % 10 == 0
        slack = 0.02 if urgent else 0.5
        arrivals.append(
            (time, Packet(flow="urgent" if urgent else "bulk", length=600,
                          fields={"slack": slack}))
        )
    return arrivals


def run_with(transaction_factory, seed=0):
    sim = Simulator()
    scheduler = ProgrammableScheduler(single_node_tree(transaction_factory()))
    port = OutputPort(sim, scheduler, rate_bps=LINK_RATE)
    PacketSource(sim, port, make_arrivals(seed))
    sim.run(until=DURATION)
    urgent_delays = [p.total_delay for p in port.sink.packets if p.flow == "urgent"]
    bulk_delays = [p.total_delay for p in port.sink.packets if p.flow == "bulk"]
    return urgent_delays, bulk_delays


def test_fig6_lstf_prioritises_low_slack_packets(benchmark):
    def run_both():
        return run_with(LSTFTransaction), run_with(FIFOTransaction)

    (lstf_urgent, lstf_bulk), (fifo_urgent, fifo_bulk) = benchmark(run_both)
    lstf_max = max(lstf_urgent)
    fifo_max = max(fifo_urgent)
    report(
        "Figure 6: urgent-packet delay, LSTF vs FIFO (slack budget 20 ms)",
        [
            {"scheduler": "LSTF", "max_urgent_delay_ms": lstf_max * 1e3,
             "mean_bulk_delay_ms": 1e3 * sum(lstf_bulk) / len(lstf_bulk)},
            {"scheduler": "FIFO", "max_urgent_delay_ms": fifo_max * 1e3,
             "mean_bulk_delay_ms": 1e3 * sum(fifo_bulk) / len(fifo_bulk)},
        ],
    )
    # LSTF keeps urgent packets within their slack budget; FIFO does not.
    assert lstf_max <= 0.02
    assert fifo_max > lstf_max
    assert len(lstf_urgent) == len(fifo_urgent)


def test_fig6_slack_ordering_is_exact_at_a_single_queue(benchmark):
    def departure_slacks():
        scheduler = ProgrammableScheduler(single_node_tree(LSTFTransaction()))
        rng = random.Random(3)
        for _ in range(300):
            scheduler.enqueue(
                Packet(flow="x", length=100, fields={"slack": rng.uniform(0, 1)})
            )
        return [p.get("slack") for p in scheduler.drain()]

    slacks = benchmark(departure_slacks)
    assert slacks == sorted(slacks)
