"""Documentation consistency checks.

DESIGN.md and EXPERIMENTS.md map every experiment to the code that
regenerates it; README.md lists the runnable examples.  These tests keep
those documents honest: every file they reference must exist, and every
benchmark/example on disk must be documented.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DESIGN = (REPO_ROOT / "DESIGN.md").read_text()
EXPERIMENTS = (REPO_ROOT / "EXPERIMENTS.md").read_text()
README = (REPO_ROOT / "README.md").read_text()

_FILE_REFERENCE = re.compile(r"`((?:tests|benchmarks|examples|docs)/[\w/.-]+\.(?:py|md))`")
_BARE_BENCH_REFERENCE = re.compile(r"`(test_\w+\.py)`")


class TestReferencedFilesExist:
    def test_design_md_references_exist(self):
        for path in _FILE_REFERENCE.findall(DESIGN):
            assert (REPO_ROOT / path).exists(), f"DESIGN.md references missing {path}"

    def test_experiments_md_references_exist(self):
        for path in _FILE_REFERENCE.findall(EXPERIMENTS):
            assert (REPO_ROOT / path).exists(), f"EXPERIMENTS.md references missing {path}"
        for name in _BARE_BENCH_REFERENCE.findall(EXPERIMENTS):
            assert (REPO_ROOT / "benchmarks" / name).exists(), (
                f"EXPERIMENTS.md references missing benchmarks/{name}"
            )

    def test_readme_references_exist(self):
        for path in _FILE_REFERENCE.findall(README):
            assert (REPO_ROOT / path).exists(), f"README.md references missing {path}"


class TestEverythingOnDiskIsDocumented:
    def test_every_benchmark_module_is_documented(self):
        documented = DESIGN + EXPERIMENTS
        for bench in sorted((REPO_ROOT / "benchmarks").glob("test_*.py")):
            assert bench.name in documented, (
                f"{bench.name} is not mentioned in DESIGN.md or EXPERIMENTS.md"
            )

    def test_every_example_is_documented_in_readme(self):
        for example in sorted((REPO_ROOT / "examples").glob("*.py")):
            assert example.name in README, f"{example.name} is not listed in README.md"

    def test_every_cli_experiment_references_a_documented_figure_or_table(self):
        from repro.reporting import list_experiments

        documented = DESIGN + EXPERIMENTS + README
        for spec in list_experiments():
            # "Figure 6" / "Table 1" / "Section 5.3" also appear in the docs
            # in their abbreviated forms ("Fig 6", "§5.3"); accept either.
            reference = spec.paper_reference.split(",")[0]
            abbreviated = (
                reference.replace("Figure ", "Fig ")
                .replace("Section ", "§")
                .replace("Table ", "Table ")
            )
            assert reference in documented or abbreviated in documented, (
                f"experiment {spec.experiment_id!r} ({reference}) is not "
                "mentioned in the documentation"
            )


class TestDesignInventoryMatchesPackages:
    def test_every_subpackage_appears_in_design_md(self):
        src = REPO_ROOT / "src" / "repro"
        for package in sorted(p.name for p in src.iterdir() if p.is_dir()
                              and (p / "__init__.py").exists()
                              and not p.name.endswith(".egg-info")):
            assert f"repro.{package}" in DESIGN or f"{package}/" in DESIGN, (
                f"subpackage repro.{package} is not described in DESIGN.md"
            )

    def test_readme_architecture_block_covers_subpackages(self):
        src = REPO_ROOT / "src" / "repro"
        for package in sorted(p.name for p in src.iterdir() if p.is_dir()
                              and (p / "__init__.py").exists()
                              and not p.name.endswith(".egg-info")):
            assert f"repro.{package}" in README, (
                f"subpackage repro.{package} is missing from README's "
                "architecture overview"
            )
