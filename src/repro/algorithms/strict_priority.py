"""Strict priority scheduling (Section 3.4, item 1).

The packet's rank is its priority field (lower value = more important, the
IP TOS convention used in the paper).  Within a priority level, packets keep
FIFO order because the PIFO breaks rank ties by enqueue order.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.packet import Packet
from ..core.pifo import Rank
from ..core.transaction import SchedulingTransaction, TransactionContext


class StrictPriorityTransaction(SchedulingTransaction):
    """rank = packet priority (lower dequeues first)."""

    state_variables = ()

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        return packet.priority

    def describe(self) -> str:
        return "StrictPriority(rank = p.priority)"


class ClassPriorityTransaction(SchedulingTransaction):
    """Strict priority across *classes*, looked up from a static table.

    Used at the root of hierarchical schedulers such as CBQ (Section 3.4,
    item 5) and the minimum-rate tree (Section 3.3) where the element being
    ranked is a reference to a child node rather than a packet: the
    element's flow (the child's name) indexes the priority table.
    """

    state_variables = ()

    def __init__(
        self,
        class_priorities: Mapping[str, int],
        default_priority: Optional[int] = None,
    ) -> None:
        self.class_priorities = dict(class_priorities)
        self.default_priority = default_priority
        super().__init__()

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        name = ctx.element_flow
        if name in self.class_priorities:
            return self.class_priorities[name]
        if self.default_priority is not None:
            return self.default_priority
        raise KeyError(f"no priority configured for class {name!r}")

    def describe(self) -> str:
        return f"ClassPriority({self.class_priorities})"
