"""Progress sidecar contracts: atomic writes, throttling, torn-write
tolerance and the EMA-based rate/ETA.

Everything runs on a fake clock (ProgressWriter takes ``time_fn``), so
the throttle and EMA are tested deterministically.
"""

from __future__ import annotations

import json
import os

from repro.obs.progress import (
    EMA_ALPHA,
    MIN_WRITE_INTERVAL_S,
    ProgressWriter,
    progress_path_for,
    read_progress,
)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_writer(tmp_path, total=10, **kwargs):
    clock = FakeClock()
    path = str(tmp_path / "store.jsonl.progress")
    writer = ProgressWriter(path, campaign="probe", total=total,
                            time_fn=clock, **kwargs)
    return writer, clock, path


class TestWriter:
    def test_written_at_construction(self, tmp_path):
        _, _, path = make_writer(tmp_path)
        snap = read_progress(path)
        assert snap["state"] == "running"
        assert snap["done"] == 0
        assert snap["total"] == 10
        assert snap["campaign"] == "probe"

    def test_record_run_counts_ok_failed_quarantined(self, tmp_path):
        writer, clock, path = make_writer(tmp_path)
        clock.advance(1.0)
        writer.record_run(ok=True)
        clock.advance(1.0)
        writer.record_run(ok=False)
        clock.advance(1.0)
        writer.record_run(ok=False, quarantined=True)
        snap = read_progress(path)
        assert (snap["done"], snap["ok"], snap["failed"],
                snap["quarantined"]) == (3, 1, 1, 1)

    def test_rate_ema_and_eta(self, tmp_path):
        writer, clock, path = make_writer(tmp_path, total=5)
        clock.advance(2.0)       # 0.5 runs/s sample seeds the EMA
        writer.record_run(ok=True)
        assert writer.snapshot()["runs_per_s"] == 0.5
        clock.advance(1.0)       # 1.0 runs/s sample folds in at alpha
        writer.record_run(ok=True)
        expected = EMA_ALPHA * 1.0 + (1 - EMA_ALPHA) * 0.5
        snap = read_progress(path)
        assert snap["runs_per_s"] == round(expected, 4)
        assert snap["eta_s"] == round(3 / expected, 2)

    def test_eta_zero_when_nothing_remains(self, tmp_path):
        writer, clock, _ = make_writer(tmp_path, total=1)
        clock.advance(1.0)
        writer.record_run(ok=True)
        assert writer.snapshot()["eta_s"] == 0.0

    def test_writes_are_throttled(self, tmp_path):
        writer, clock, path = make_writer(tmp_path, total=100)
        clock.advance(1.0)
        writer.record_run(ok=True)
        before = read_progress(path)
        # A burst inside the throttle window updates counters in memory
        # but does not rewrite the file...
        clock.advance(MIN_WRITE_INTERVAL_S / 10)
        writer.record_run(ok=True)
        assert read_progress(path)["done"] == before["done"]
        # ...until the interval elapses.
        clock.advance(MIN_WRITE_INTERVAL_S)
        writer.record_run(ok=True)
        assert read_progress(path)["done"] == 3

    def test_finish_always_flushes(self, tmp_path):
        writer, clock, path = make_writer(tmp_path)
        clock.advance(0.01)      # within the throttle window
        writer.record_run(ok=True)
        writer.finish("done")
        snap = read_progress(path)
        assert snap["state"] == "done"
        assert snap["done"] == 1
        assert snap["leases_in_flight"] == 0

    def test_heartbeat_updates_leases_in_flight(self, tmp_path):
        writer, clock, path = make_writer(tmp_path)
        clock.advance(1.0)
        writer.heartbeat(leases_in_flight=4)
        assert read_progress(path)["leases_in_flight"] == 4

    def test_executor_field_rides_along(self, tmp_path):
        writer, _, path = make_writer(tmp_path, executor="host-1")
        assert read_progress(path)["executor"] == "host-1"

    def test_no_tmp_file_left_behind(self, tmp_path):
        writer, clock, path = make_writer(tmp_path)
        clock.advance(1.0)
        writer.record_run(ok=True)
        writer.finish()
        assert os.listdir(tmp_path) == [os.path.basename(path)]


class TestReadTolerance:
    def test_missing_file(self, tmp_path):
        assert read_progress(str(tmp_path / "nope.progress")) is None

    def test_torn_json(self, tmp_path):
        path = tmp_path / "torn.progress"
        path.write_text('{"state": "running", "done"')
        assert read_progress(str(path)) is None

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.progress"
        path.write_text("")
        assert read_progress(str(path)) is None

    def test_non_dict_payload(self, tmp_path):
        path = tmp_path / "list.progress"
        path.write_text(json.dumps([1, 2, 3]))
        assert read_progress(str(path)) is None

    def test_path_helper(self):
        assert progress_path_for("campaign_x.jsonl") \
            == "campaign_x.jsonl.progress"
