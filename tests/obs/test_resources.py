"""Per-run resource capture (repro.obs.resources).

The probe reports CPU time as start/stop *deltas* and peak RSS as the
process-lifetime high-water mark (that is what getrusage exposes); both
degrade to zeros where the resource module is unavailable.
"""

from __future__ import annotations

import sys

from repro.obs.resources import RESOURCE_FIELDS, ResourceProbe, rss_peak_bytes


class TestResourceProbe:
    def test_stop_returns_every_field(self):
        result = ResourceProbe().start().stop(events=100, wall_s=2.0)
        assert set(result) == set(RESOURCE_FIELDS)
        assert result["events"] == 100
        assert result["events_per_s"] == 50.0

    def test_cpu_deltas_are_nonnegative_and_bounded(self):
        probe = ResourceProbe().start()
        # Burn a little CPU so the user-time delta is measurable.
        sum(i * i for i in range(200_000))
        result = probe.stop()
        assert result["cpu_user_s"] >= 0.0
        assert result["cpu_sys_s"] >= 0.0
        # A delta, not the process's lifetime total: this probe ran for
        # well under a second of CPU.
        assert result["cpu_user_s"] < 5.0

    def test_rss_peak_is_plausible(self):
        peak = rss_peak_bytes()
        if sys.platform.startswith(("linux", "darwin")):
            # A running CPython interpreter is at least a few MB.
            assert peak > 1_000_000
        else:  # pragma: no cover - resource module unavailable
            assert peak == 0

    def test_events_per_s_zero_without_wall_clock(self):
        result = ResourceProbe().start().stop(events=100, wall_s=0.0)
        assert result["events_per_s"] == 0.0
