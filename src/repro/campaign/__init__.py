"""Campaign engine: parallel parameter sweeps over the scenario registry.

The paper's thesis — one PIFO substrate expresses many scheduling
algorithms — is demonstrated at scale by sweeping algorithms x topologies
x backends x loads, not by running one scenario at a time.  This package
is that execution layer:

* :mod:`~repro.campaign.spec` — :class:`Campaign` factor declarations
  expanding into a deterministic run table of pickle-safe
  :class:`RunSpec` rows, each with a seed derived from
  ``(base_seed, workload_id)`` so scheduler/backend factors compare on
  identical workloads while replicates stay independent;
* :mod:`~repro.campaign.runner` — :class:`CampaignRunner` drives the run
  table serially or through the warm engine (``workers=1`` is
  bit-identical to serial execution, modulo wall-clock fields);
* :mod:`~repro.campaign.engine` — :class:`WarmWorkerEngine`, a
  persistent pre-warmed worker pool leasing adaptive batches of runs and
  returning pre-encoded store lines;
* :mod:`~repro.campaign.queue` — :class:`LeaseQueue`, a shared-directory
  work queue letting many executors (processes or hosts) drain one run
  table via atomic lease files with heartbeat, expiry-steal, and
  quarantine, merged into a canonical store;
* :mod:`~repro.campaign.workload_cache` — per-process bounded-LRU
  memoisation of built arrival schedules and topologies: paired runs
  (same workload, different substrate) replay a recorded arrival stream
  instead of regenerating it, with byte-identical results;
* :mod:`~repro.campaign.store` — append-only JSONL :class:`ResultStore`
  with per-run config fingerprints, making interrupted campaigns
  resumable (``--resume`` re-runs exactly the missing and failed sets);
* :mod:`~repro.campaign.builtin` — the campaign registry and the built-in
  ``paper_sweep`` / ``fault_sweep`` campaigns.

Execution is crash-isolated: exceptions, per-run timeouts and dead worker
processes become structured failure records in the store (see
:func:`~repro.campaign.runner.execute_spec_guarded`) instead of killing
the sweep, bounded retry with backoff covers transient failures, and the
runner degrades from pool to per-spec subprocesses when the pool itself
breaks.

Aggregation of store records into grouped summary tables lives in
:mod:`repro.reporting.campaign`; the CLI front end is
``repro campaign run|list|report|verify``.
"""

from .builtin import (
    CAMPAIGNS,
    FAULT_SWEEP,
    PAPER_SWEEP,
    get_campaign,
    list_campaigns,
    register_campaign,
)
from .runner import (
    CampaignReport,
    CampaignRunner,
    WorkerPolicy,
    execute_spec,
    execute_spec_guarded,
    failure_record,
)
from .engine import (
    EngineBroken,
    EngineStats,
    WarmupSpec,
    WarmWorkerEngine,
    warm_kernel_cache,
)
from .queue import LeaseQueue, QueueError, WorkReport
from .workload_cache import WorkloadCache, active_cache, reset_cache
from .spec import FACTOR_KEYS, Campaign, RunSpec
from .store import (
    FAILURE_STATUSES,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_TIMEOUT,
    STATUS_WORKER_LOST,
    TIMING_FIELDS,
    ResultStore,
    StoreError,
    encode_record,
    record_is_ok,
    strip_timing,
)

__all__ = [
    "Campaign",
    "RunSpec",
    "FACTOR_KEYS",
    "CampaignRunner",
    "CampaignReport",
    "WorkerPolicy",
    "execute_spec",
    "execute_spec_guarded",
    "failure_record",
    "WarmWorkerEngine",
    "WarmupSpec",
    "EngineBroken",
    "EngineStats",
    "warm_kernel_cache",
    "LeaseQueue",
    "QueueError",
    "WorkReport",
    "WorkloadCache",
    "active_cache",
    "reset_cache",
    "ResultStore",
    "StoreError",
    "encode_record",
    "TIMING_FIELDS",
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "STATUS_WORKER_LOST",
    "STATUS_QUARANTINED",
    "FAILURE_STATUSES",
    "record_is_ok",
    "strip_timing",
    "CAMPAIGNS",
    "PAPER_SWEEP",
    "FAULT_SWEEP",
    "register_campaign",
    "get_campaign",
    "list_campaigns",
]
