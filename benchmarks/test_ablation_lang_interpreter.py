"""Ablation (Section 4.1) — hand-written transactions vs interpreted programs.

The paper's transactions are *programs* compiled by Domino onto atom
pipelines; this reproduction offers the same algorithms both as hand-written
Python transactions (:mod:`repro.algorithms`) and as programs in the
transaction language (:mod:`repro.lang`).  This ablation checks that:

* the two produce identical schedules (the benchmark is only meaningful if
  the comparison is apples-to-apples), and
* the interpretation overhead is bounded (the program path is a constant
  factor slower, not asymptotically worse), so the language is usable for
  the behavioural experiments as well.
"""

from __future__ import annotations

from conftest import report

from repro.algorithms import STFQTransaction
from repro.core import Packet, ProgrammableScheduler, TransactionContext, single_node_tree
from repro.lang.programs import stfq_program

FLOWS = ["a", "b", "c", "d"]
WEIGHTS = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}
PACKETS = 2_000


def _drive(transaction) -> list:
    scheduler = ProgrammableScheduler(single_node_tree(transaction))
    for i in range(PACKETS):
        flow = FLOWS[i % len(FLOWS)]
        scheduler.enqueue(Packet(flow=flow, length=1000 + (i % 7) * 100))
    return [(p.flow, p.length) for p in scheduler.drain()]


def test_ablation_interpreted_stfq_matches_hand_written(benchmark):
    def run():
        return _drive(stfq_program(weights=WEIGHTS))

    prog_order = benchmark(run)
    hand_order = _drive(STFQTransaction(weights=WEIGHTS))
    assert prog_order == hand_order

    report(
        "Ablation: transaction language vs hand-written STFQ",
        [
            {"implementation": "hand-written class", "packets": PACKETS,
             "departure_order_identical": True},
            {"implementation": "interpreted program", "packets": PACKETS,
             "departure_order_identical": prog_order == hand_order},
        ],
    )


def test_ablation_interpreter_overhead_is_constant_factor(benchmark):
    """Per-packet rank computation cost of the interpreted program stays a
    (small) constant factor over the hand-written transaction."""
    import time

    def time_ranks(transaction, count=3_000):
        ctx = TransactionContext(now=0.0, node="n", element_flow="a", element_length=1000)
        packet = Packet(flow="a", length=1000)
        start = time.perf_counter()
        for _ in range(count):
            transaction(packet, ctx)
        return time.perf_counter() - start

    def run():
        hand = time_ranks(STFQTransaction(weights=WEIGHTS))
        interpreted = time_ranks(stfq_program(weights=WEIGHTS))
        return hand, interpreted

    hand_s, interpreted_s = benchmark.pedantic(run, rounds=3, iterations=1)
    slowdown = interpreted_s / max(hand_s, 1e-9)
    report(
        "Ablation: per-rank computation cost (3 K ranks)",
        [
            {"implementation": "hand-written class", "seconds": hand_s, "slowdown": 1.0},
            {"implementation": "interpreted program", "seconds": interpreted_s,
             "slowdown": slowdown},
        ],
    )
    # The interpreter walks a small AST per packet; anything beyond ~200x
    # would signal an accidental complexity blow-up rather than constant
    # interpretation overhead.
    assert slowdown < 200
