"""Minimum rate guarantees (Figure 8, Section 3.3).

A flow is guaranteed a minimum rate (provided the guarantees sum to below
link capacity) by a **two-level tree**:

* each flow has a leaf node running FIFO over its own packets, and
* the root runs strict priority over flows: a flow currently *under* its
  minimum rate is scheduled ahead of flows *over* their minimum rate.

Whether a flow is under or over is decided by the token-bucket transaction
of Figure 8, executed when the flow's reference is pushed into the root::

    tb = min(tb + min_rate * (now - last_time), BURST_SIZE)
    if tb > p.size:
        p.over_min = 0        # under min rate
        tb = tb - p.size
    else:
        p.over_min = 1        # over min rate
    last_time = now
    p.rank = p.over_min

Section 3.3 also explains why *collapsing* the tree into a single node
reorders packets within a flow; :func:`build_collapsed_min_rate_tree` builds
that (incorrect) variant so the ablation benchmark can demonstrate the
reordering.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional

from ..core.backend import BackendSpec
from ..core.pifo import Rank
from ..core.packet import Packet
from ..core.predicates import FlowEquals
from ..core.transaction import SchedulingTransaction, TransactionContext
from ..core.tree import ScheduleTree, TreeNode
from .fifo import FIFOTransaction

#: Rank assigned to elements of flows under their guaranteed rate.
UNDER_MIN = 0
#: Rank assigned to elements of flows exceeding their guaranteed rate.
OVER_MIN = 1


class MinRateTransaction(SchedulingTransaction):
    """Figure 8's transaction, generalised to one token bucket per flow.

    Parameters
    ----------
    min_rates_bps:
        Mapping from flow (or leaf-node name) to its guaranteed rate in bits
        per second.  Flows without an entry get ``default_rate_bps`` (zero
        means they are always treated as over-the-minimum, i.e. best effort).
    burst_bytes:
        Token bucket depth ``BURST_SIZE`` in bytes.
    """

    state_variables = ("buckets",)

    def __init__(
        self,
        min_rates_bps: Mapping[str, float],
        burst_bytes: float = 15000.0,
        default_rate_bps: float = 0.0,
    ) -> None:
        self.min_rates_bps = dict(min_rates_bps)
        self.burst_bytes = burst_bytes
        self.default_rate_bps = default_rate_bps
        super().__init__()

    def initial_state(self) -> Dict[str, Any]:
        return {"buckets": {}}

    def _bucket(self, flow: str) -> Dict[str, float]:
        buckets: Dict[str, Dict[str, float]] = self.state["buckets"]
        if flow not in buckets:
            buckets[flow] = {"tb": self.burst_bytes, "last_time": 0.0}
        return buckets[flow]

    def rate_of(self, flow: str) -> float:
        return self.min_rates_bps.get(flow, self.default_rate_bps)

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        flow = ctx.element_flow
        rate = self.rate_of(flow)
        if rate <= 0:
            # A flow with no configured guarantee is pure best effort: it is
            # always treated as over-the-minimum and never preempts
            # guaranteed flows.
            return OVER_MIN
        rate_bytes_per_s = rate / 8.0
        size = ctx.element_length or packet.length
        bucket = self._bucket(flow)

        tb = min(
            bucket["tb"] + rate_bytes_per_s * (ctx.now - bucket["last_time"]),
            self.burst_bytes,
        )
        if tb > size:
            over_min = UNDER_MIN
            tb -= size
        else:
            over_min = OVER_MIN
        bucket["tb"] = tb
        bucket["last_time"] = ctx.now
        return over_min

    def describe(self) -> str:
        rates = {f: f"{r / 1e6:.3g}Mb/s" for f, r in self.min_rates_bps.items()}
        return f"MinRate({rates})"


def build_min_rate_tree(
    flows: Iterable[str],
    min_rates_bps: Mapping[str, float],
    burst_bytes: float = 15000.0,
    root_name: str = "MinRateRoot",
    pifo_backend: BackendSpec = None,
) -> ScheduleTree:
    """Build the two-level tree of Section 3.3.

    The root attaches priorities to *transmission opportunities* of a flow,
    not to specific packets, so a flow moving from low to high priority
    transmits its earliest buffered packet next — no intra-flow reordering.
    """
    root = TreeNode(
        name=root_name,
        scheduling=MinRateTransaction(min_rates_bps, burst_bytes=burst_bytes),
    )
    for flow in flows:
        root.add_child(
            TreeNode(
                name=flow,
                predicate=FlowEquals(flow),
                scheduling=FIFOTransaction(),
            )
        )
    return ScheduleTree(root, pifo_backend=pifo_backend)


class CollapsedMinRateTransaction(MinRateTransaction):
    """The *incorrect* single-node variant discussed in Section 3.3.

    Ranks individual packets (not transmission opportunities) by
    under/over-minimum status.  An arriving packet that moves its flow from
    over to under the minimum rate jumps ahead of that flow's earlier
    packets, reordering the flow — exactly the failure mode the paper warns
    about.  Kept only for the ablation benchmark.
    """


def build_collapsed_min_rate_tree(
    min_rates_bps: Mapping[str, float],
    burst_bytes: float = 15000.0,
    pifo_backend: BackendSpec = None,
) -> ScheduleTree:
    """Single-node variant used by the reordering ablation."""
    root = TreeNode(
        name="CollapsedMinRate",
        scheduling=CollapsedMinRateTransaction(min_rates_bps, burst_bytes=burst_bytes),
    )
    return ScheduleTree(root, pifo_backend=pifo_backend)
