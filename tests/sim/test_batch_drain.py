"""Batch event draining and the schedule_fast deferral slot.

The run loop drains every heap event due at the current timestamp in one
inner loop (no re-advancing the clock per event) and prefetches
self-rescheduled transmit completions in a one-slot deferral buffer
(:meth:`~repro.sim.Simulator.schedule_fast`).  These properties pin the
ordering contract both optimisations must preserve: events execute in
(time, seq) order — exactly as if every event went through the heap — and
cancellation works identically whether the victim sits in the heap or in
the deferral slot.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.sim import Simulator


class TestSameTimestampOrder:
    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator()
        log = []
        for index in range(20):
            sim.schedule_at(1.0, lambda i=index: log.append(i))
        sim.run()
        assert log == list(range(20))

    def test_batch_spawned_same_time_events_ordered(self):
        # Callbacks scheduling *new* work at the current instant: the new
        # events carry later seqs, so they run after everything already
        # due — in spawn order.
        sim = Simulator()
        log = []

        def parent(i):
            log.append(("parent", i))
            sim.schedule(0.0, lambda: log.append(("child", i)))

        for index in range(5):
            sim.schedule_at(1.0, lambda i=index: parent(i))
        sim.run()
        assert log == ([("parent", i) for i in range(5)]
                       + [("child", i) for i in range(5)])

    def test_fast_scheduled_event_interleaves_by_seq(self):
        # A deferred (fast) event at the same timestamp must not jump
        # ahead of earlier-seq heap events already due at that instant.
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.schedule_fast(0.0, lambda: log.append("fast"))

        sim.schedule_at(1.0, first)
        sim.schedule_at(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second", "fast"]


# Command stream: each event's callback schedules up to two children with
# (delay on a coarse grid, fast or heap scheduling).  Coarse delays force
# timestamp collisions so the batch drain actually engages.
child_spec = st.tuples(st.integers(min_value=0, max_value=3), st.booleans())
event_specs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.lists(child_spec, max_size=2)),
    min_size=1,
    max_size=25,
)


class TestOrderingProperty:
    @settings(max_examples=60, deadline=None)
    @given(specs=event_specs)
    def test_execution_order_is_time_seq_order(self, specs):
        # Every event logs its own (time, seq) when it fires; children are
        # spawned from inside callbacks through schedule / schedule_fast.
        # Whatever mix of heap and deferral-slot routing the events take,
        # the observable firing order must equal (time, seq) order.
        sim = Simulator()
        log = []

        def spawn(schedule, delay, children):
            record = {}
            def cb():
                log.append(record["key"])
                for delay_step, fast in children:
                    spawn(sim.schedule_fast if fast else sim.schedule,
                          delay_step * 0.5, ())
            entry = schedule(delay, cb)
            record["key"] = (entry[0], entry[1])

        for delay_step, children in specs:
            spawn(sim.schedule, delay_step * 0.5, children)
        sim.run()
        assert len(log) > 0
        assert log == sorted(log)
        assert sim.pending_events == 0
        assert sim.events_processed == len(log)

    @settings(max_examples=30, deadline=None)
    @given(specs=event_specs, horizon_step=st.integers(min_value=0,
                                                       max_value=6))
    def test_run_until_horizon_respected(self, specs, horizon_step):
        sim = Simulator()
        fired = []

        def make_cb(children):
            def cb():
                fired.append(sim.now)
                for delay_step, fast in children:
                    schedule = sim.schedule_fast if fast else sim.schedule
                    schedule(delay_step * 0.5, make_cb(()))
            return cb

        for delay_step, children in specs:
            sim.schedule(delay_step * 0.5, make_cb(children))
        horizon = horizon_step * 0.5
        sim.run(until=horizon)
        assert all(t <= horizon for t in fired)
        # Whatever remains (including a flushed deferral slot) fires later.
        sim.run()
        assert sim.pending_events == 0


class TestCancellation:
    def test_cancel_heap_event_inside_batch(self):
        # First event of a timestamp batch cancels a later same-timestamp
        # event: the tombstone must be honoured by the batch drain, and a
        # tombstoned pop must not count as processed.
        sim = Simulator()
        log = []
        holder = {}

        def killer():
            log.append("killer")
            sim.cancel(holder["victim"])

        sim.schedule_at(1.0, killer)
        holder["victim"] = sim.schedule_at(1.0, lambda: log.append("victim"))
        sim.schedule_at(1.0, lambda: log.append("survivor"))
        sim.run()
        assert log == ["killer", "survivor"]
        assert sim.events_processed == 2

    def test_cancel_deferred_slot_event(self):
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            deferred = sim.schedule_fast(0.0, lambda: log.append("fast"))
            assert sim.pending_events >= 1
            sim.cancel(deferred)

        sim.schedule_at(1.0, first)
        sim.schedule_at(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_cancel_then_reschedule_fast(self):
        sim = Simulator()
        log = []

        def first():
            stale = sim.schedule_fast(0.0, lambda: log.append("stale"))
            sim.cancel(stale)
            sim.schedule_fast(0.0, lambda: log.append("fresh"))

        sim.schedule(0.0, first)
        sim.run()
        assert log == ["fresh"]

    def test_demoted_deferred_event_still_cancellable(self):
        # A second schedule_fast demotes the first deferred event to the
        # heap; cancelling the demoted handle must still work.
        sim = Simulator()
        log = []

        def first():
            a = sim.schedule_fast(1.0, lambda: log.append("a"))
            sim.schedule_fast(2.0, lambda: log.append("b"))
            sim.cancel(a)  # a now lives in the heap

        sim.schedule(0.0, first)
        sim.run()
        assert log == ["b"]


class TestDeferralSlotAccounting:
    def test_pending_events_counts_slot(self):
        sim = Simulator()
        seen = []

        def first():
            sim.schedule_fast(1.0, lambda: None)
            seen.append(sim.pending_events)

        sim.schedule(0.0, first)
        sim.run()
        assert seen == [1]

    def test_slot_flushed_after_run_until(self):
        sim = Simulator()
        log = []

        def first():
            sim.schedule_fast(5.0, lambda: log.append("late"))

        sim.schedule(0.0, first)
        sim.run(until=1.0)
        assert log == []
        assert sim.pending_events == 1
        sim.run()
        assert log == ["late"]

    def test_schedule_fast_outside_run_goes_to_heap(self):
        sim = Simulator()
        log = []
        sim.schedule_fast(1.0, lambda: log.append("x"))
        assert sim.pending_events == 1
        sim.run()
        assert log == ["x"]

    def test_schedule_fast_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_fast(-0.1, lambda: None)

    def test_max_events_mid_batch_preserves_rest(self):
        sim = Simulator()
        log = []
        for index in range(6):
            sim.schedule_at(1.0, lambda i=index: log.append(i))
        sim.run(max_events=3)
        assert log == [0, 1, 2]
        assert sim.pending_events == 3
        sim.run()
        assert log == list(range(6))
        assert sim.events_processed == 6
