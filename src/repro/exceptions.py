"""Exception hierarchy for the PIFO reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PIFOError(ReproError):
    """Base class for errors raised by PIFO data structures."""


class PIFOEmptyError(PIFOError):
    """Raised when dequeuing or peeking an empty PIFO."""


class PIFOFullError(PIFOError):
    """Raised when pushing into a PIFO that has reached its capacity."""


class TransactionError(ReproError):
    """Raised when a scheduling or shaping transaction misbehaves.

    Examples include a transaction that fails to set a rank, or one whose
    state declaration does not cover a state variable it accesses.
    """


class TreeConfigurationError(ReproError):
    """Raised when a scheduling tree is structurally invalid.

    Examples include a packet that matches no leaf predicate, a node with a
    duplicate name, or a shaping transaction attached to the root node.
    """


class SchedulerError(ReproError):
    """Raised by the reference scheduler engine for invalid operations."""


class BufferError_(ReproError):
    """Raised by the shared-memory buffer model (admission failures)."""


class HardwareModelError(ReproError):
    """Raised by the cycle-level hardware model for constraint violations."""


class CompilationError(ReproError):
    """Raised when a scheduling tree cannot be compiled onto a PIFO mesh."""


class SimulationError(ReproError):
    """Raised by the discrete-event simulator for scheduling-in-the-past and
    similar misuse."""


class TrafficError(ReproError):
    """Raised by traffic generators for invalid workload specifications."""


class TopologyError(ReproError):
    """Raised by the network fabric layer for malformed topologies.

    Examples include links naming unknown nodes, duplicate node names, or a
    disconnected graph handed to the routing pass.
    """


class RoutingError(ReproError):
    """Raised when a packet cannot be forwarded across the fabric.

    Examples include a packet without a destination address, a destination
    with no installed route, or a route naming a non-existent port."""


class FaultError(ReproError):
    """Raised for invalid fault plans handed to the fabric.

    Examples include a fault event naming a link or switch that does not
    exist in the topology, a switch event naming a host, a negative event
    time, or a packet-loss rate outside ``[0, 1]``."""


class ConservationError(ReproError):
    """Raised when a fabric's packet-conservation identity is violated.

    Every injected packet must be accounted for:
    ``injected == delivered + dropped + lost_to_faults + in_flight``.
    A violation means the fabric leaked or double-counted packets —
    always a bug, never a legitimate simulation outcome."""
