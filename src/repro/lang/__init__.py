"""A small Domino-style language for scheduling and shaping transactions.

Section 4.1 of the paper implements scheduling and shaping transactions as
*packet transactions written in the Domino language* and compiles them to a
pipeline of atoms.  This package reproduces that workflow in Python:

* :mod:`repro.lang.lexer`, :mod:`repro.lang.parser` — a tokenizer and a
  recursive-descent parser for the small imperative language the paper's
  figures are written in (assignments, ``if``/``else``, ``min``/``max``,
  per-flow dictionaries, packet fields ``p.x`` and the wall clock ``now``).
* :mod:`repro.lang.interpreter` — executes a parsed program against a packet
  and the transaction's persistent state, producing ``p.rank`` or
  ``p.send_time``.
* :mod:`repro.lang.compiler` — lowers a parsed program to generated Python
  source and ``compile()``s it into a native closure with the interpreter's
  exact semantics; the bridge uses it by default so the per-packet program
  cost is a direct function call, not an AST walk.
* :mod:`repro.lang.analysis` — the Domino-style front end: extracts each
  state variable's read/write pattern, classifies the atom it needs, and
  emits a :class:`repro.hardware.atoms.TransactionSpec` so the feasibility
  analyser in :mod:`repro.hardware.atoms` can decide whether the program fits
  at line rate.
* :mod:`repro.lang.bridge` — wraps a compiled program as a
  :class:`~repro.core.transaction.SchedulingTransaction` or
  :class:`~repro.core.transaction.ShapingTransaction`, so programs written in
  the language can be attached to tree nodes exactly like the hand-written
  algorithm classes.
* :mod:`repro.lang.programs` — the source text of every transaction the
  paper's figures show (Figures 1, 4c, 6, 7 and 8) plus the Section 3.4
  one-liners, and factories producing ready-to-use compiled transactions.

Quickstart::

    from repro.lang import compile_scheduling_program
    from repro.lang.programs import STFQ_SOURCE

    stfq = compile_scheduling_program(
        STFQ_SOURCE,
        state={"virtual_time": 0.0, "last_finish": {}},
        flow_attrs={"weight": lambda flow: 1.0},
    )
    # `stfq` is a SchedulingTransaction; attach it to a tree node.
"""

from .ast import (
    Assign,
    Attribute,
    BinOp,
    BoolOp,
    Call,
    Compare,
    If,
    Membership,
    Name,
    Number,
    Program,
    Subscript,
    UnaryOp,
)
from .bridge import (
    CompiledSchedulingTransaction,
    CompiledShapingTransaction,
    compile_scheduling_program,
    compile_shaping_program,
    resolve_backend,
)
from .compiler import (
    CompileError,
    CompiledProgram,
    compile_cache_info,
    compile_cached,
    compile_program,
)
from .errors import LangError, LexerError, ParseError, RuntimeLangError
from .interpreter import ExecutionResult, Interpreter, ProgramEnvironment
from .lexer import Token, TokenType, tokenize
from .parser import parse
from .analysis import ProgramAnalysis, analyze_program, spec_from_program

__all__ = [
    # AST
    "Program",
    "Assign",
    "If",
    "BinOp",
    "UnaryOp",
    "BoolOp",
    "Compare",
    "Call",
    "Name",
    "Number",
    "Attribute",
    "Subscript",
    "Membership",
    # lexer / parser
    "Token",
    "TokenType",
    "tokenize",
    "parse",
    # interpreter
    "Interpreter",
    "ProgramEnvironment",
    "ExecutionResult",
    # analysis
    "ProgramAnalysis",
    "analyze_program",
    "spec_from_program",
    # compiler
    "CompiledProgram",
    "CompileError",
    "compile_program",
    "compile_cached",
    "compile_cache_info",
    # bridge
    "CompiledSchedulingTransaction",
    "CompiledShapingTransaction",
    "compile_scheduling_program",
    "compile_shaping_program",
    "resolve_backend",
    # errors
    "LangError",
    "LexerError",
    "ParseError",
    "RuntimeLangError",
]
