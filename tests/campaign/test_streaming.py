"""Streaming store readers and the generator-based report path.

``repro campaign report`` must not load a whole result store into memory:
multi-executor campaigns produce stores far bigger than any one summary.
These tests build a synthetic >10k-record store and check that the
streaming readers (:meth:`iter_records`, :meth:`iter_effective_records`)
and the accumulator-based summariser produce exactly the answers the
old load-everything path gave.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import ResultStore, encode_record
from repro.reporting.campaign import summarize_records

SCENARIOS = ("alpha", "beta", "gamma")
RUNS_PER_SCENARIO = 4_000  # 12k records total: comfortably past 10k


def synthetic_record(scenario: str, index: int, status: str = "ok") -> dict:
    return {
        "run_id": f"{scenario}/r{index}",
        "fingerprint": f"{scenario}-{index:08d}",
        "campaign": "synthetic",
        "scenario": scenario,
        "variant": "FIFO",
        "status": status,
        "delivered": 10,
        "dropped": 1,
        "mean_delay": 0.002,
        "max_delay": 0.004 + index * 1e-9,
        "wall_clock_s": 0.001,
    }


@pytest.fixture(scope="module")
def big_store(tmp_path_factory):
    """12k records written as raw lines (no per-append fsync overhead)."""
    path = tmp_path_factory.mktemp("big") / "store.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        for scenario in SCENARIOS:
            for index in range(RUNS_PER_SCENARIO):
                handle.write(encode_record(synthetic_record(scenario, index))
                             + "\n")
    return ResultStore(path)


class TestStreamingReaders:
    def test_iter_records_streams_everything(self, big_store):
        count = sum(1 for _ in big_store.iter_records())
        assert count == len(SCENARIOS) * RUNS_PER_SCENARIO

    def test_iter_effective_matches_load_based_dedup(self, tmp_path):
        store = ResultStore(tmp_path / "dup.jsonl")
        store.append(synthetic_record("alpha", 0, status="failed"))
        store.append(synthetic_record("alpha", 1))
        store.append(synthetic_record("alpha", 0, status="ok"))  # re-run wins
        streamed = list(store.iter_effective_records())
        assert streamed == store.effective_records()
        assert [r["status"] for r in streamed] == ["ok", "ok"]

    def test_effective_streaming_uses_last_occurrence_order(self, tmp_path):
        store = ResultStore(tmp_path / "order.jsonl")
        for index in (2, 0, 1):
            store.append(synthetic_record("alpha", index))
        store.append(synthetic_record("alpha", 0))  # re-run: moves to tail
        assert [r["run_id"] for r in store.iter_effective_records()] == [
            "alpha/r2", "alpha/r1", "alpha/r0"]


class TestStreamingSummary:
    def test_generator_input_equals_list_input(self, big_store):
        from_list = summarize_records(big_store.load(),
                                      group_by=("scenario",))
        from_stream = summarize_records(big_store.iter_records(),
                                        group_by=("scenario",))
        assert from_stream == from_list

    def test_group_rows_over_10k_records(self, big_store):
        rows = summarize_records(big_store.iter_effective_records(),
                                 group_by=("scenario",))
        assert [row["scenario"] for row in rows] == list(SCENARIOS)
        for row in rows:
            assert row["runs"] == RUNS_PER_SCENARIO
            assert row["failed"] == 0
            assert row["delivered"] == 10 * RUNS_PER_SCENARIO
            assert row["mean_delay_ms"] == pytest.approx(2.0)

    def test_single_pass_consumption(self, big_store):
        """The summariser takes one pass — a pure iterator suffices."""
        iterator = iter(big_store.iter_records())
        rows = summarize_records(iterator, group_by=("scenario", "variant"))
        assert len(rows) == len(SCENARIOS)
        assert next(iterator, None) is None  # fully consumed, exactly once


class TestCliReportStreams:
    def test_report_over_10k_store(self, big_store, capsys):
        from repro.cli import main

        assert main(["campaign", "report", "--store", str(big_store.path),
                     "--group-by", "scenario", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["scenario"] for row in rows] == list(SCENARIOS)
        assert all(row["runs"] == RUNS_PER_SCENARIO for row in rows)

    def test_report_title_counts_streamed_runs(self, big_store, capsys):
        from repro.cli import main

        assert main(["campaign", "report", "--store",
                     str(big_store.path)]) == 0
        out = capsys.readouterr().out
        assert f"{len(SCENARIOS) * RUNS_PER_SCENARIO} runs" in out
