"""A shared-memory output-queued switch model.

Ties the substrate together: N output ports, each with its own programmable
scheduler draining a fixed-rate link, all sharing one packet buffer guarded
by an admission policy — the architecture the paper targets (a 64-port
10 Gbit/s shared-memory switch).

The switch does not model parsing or the match-action pipeline; packets
arrive already annotated with their output port, which is all the
scheduling subsystem cares about.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.backend import BackendSpec
from ..core.packet import Packet
from ..exceptions import BufferError_, RoutingError
from ..sim.link import OutputPort
from ..sim.simulator import Simulator
from .buffer import SharedBuffer
from .thresholds import AdmissionPolicy, AlwaysAdmit

#: Paper's target configuration (Section 5.1).
DEFAULT_PORT_COUNT = 64
DEFAULT_PORT_RATE_BPS = 10e9


@dataclass
class PortSpec:
    """Description of one output port for heterogeneous switches.

    The fabric layer (:mod:`repro.net`) builds switches whose ports differ
    in rate and wire latency and whose egress feeds the next hop instead of
    a terminal sink; ``delivery`` is the pluggable hook the
    :class:`~repro.sim.link.OutputPort` calls with each transmitted packet.
    """

    name: str
    rate_bps: float = DEFAULT_PORT_RATE_BPS
    propagation_delay: float = 0.0
    delivery: Optional[Callable[[Packet], None]] = None


@dataclass
class PortCounters:
    """Per-port transmitted/dropped breakdown inside :class:`SwitchStats`."""

    transmitted: int = 0
    dropped_admission: int = 0
    dropped_scheduler: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "transmitted": self.transmitted,
            "dropped_admission": self.dropped_admission,
            "dropped_scheduler": self.dropped_scheduler,
        }


@dataclass
class SwitchStats:
    """Aggregate counters for a switch run, with per-port breakdowns."""

    received: int = 0
    admitted: int = 0
    dropped_admission: int = 0
    dropped_scheduler: int = 0
    transmitted: int = 0
    per_port: Dict[str, PortCounters] = field(default_factory=dict)

    def port(self, name: str) -> PortCounters:
        counters = self.per_port.get(name)
        if counters is None:
            counters = self.per_port[name] = PortCounters()
        return counters

    @property
    def dropped(self) -> int:
        """All drops, whatever the reason."""
        return self.dropped_admission + self.dropped_scheduler

    def per_port_dict(self) -> Dict[str, Dict[str, int]]:
        """JSON-friendly per-port breakdown (``repro report --json``)."""
        return {name: counters.to_dict()
                for name, counters in sorted(self.per_port.items())}


class SharedMemorySwitch:
    """An output-queued shared-memory switch with programmable schedulers.

    Parameters
    ----------
    sim:
        Driving simulator.
    scheduler_factory:
        Callable producing a fresh scheduler per output port (for example
        ``lambda port: ProgrammableScheduler(build_fig3_tree())``).
    port_count / port_rate_bps:
        Number of output ports and per-port line rate.
    buffer / admission:
        Shared buffer and admission policy guarding it.
    pifo_backend:
        Optional PIFO backend spec (see :mod:`repro.core.backend`) applied
        to every port's scheduler (``"auto"`` defers to the simulator's
        selection rule; schedulers without a swappable tree are left alone).
    port_specs:
        Optional explicit port list (:class:`PortSpec`) overriding
        ``port_count`` / ``port_rate_bps``; used by the fabric layer to give
        each egress port its link's rate, wire latency and next-hop delivery
        hook.
    telemetry:
        Maintain per-port transmitted/dropped breakdowns in
        :class:`SwitchStats` (default).  Sweeps that only consume aggregate
        results disable this to drop two dict updates per packet; the
        aggregate counters (received / admitted / dropped / transmitted)
        are always maintained.
    name:
        Switch label (node name inside a fabric).
    """

    def __init__(
        self,
        sim: Simulator,
        scheduler_factory: Callable[[str], object],
        port_count: int = DEFAULT_PORT_COUNT,
        port_rate_bps: float = DEFAULT_PORT_RATE_BPS,
        buffer: Optional[SharedBuffer] = None,
        admission: Optional[AdmissionPolicy] = None,
        pifo_backend: BackendSpec = None,
        port_specs: Optional[Sequence[PortSpec]] = None,
        telemetry: bool = True,
        name: str = "switch",
    ) -> None:
        if port_specs is None:
            if port_count <= 0:
                raise ValueError("port_count must be positive")
            port_specs = [PortSpec(name=f"port{index}", rate_bps=port_rate_bps)
                          for index in range(port_count)]
        elif not port_specs:
            raise ValueError("port_specs must not be empty")
        self.sim = sim
        self.name = name
        self.buffer = buffer if buffer is not None else SharedBuffer()
        self.admission = admission if admission is not None else AlwaysAdmit()
        self.pifo_backend = pifo_backend
        self.telemetry = telemetry
        # Occupancy-only buffer accounting: with telemetry off and the
        # threshold-free AlwaysAdmit policy, nothing ever reads the per-flow
        # / per-port occupancy maps, so the ingress/egress paths skip their
        # four dict updates per packet and track only used cells/bytes.
        self._untracked_buffer = (
            not telemetry and type(self.admission) is AlwaysAdmit
        )
        self.stats = SwitchStats()
        self.ports: Dict[str, OutputPort] = {}
        #: Forwarding table: destination address -> candidate egress port
        #: names (several under ECMP).  Installed by the fabric's routing
        #: pass; single-switch experiments never touch it.
        self.routes: Dict[str, List[str]] = {}
        #: Flow label -> CRC32 hash, so ECMP hashes each flow string once.
        self._flow_hashes: Dict[str, int] = {}
        for spec in port_specs:
            if spec.name in self.ports:
                raise ValueError(f"duplicate port name {spec.name!r}")
            port = OutputPort(
                sim=sim,
                scheduler=scheduler_factory(spec.name),
                rate_bps=spec.rate_bps,
                name=spec.name,
                on_departure=self._make_release_callback(spec.name),
                pifo_backend=pifo_backend,
                expected_backlog=self.buffer.total_cells,
                propagation_delay=spec.propagation_delay,
                delivery=spec.delivery,
            )
            self.ports[spec.name] = port

    # -- buffer release on transmit -------------------------------------------------
    def _make_release_callback(self, port_name: str) -> Callable[[Packet], None]:
        stats = self.stats
        buffer = self.buffer
        if self._untracked_buffer:

            def _release(packet: Packet) -> None:
                stats.transmitted += 1
                cells = (packet.length + buffer.cell_bytes - 1) // buffer.cell_bytes
                if buffer.used_cells >= cells:
                    buffer.used_cells -= cells
                    buffer.used_bytes -= packet.length
                else:
                    # Fed directly without ingress accounting (tests); clamp.
                    buffer.used_cells = 0
                    buffer.used_bytes = max(0, buffer.used_bytes - packet.length)

            return _release
        if self.telemetry:
            port_counters = stats.port(port_name)

            def _release(packet: Packet) -> None:
                stats.transmitted += 1
                port_counters.transmitted += 1
                try:
                    buffer.release(packet, port=port_name)
                except BufferError_:
                    # The packet was admitted before accounting existed (e.g.
                    # a test feeding ports directly); ignore, don't crash.
                    pass

        else:

            def _release(packet: Packet) -> None:
                stats.transmitted += 1
                try:
                    buffer.release(packet, port=port_name)
                except BufferError_:
                    pass

        return _release

    # -- forwarding (fabric ingress path) --------------------------------------------
    def install_route(self, dst: str, ports: Sequence[str]) -> None:
        """Map a destination address to one or more egress ports (ECMP)."""
        unknown = [p for p in ports if p not in self.ports]
        if unknown:
            raise RoutingError(
                f"switch {self.name!r}: route to {dst!r} names unknown "
                f"ports {unknown}"
            )
        if not ports:
            raise RoutingError(f"switch {self.name!r}: empty route to {dst!r}")
        self.routes[dst] = list(ports)

    def select_port(self, packet: Packet) -> str:
        """Egress port for a packet, by destination + ECMP flow hash.

        The hash is CRC32 over the flow label — stable across runs and
        Python processes (unlike the builtin, seeded ``hash``), so ECMP
        placement is deterministic.
        """
        if packet.dst is None:
            raise RoutingError(
                f"switch {self.name!r}: packet {packet!r} has no dst address"
            )
        candidates = self.routes.get(packet.dst)
        if not candidates:
            raise RoutingError(
                f"switch {self.name!r}: no route to {packet.dst!r}"
            )
        if len(candidates) == 1:
            return candidates[0]
        flow_hashes = self._flow_hashes
        digest = flow_hashes.get(packet.flow)
        if digest is None:
            digest = flow_hashes[packet.flow] = zlib.crc32(packet.flow.encode())
        return candidates[digest % len(candidates)]

    def forward(self, packet: Packet) -> bool:
        """Fabric ingress: route by ``packet.dst`` and enqueue at egress."""
        return self.receive(packet, self.select_port(packet))

    # -- ingress ------------------------------------------------------------------------
    def receive(self, packet: Packet, output_port: str) -> bool:
        """Admit a packet to the shared buffer and its output port scheduler.

        Returns ``True`` when the packet was buffered; ``False`` when it was
        dropped by the admission policy, buffer exhaustion, or the
        scheduler itself.
        """
        if output_port not in self.ports:
            raise KeyError(f"unknown output port {output_port!r}")
        stats = self.stats
        stats.received += 1
        buffer = self.buffer
        if self._untracked_buffer:
            cells = (packet.length + buffer.cell_bytes - 1) // buffer.cell_bytes
            if buffer.used_cells + cells > buffer.total_cells:
                # Mirrors the tracked path's AlwaysAdmit rejection exactly
                # (which never reaches allocate(), so no drops_no_space).
                stats.dropped_admission += 1
                return False
            buffer.used_cells += cells
            buffer.used_bytes += packet.length
            if self.ports[output_port].receive(packet):
                stats.admitted += 1
                return True
            buffer.used_cells -= cells
            buffer.used_bytes -= packet.length
            stats.dropped_scheduler += 1
            return False
        if not self.admission.admit(buffer, packet, port=output_port):
            stats.dropped_admission += 1
            if self.telemetry:
                stats.port(output_port).dropped_admission += 1
            return False
        buffer.allocate(packet, port=output_port)
        accepted = self.ports[output_port].receive(packet)
        if not accepted:
            buffer.release(packet, port=output_port)
            stats.dropped_scheduler += 1
            if self.telemetry:
                stats.port(output_port).dropped_scheduler += 1
            return False
        stats.admitted += 1
        return True

    def receive_many(self, packets: Iterable[Packet], output_port: str) -> int:
        """Admit a burst of packets destined for one output port.

        Admission and buffer accounting stay packet by packet (dynamic
        thresholds depend on instantaneous occupancy), but the burst goes
        to the scheduler through the port's batch path and the transmitter
        is kicked once.  Scheduler-full rejects are identified by their
        unset ``enqueue_time`` (every scheduler stamps it on success) and
        their cells released through the buffer's batch path.  Returns the
        number of packets buffered.
        """
        if output_port not in self.ports:
            raise KeyError(f"unknown output port {output_port!r}")
        if self._untracked_buffer:
            # Occupancy-only twin of the tracked batch path below: admit
            # packet by packet against free cells, hand the whole burst to
            # the port in one receive_many, kick the transmitter once —
            # identical service order to the telemetry-on batch path.
            stats = self.stats
            buffer = self.buffer
            cell_bytes = buffer.cell_bytes
            admitted = []
            for packet in packets:
                stats.received += 1
                cells = (packet.length + cell_bytes - 1) // cell_bytes
                if buffer.used_cells + cells > buffer.total_cells:
                    stats.dropped_admission += 1
                    continue
                buffer.used_cells += cells
                buffer.used_bytes += packet.length
                packet.enqueue_time = None
                admitted.append(packet)
            accepted = self.ports[output_port].receive_many(admitted)
            if accepted < len(admitted):
                for packet in admitted:
                    if packet.enqueue_time is None:
                        buffer.used_cells -= (
                            (packet.length + cell_bytes - 1) // cell_bytes
                        )
                        buffer.used_bytes -= packet.length
                        stats.dropped_scheduler += 1
            stats.admitted += accepted
            return accepted
        port = self.ports[output_port]
        packets = list(packets)
        if isinstance(self.admission, AlwaysAdmit) and (
            sum(self.buffer.cells_for(p) for p in packets)
            <= self.buffer.free_cells
        ):
            # Threshold-free admission and a burst that fits as a whole:
            # commit it through the buffer's batch accounting.
            self.stats.received += len(packets)
            self.buffer.allocate_many(packets, port=output_port)
            admitted = packets
        else:
            admitted = []
            for packet in packets:
                self.stats.received += 1
                if not self.admission.admit(self.buffer, packet, port=output_port):
                    self.stats.dropped_admission += 1
                    if self.telemetry:
                        self.stats.port(output_port).dropped_admission += 1
                    continue
                self.buffer.allocate(packet, port=output_port)
                admitted.append(packet)
        for packet in admitted:
            # A packet arriving from an upstream hop still carries that
            # hop's enqueue stamp; clear it so rejects are identifiable.
            packet.enqueue_time = None
        accepted = port.receive_many(admitted)
        if accepted < len(admitted):
            rejected = [p for p in admitted if p.enqueue_time is None]
            self.buffer.release_many(rejected, port=output_port)
            self.stats.dropped_scheduler += len(rejected)
            if self.telemetry:
                self.stats.port(output_port).dropped_scheduler += len(rejected)
        self.stats.admitted += accepted
        return accepted

    # -- queries -------------------------------------------------------------------------
    def port(self, name: str) -> OutputPort:
        return self.ports[name]

    def port_names(self) -> List[str]:
        return list(self.ports)

    def buffered_packets(self) -> int:
        return sum(port.backlog_packets() for port in self.ports.values())

    def total_transmitted(self) -> int:
        return sum(port.transmitted_packets for port in self.ports.values())

    def metrics_snapshot(self) -> Dict[str, float]:
        """Flat ``<switch>.<metric>`` counters for the metrics registry.

        Read lazily at registry snapshot time — the forwarding path never
        updates anything beyond the counters it already maintains.  With
        telemetry off the per-port counters are not tracked; the port-level
        backlog and drop counts (kept by the ports themselves) still are.
        """
        prefix = self.name
        stats = self.stats
        out: Dict[str, float] = {
            f"{prefix}.received": stats.received,
            f"{prefix}.admitted": stats.admitted,
            f"{prefix}.transmitted": stats.transmitted,
            f"{prefix}.dropped_admission": stats.dropped_admission,
            f"{prefix}.dropped_scheduler": stats.dropped_scheduler,
            f"{prefix}.buffer.used_cells": self.buffer.used_cells,
            f"{prefix}.buffer.used_bytes": self.buffer.used_bytes,
            f"{prefix}.buffer.total_cells": self.buffer.total_cells,
        }
        for name in sorted(self.ports):
            port = self.ports[name]
            out[f"{prefix}.{name}.backlog"] = port.backlog_packets()
            out[f"{prefix}.{name}.dropped"] = port.dropped_packets
            out[f"{prefix}.{name}.transmitted"] = port.transmitted_packets
        if self.telemetry:
            for name, counters in sorted(stats.per_port.items()):
                out[f"{prefix}.{name}.dropped_admission"] = \
                    counters.dropped_admission
                out[f"{prefix}.{name}.dropped_scheduler"] = \
                    counters.dropped_scheduler
        return out
