"""Abstract syntax tree for the transaction language.

Every node is a small frozen dataclass.  The tree is intentionally flat:
there are two statement forms (assignment and ``if``/``elif``/``else``) and a
handful of expression forms, which is all the paper's transactions need.

Nodes record the source line they came from so the interpreter and the atom
analyser can produce error messages that point back at the program text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union


class Node:
    """Base class for every AST node."""

    line: int

    def children(self) -> Iterator["Node"]:
        """Iterate over direct child nodes (used by generic tree walks)."""
        return iter(())


# --------------------------------------------------------------------------- #
# Expressions                                                                 #
# --------------------------------------------------------------------------- #
class Expression(Node):
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Number(Expression):
    """A numeric literal (``int`` or ``float``)."""

    value: Union[int, float]
    line: int = 0


@dataclass(frozen=True)
class Boolean(Expression):
    """A ``true`` / ``false`` literal."""

    value: bool
    line: int = 0


@dataclass(frozen=True)
class Name(Expression):
    """A bare identifier: a local, a state variable or a parameter."""

    identifier: str
    line: int = 0


@dataclass(frozen=True)
class Attribute(Expression):
    """Dotted access such as ``p.length`` or ``f.weight``.

    ``obj`` is the name to the left of the dot (always a plain name in this
    language) and ``attribute`` the field to the right.
    """

    obj: str
    attribute: str
    line: int = 0


@dataclass(frozen=True)
class Subscript(Expression):
    """Indexing into a per-flow table, e.g. ``last_finish[f]``."""

    obj: str
    index: Expression
    line: int = 0

    def children(self) -> Iterator[Node]:
        yield self.index


@dataclass(frozen=True)
class Call(Expression):
    """A builtin call such as ``min(a, b)``, ``max(a, b)`` or ``flow(p)``."""

    function: str
    args: Tuple[Expression, ...]
    line: int = 0

    def children(self) -> Iterator[Node]:
        return iter(self.args)


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary minus or ``not``."""

    operator: str
    operand: Expression
    line: int = 0

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass(frozen=True)
class BinOp(Expression):
    """Arithmetic: ``+``, ``-``, ``*``, ``/``, ``%``."""

    operator: str
    left: Expression
    right: Expression
    line: int = 0

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass(frozen=True)
class Compare(Expression):
    """Comparison: ``<``, ``<=``, ``>``, ``>=``, ``==``, ``!=``."""

    operator: str
    left: Expression
    right: Expression
    line: int = 0

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass(frozen=True)
class BoolOp(Expression):
    """``and`` / ``or`` over two or more operands (short-circuiting)."""

    operator: str
    operands: Tuple[Expression, ...]
    line: int = 0

    def children(self) -> Iterator[Node]:
        return iter(self.operands)


@dataclass(frozen=True)
class Membership(Expression):
    """``key in table`` / ``key not in table`` over a per-flow table."""

    item: Expression
    table: str
    negated: bool = False
    line: int = 0

    def children(self) -> Iterator[Node]:
        yield self.item


# --------------------------------------------------------------------------- #
# Statements                                                                  #
# --------------------------------------------------------------------------- #
class Statement(Node):
    """Base class for statement nodes."""


#: Assignment targets are names (locals or state variables), packet fields
#: (``p.rank = ...``) or per-flow table entries (``last_finish[f] = ...``).
AssignTarget = Union[Name, Attribute, Subscript]


@dataclass(frozen=True)
class Assign(Statement):
    """``target = value``."""

    target: AssignTarget
    value: Expression
    line: int = 0

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value


@dataclass(frozen=True)
class If(Statement):
    """``if`` / ``elif`` / ``else``.

    ``elif`` chains are desugared by the parser into a nested ``If`` in the
    ``orelse`` branch, so the interpreter only ever sees two-way branches.
    """

    condition: Expression
    body: Tuple[Statement, ...]
    orelse: Tuple[Statement, ...] = ()
    line: int = 0

    def children(self) -> Iterator[Node]:
        yield self.condition
        yield from self.body
        yield from self.orelse


@dataclass(frozen=True)
class Program(Node):
    """A whole transaction: an ordered sequence of statements."""

    statements: Tuple[Statement, ...]
    source: str = ""
    line: int = 1

    def children(self) -> Iterator[Node]:
        return iter(self.statements)

    def walk(self) -> Iterator[Node]:
        """Iterate over every node in the program, depth first."""
        stack: List[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())


def iter_assignments(program: Program) -> Iterator[Assign]:
    """Yield every assignment in the program, including nested ones."""
    for node in program.walk():
        if isinstance(node, Assign):
            yield node


def format_node(node: Node) -> str:
    """Render an expression or statement back to (roughly) source form.

    Used by error messages and by the analysis report; it is not a full
    pretty-printer and does not try to reproduce the original layout.
    """
    if isinstance(node, Number):
        return repr(node.value)
    if isinstance(node, Boolean):
        return "true" if node.value else "false"
    if isinstance(node, Name):
        return node.identifier
    if isinstance(node, Attribute):
        return f"{node.obj}.{node.attribute}"
    if isinstance(node, Subscript):
        return f"{node.obj}[{format_node(node.index)}]"
    if isinstance(node, Call):
        args = ", ".join(format_node(arg) for arg in node.args)
        return f"{node.function}({args})"
    if isinstance(node, UnaryOp):
        spacer = " " if node.operator == "not" else ""
        return f"{node.operator}{spacer}{format_node(node.operand)}"
    if isinstance(node, BinOp) or isinstance(node, Compare):
        return f"{format_node(node.left)} {node.operator} {format_node(node.right)}"
    if isinstance(node, BoolOp):
        joiner = f" {node.operator} "
        return joiner.join(format_node(op) for op in node.operands)
    if isinstance(node, Membership):
        op = "not in" if node.negated else "in"
        return f"{format_node(node.item)} {op} {node.table}"
    if isinstance(node, Assign):
        return f"{format_node(node.target)} = {format_node(node.value)}"
    if isinstance(node, If):
        return f"if {format_node(node.condition)}: ..."
    if isinstance(node, Program):
        return f"<program with {len(node.statements)} statements>"
    return repr(node)  # pragma: no cover - defensive
