"""Event primitives for the discrete-event simulator.

The simulator processes :class:`Event` objects in non-decreasing time order;
events scheduled for the same instant run in the order they were scheduled
(a monotonically increasing sequence number breaks ties), which keeps runs
deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..exceptions import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering compares ``(time, seq)`` only; the callback itself is excluded
    from comparisons.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when its time comes."""
        self.cancelled = True


class EventQueue:
    """A priority queue of events ordered by (time, scheduling order)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()

    def push(self, time: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        event = Event(time=time, seq=next(self._seq), callback=callback, name=name)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
