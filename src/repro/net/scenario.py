"""Declarative fabric scenarios: topology + traffic matrix + schedulers.

A :class:`Scenario` is a description, not a run: a topology builder, a list
of :class:`Demand` entries (the traffic matrix), one or more named
scheduler *variants* (e.g. ``{"SRPT": ..., "FIFO": ...}``) and a duration.
``Scenario.run()`` instantiates a fresh :class:`~repro.net.fabric.Fabric`
per variant, replays the demands, and returns a :class:`ScenarioResult`
per variant with per-flow delay aggregates, flow-completion times, packet
conservation counters and per-node/per-port switch stats — everything the
experiment registry and the CLI report need.

Scenarios register themselves in :data:`SCENARIOS` via :func:`register`,
the fabric-level analogue of the experiment registry in
:mod:`repro.reporting.experiments` (which wraps the built-in scenarios so
``repro run``/``repro list`` see them).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.packet import Packet
from ..core.seeds import derive_seed
from ..exceptions import ConservationError, TrafficError
from ..metrics.fct import FCTSummary, flow_completions_from_sink
from ..sim.simulator import Simulator
from ..traffic.distributions import web_search_flow_sizes
from ..traffic.flows import FlowSpec
from ..traffic.generators import (
    cbr_arrivals,
    flow_arrivals,
    lazy_merge_arrivals,
    onoff_arrivals,
    poisson_arrivals,
)
from .fabric import Fabric, SchedulerFactory
from .faults import FaultPlan
from .topology import Network

Arrival = Tuple[float, Packet]


def _accepts_seed(callable_obj) -> bool:
    """Whether an explicit-arrivals callable takes a ``seed`` argument."""
    try:
        parameters = inspect.signature(callable_obj).parameters
    except (TypeError, ValueError):  # builtins without introspectable sigs
        return False
    return "seed" in parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


#: Flows at or below this size count as "short" in FCT summaries, matching
#: the band the datacenter-transport literature (and the single-port
#: Section 3.4 benchmark) reports separately.
SHORT_FLOW_BYTES = 100_000


@dataclass
class Demand:
    """One entry of a scenario's traffic matrix.

    ``kind`` selects the generator:

    * ``"cbr"`` / ``"poisson"`` / ``"onoff"`` — a single long-lived flow at
      ``rate_bps`` from ``src`` to ``dst``;
    * ``"flows"`` — finite flows (Poisson arrivals, heavy-tailed sizes)
      offered at ``rate_bps`` aggregate load, packets tagged with the
      SJF/SRPT/LAS metadata — the FCT workload;
    * ``"explicit"`` — caller-provided ``(time, packet)`` pairs via
      ``arrivals`` (packets are stamped with ``src``/``dst``).  Pass a
      *callable* returning the pairs so every scheduler variant replays an
      identical fresh stream; if the callable accepts a ``seed``
      parameter it is called with the demand's effective seed, so
      randomised explicit mixes respond to the scenario base seed (and
      campaign replicates) like the built-in generators do.

    ``seed`` defaults to ``None``, meaning the effective seed is *derived*
    from ``(scenario base seed, flow name)`` with
    :func:`~repro.core.seeds.derive_seed` — several poisson/onoff/flows
    demands in one scenario get independent streams instead of all sampling
    the identical sequence.  An explicit ``seed=`` pins the stream
    regardless of the scenario's base seed.
    """

    src: str
    dst: str
    rate_bps: float = 0.0
    kind: str = "cbr"
    flow: Optional[str] = None
    packet_size: int = 1500
    start_time: float = 0.0
    duration: Optional[float] = None
    seed: Optional[int] = None
    fields: Dict[str, Any] = field(default_factory=dict)
    arrivals: Optional[Iterable[Arrival]] = None

    def flow_name(self) -> str:
        return self.flow if self.flow is not None else f"{self.src}->{self.dst}"

    def effective_seed(self, base_seed: int = 0) -> int:
        """The RNG seed this demand uses under the given scenario base seed."""
        if self.seed is not None:
            return self.seed
        return derive_seed(base_seed, self.flow_name())

    def build_arrivals(self, scenario_duration: float, base_seed: int = 0,
                       load_scale: float = 1.0) -> Iterable[Arrival]:
        duration = (self.duration if self.duration is not None
                    else scenario_duration)
        if load_scale <= 0:
            raise TrafficError(f"load_scale must be positive, got {load_scale}")
        if self.kind == "explicit":
            if self.arrivals is None:
                raise TrafficError("explicit demand needs an arrivals iterable")
            if callable(self.arrivals):
                if _accepts_seed(self.arrivals):
                    arrivals = self.arrivals(seed=self.effective_seed(base_seed))
                else:
                    arrivals = self.arrivals()
            else:
                arrivals = self.arrivals
            return self._address(arrivals)
        seed = self.effective_seed(base_seed)
        spec = FlowSpec(
            name=self.flow_name(),
            rate_bps=self.rate_bps * load_scale,
            packet_size=self.packet_size,
            start_time=self.start_time,
            fields=dict(self.fields),
            src=self.src,
            dst=self.dst,
        )
        if self.kind == "cbr":
            return cbr_arrivals(spec, duration=duration)
        if self.kind == "poisson":
            return poisson_arrivals(spec, duration=duration, seed=seed)
        if self.kind == "onoff":
            return onoff_arrivals(spec, duration=duration, seed=seed)
        if self.kind == "flows":
            return self._address(flow_arrivals(
                f"{self.flow_name()}:",
                load_bps=self.rate_bps * load_scale,
                duration=duration,
                size_distribution=web_search_flow_sizes(),
                packet_size=self.packet_size,
                seed=seed,
                src=self.src,
                dst=self.dst,
            ), fields=self.fields)
        raise TrafficError(f"unknown demand kind {self.kind!r}")

    def _address(self, arrivals: Iterable[Arrival],
                 fields: Optional[Dict[str, Any]] = None) -> Iterable[Arrival]:
        for time, packet in arrivals:
            if packet.src is None:
                packet.src = self.src
            if packet.dst is None:
                packet.dst = self.dst
            if fields:
                for key, value in fields.items():
                    # Packet.set (not a direct fields write): zero-metadata
                    # packets share an immutable empty mapping.
                    if key not in packet.fields:
                        packet.set(key, value)
            yield time, packet


@dataclass
class ScenarioResult:
    """Outcome of one scenario variant."""

    scenario: str
    variant: str
    duration: float
    conservation: Dict[str, int]
    #: flow label -> {packets, bytes, mean/max delay}
    flow_stats: Dict[str, Dict[str, Any]]
    #: Per-destination-host FCT summary over completed flows (``"flows"``
    #: demands only; ``None`` when nothing completed).
    fct: Optional[FCTSummary]
    #: FCT summary over short flows (<= :data:`SHORT_FLOW_BYTES`) — the band
    #: SRPT-style scheduling is judged on.
    fct_short: Optional[FCTSummary]
    stats_by_node: Dict[str, Dict]
    #: Fault-injection outcome (topology changes, loss by cause); empty
    #: when the scenario runs without a fault plan.
    fault_summary: Dict[str, Any] = field(default_factory=dict)
    #: Simulator events processed for this variant — deterministic for a
    #: given scenario/seed, and the denominator behind the campaign
    #: records' ``events_per_s``.
    events: int = 0

    def delivered(self) -> int:
        return self.conservation["delivered"]

    def lost_to_faults(self) -> int:
        return self.conservation.get("lost_to_faults", 0)

    def flow_delay(self, flow: str, which: str = "max") -> Optional[float]:
        stats = self.flow_stats.get(flow)
        return None if stats is None else stats.get(f"{which}_delay")

    def check_conservation(self) -> Dict[str, int]:
        """Assert the packet-conservation identity; returns the counters.

        Raises :class:`~repro.exceptions.ConservationError` unless
        ``injected == delivered + dropped + lost_to_faults + in_flight`` —
        a violated identity means the fabric leaked or double-counted
        packets, which is always a bug.
        """
        c = self.conservation
        accounted = (c["delivered"] + c["dropped"]
                     + c.get("lost_to_faults", 0) + c["in_flight"])
        if c["injected"] != accounted:
            raise ConservationError(
                f"scenario {self.scenario!r} variant {self.variant!r} "
                f"leaked packets: injected={c['injected']} != "
                f"delivered={c['delivered']} + dropped={c['dropped']} + "
                f"lost_to_faults={c.get('lost_to_faults', 0)} + "
                f"in_flight={c['in_flight']} (= {accounted})"
            )
        return c


def _pin_tree_kernel(factory: SchedulerFactory,
                     enabled: bool) -> SchedulerFactory:
    """Wrap a scheduler factory to force the fused-kernel switch."""
    def pinned(switch: str, port: str):
        scheduler = factory(switch, port)
        set_kernel = getattr(scheduler, "set_tree_kernel", None)
        if set_kernel is not None:
            set_kernel(enabled)
        return scheduler
    return pinned


#: Program-variant builder: ``lang_backend -> (switch, port) -> scheduler``.
#: The outer call fixes the transaction-language execution backend
#: (``"compiled"`` / ``"interpreted"``), so sweeping engines can compare
#: both backends of the *same* program on the identical workload.
ProgramVariantBuilder = Callable[[Optional[str]], SchedulerFactory]


@dataclass
class Scenario:
    """A runnable fabric experiment description."""

    name: str
    title: str
    topology: Callable[[], Network]
    demands: List[Demand]
    #: Variant label -> scheduler factory ``(switch, port) -> scheduler``.
    variants: Mapping[str, SchedulerFactory]
    duration: float
    ecmp: bool = False
    keep_packets: bool = False
    quick_duration: Optional[float] = None
    #: Optional lang-program twins of ``variants`` (same labels): used when
    #: ``run(lang_backend=...)`` selects a transaction-language execution
    #: backend.  Default runs keep using the native ``variants`` factories.
    program_variants: Optional[Mapping[str, ProgramVariantBuilder]] = None
    #: Base seed for derived per-demand seeds (see :meth:`Demand.effective_seed`).
    base_seed: int = 0
    #: Optional fault schedule executed against every variant's fabric —
    #: link/switch failures and probabilistic loss (see
    #: :mod:`repro.net.faults`).  Identical plan per variant, so variants
    #: stay paired under faults exactly as they are under traffic.
    fault_plan: Optional[FaultPlan] = None
    paper_reference: str = ""
    notes: str = ""

    def scheduler_factory(self, label: str,
                          lang_backend: Optional[str] = None) -> SchedulerFactory:
        """Resolve one variant label to a per-port scheduler factory."""
        if label not in self.variants:
            known = ", ".join(self.variants)
            raise KeyError(
                f"unknown variant {label!r} of scenario {self.name!r}; "
                f"known variants: {known}"
            )
        if lang_backend is None:
            return self.variants[label]
        if not self.program_variants or label not in self.program_variants:
            raise KeyError(
                f"scenario {self.name!r} has no program variant for "
                f"{label!r}; cannot run with lang_backend={lang_backend!r}"
            )
        return self.program_variants[label](lang_backend)

    def run(self, quick: bool = False, pifo_backend=None,
            variant: Optional[str] = None,
            lang_backend: Optional[str] = None,
            load_scale: float = 1.0,
            base_seed: Optional[int] = None,
            telemetry: bool = True,
            tree_kernel: Optional[bool] = None,
            trace_hook: Optional[Callable[[Fabric], None]] = None,
            workload_cache=None,
            ) -> Dict[str, ScenarioResult]:
        """Run each scheduler variant on a fresh fabric; results by label.

        ``lang_backend`` switches to the scenario's transaction-language
        ``program_variants`` compiled/interpreted twins; ``load_scale``
        multiplies every rate-driven demand's offered load (explicit
        arrival lists replay unscaled); ``base_seed`` overrides the
        scenario's base seed for derived per-demand seeds.

        ``telemetry=False`` (campaign sweeps) skips per-hop traces and
        per-port stat breakdowns; departure order, per-flow aggregates,
        FCT summaries and conservation counters are identical either way
        (the in-band ``prev_wait_time`` stamp LSTF consumes is always
        maintained) — only ``stats_by_node``'s ``per_port`` maps come back
        empty.

        ``tree_kernel`` pins the fused whole-tree kernels
        (:mod:`repro.lang.treekernel`): ``None`` (default) keeps each
        scheduler's own default (on, minus unfusable trees),
        ``False`` forces the interpreted scheduler *and* interpreted
        fabric delivery — the lockstep reference configuration.

        ``trace_hook`` is called with each variant's fabric after
        construction and before any traffic: the observability layer's
        seam for attaching a :class:`repro.obs.TraceCollector` (which
        requires ``tree_kernel=False`` so the wrappable interpreted
        delivery path is in effect).

        ``workload_cache`` (a
        :class:`repro.campaign.workload_cache.WorkloadCache`) replays
        this run's arrival schedule and topology from the cache instead
        of rebuilding them — campaign workers pass their process cache so
        paired runs stop regenerating the identical workload.  Replays
        are observably identical to a rebuild (fresh packets stamped from
        recorded prototypes, in the recorded merge order).
        """
        duration = (self.quick_duration if quick and self.quick_duration
                    else self.duration)
        seed = self.base_seed if base_seed is None else base_seed
        selected = ([variant] if variant is not None else list(self.variants))
        results: Dict[str, ScenarioResult] = {}
        for label in selected:
            factory = self.scheduler_factory(label, lang_backend)
            if tree_kernel is not None:
                factory = _pin_tree_kernel(factory, tree_kernel)
            sim = Simulator()
            fabric = Fabric(
                sim,
                (workload_cache.topology_for(self)
                 if workload_cache is not None else self.topology()),
                factory,
                ecmp=self.ecmp,
                pifo_backend=pifo_backend,
                keep_packets=self.keep_packets,
                telemetry=telemetry,
                fused_delivery=None if tree_kernel is not False else False,
                fault_plan=self.fault_plan,
            )
            if trace_hook is not None:
                trace_hook(fabric)
            if workload_cache is not None:
                protos = workload_cache.arrivals_for(
                    self, duration, base_seed=seed, load_scale=load_scale)
                for host in sorted(protos):
                    fabric.attach_source(
                        host, workload_cache.replay(protos[host]))
            else:
                by_host: Dict[str, List[Iterable[Arrival]]] = {}
                for demand in self.demands:
                    by_host.setdefault(demand.src, []).append(
                        demand.build_arrivals(duration, base_seed=seed,
                                              load_scale=load_scale)
                    )
                for host, streams in sorted(by_host.items()):
                    fabric.attach_source(host, lazy_merge_arrivals(*streams))
            fabric.run(until=duration, drain=True)
            results[label] = self._collect(fabric, label, duration)
        return results

    def _collect(self, fabric: Fabric, label: str,
                 duration: float) -> ScenarioResult:
        flow_stats: Dict[str, Dict[str, Any]] = {}
        completions = []
        for host in sorted(fabric.host_sinks):
            sink = fabric.host_sinks[host]
            for flow, aggregate in sorted(sink.aggregates.items()):
                flow_stats[flow] = {
                    "dst": host,
                    "packets": aggregate.packets,
                    "bytes": aggregate.bytes,
                    "mean_delay": aggregate.mean_delay,
                    "max_delay": aggregate.delay_max,
                }
            completions.extend(flow_completions_from_sink(sink))
        short = [c for c in completions if c.size_bytes <= SHORT_FLOW_BYTES]
        result = ScenarioResult(
            scenario=self.name,
            variant=label,
            duration=duration,
            conservation=fabric.conservation_check(),
            flow_stats=flow_stats,
            fct=FCTSummary.from_completions(completions) if completions else None,
            fct_short=FCTSummary.from_completions(short) if short else None,
            stats_by_node=fabric.stats_by_node(),
            fault_summary=fabric.fault_summary(),
            events=fabric.sim.events_processed,
        )
        # Every run asserts the conservation identity — a leak anywhere in
        # the datapath (fused or interpreted, faulted or not) fails fast.
        result.check_conservation()
        return result


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
SCENARIOS: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (idempotent by name)."""
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(
            f"unknown scenario {name!r}; known scenarios: {known}"
        ) from None


def list_scenarios() -> List[Scenario]:
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]
