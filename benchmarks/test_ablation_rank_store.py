"""Ablation (Section 5.2) — flow scheduler + rank store vs a flat sorted
array.

The paper rejects the naive design (sort all ~60 K buffered packets) because
it needs one comparator per packet; the chosen design sorts only the ~1 K
flow heads.  This ablation quantifies both the hardware argument (parallel
comparators required) and the software analogue (Python insert cost scaling
with sorted-structure size).
"""

from __future__ import annotations

import random

from conftest import report

from repro.core import PIFO
from repro.hardware import FlowSchedulerDesign, PIFOBlock, flat_sorted_array_comparisons

BUFFERED_PACKETS = 60_000
FLOWS = 1_000


def test_ablation_comparator_requirements(benchmark):
    def compute():
        flat = flat_sorted_array_comparisons(BUFFERED_PACKETS)
        decomposed = FlowSchedulerDesign(num_flows=1024).num_flows
        return flat, decomposed

    flat, decomposed = benchmark(compute)
    report(
        "Ablation: parallel comparators required",
        [
            {"design": "flat sorted array (all packets)", "comparators": flat,
             "feasible_at_1GHz": False},
            {"design": "flow scheduler + rank store", "comparators": decomposed,
             "feasible_at_1GHz": True},
        ],
    )
    assert flat / decomposed >= 50


def test_ablation_sorted_structure_size(benchmark):
    """With 60 K packets over 1 K flows, the flow scheduler holds at most one
    entry per flow while the flat PIFO holds every packet."""
    def run(packets=20_000, flows=FLOWS):
        rng = random.Random(0)
        flat = PIFO()
        block = PIFOBlock(capacity_flows=flows, rank_store_capacity=packets)
        virtual_time = 0.0
        for i in range(packets):
            flow = f"f{rng.randrange(flows)}"
            virtual_time += 1.0
            flat.push((flow, i), virtual_time)
            block.enqueue(0, rank=virtual_time, flow=flow, metadata=i)
        return len(flat), len(block.flow_scheduler), len(block.rank_store)

    flat_size, heads, stored = benchmark(run)
    report(
        "Ablation: sorted-structure occupancy (20 K packets, 1 K flows)",
        [
            {"design": "flat PIFO", "sorted_entries": flat_size, "fifo_entries": 0},
            {"design": "flow scheduler + rank store", "sorted_entries": heads,
             "fifo_entries": stored},
        ],
    )
    assert flat_size == 20_000
    assert heads <= FLOWS
    assert heads + stored == 20_000
