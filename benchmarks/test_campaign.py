"""Campaign engine benchmark: serial vs warm-engine sweep throughput.

Benchmarks the built-in ``paper_sweep`` campaign (quick durations) at two
sizes — the stock 24-run table and a 96-run (4x replicate) table that
shows amortisation — comparing serial execution against the warm-worker
engine.  Methodology fixes over the original benchmark:

* **Cold start is measured separately.**  Pool creation, worker imports,
  scenario registration and tree-kernel pre-warming are a one-time cost
  of a *persistent* engine, recorded as ``cold_start_s`` per worker
  count, not smeared into sweep throughput.
* **Warm phase is best-of-N, interleaved.**  Serial and every engine
  configuration execute the campaign ``REPEATS`` times in round-robin
  order (serial, w1, w2, ... then again) and the fastest pass per
  configuration is recorded: the first round doubles as warm-up (kernel
  compilation in the serial process, lease-size EMA learning in the
  engine), and interleaving means slow machine-wide drift — dominant on
  a 1-CPU CI box, where back-to-back identical configs spread ~5% —
  lands on all configurations equally instead of biasing whichever
  phase ran during a slow stretch.

Every engine store is verified identical to the serial one modulo
wall-clock fields, and the results land in ``BENCH_campaign.json`` at the
repo root (the artifact CI uploads and the perf gate checks —
``speedup_max_workers_vs_serial`` must stay >= 1.0).  Set
``BENCH_QUICK=1`` to benchmark a fig6-only subset for smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from conftest import report

from repro.campaign import (
    Campaign,
    CampaignRunner,
    ResultStore,
    WarmupSpec,
    WarmWorkerEngine,
    get_campaign,
    strip_timing,
)

BENCH_QUICK = bool(os.environ.get("BENCH_QUICK"))
BENCH_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"
WORKER_COUNTS = [1, 2] if BENCH_QUICK else [1, 2, 4]
#: Measured passes per configuration; the fastest is recorded.
REPEATS = 2 if BENCH_QUICK else 3


def _base_campaign() -> Campaign:
    if BENCH_QUICK:
        return Campaign(
            name="paper_sweep_smoke",
            title="fig6 subset of paper_sweep",
            scenarios=["fig6_chain"],
            pifo_backends=["sorted", "calendar", "quantized"],
            lang_backends=["compiled", "interpreted"],
        )
    return get_campaign("paper_sweep")


def _configs():
    base = _base_campaign()
    configs = [("runs24", base)]
    if not BENCH_QUICK:
        configs.append(("runs96", replace(
            base, name="paper_sweep_x4", replicates=4,
            title="paper_sweep with 4x replicates")))
    return configs


def _timed_pass(campaign: Campaign, store: ResultStore, workers: int,
                engine=None) -> float:
    """One measured campaign pass into a cleared store."""
    store.clear()
    runner = CampaignRunner(campaign, store, workers=workers, quick=True,
                            engine=engine)
    start = time.perf_counter()
    runner.run()
    return time.perf_counter() - start


def _measure_config(campaign: Campaign, tmp_dir: Path, label: str):
    """Interleaved best-of-REPEATS: serial and every engine, round-robin.

    Returns ``(stores, best, cold_starts)`` keyed by configuration name
    (``"serial"`` or the worker count) — each round times every
    configuration once, so slow machine drift cannot bias one of them.
    """
    engines = {}
    stores = {"serial": ResultStore(tmp_dir / f"{label}_serial.jsonl")}
    best = {"serial": float("inf")}
    cold_starts = {}
    try:
        for workers in WORKER_COUNTS:
            engines[workers] = WarmWorkerEngine(
                workers=workers, warmup=WarmupSpec.for_campaign(campaign))
            cold_starts[workers] = engines[workers].warm()
            stores[workers] = ResultStore(tmp_dir / f"{label}_w{workers}.jsonl")
            best[workers] = float("inf")
        for _ in range(REPEATS):
            elapsed = _timed_pass(campaign, stores["serial"], workers=1)
            best["serial"] = min(best["serial"], elapsed)
            for workers in WORKER_COUNTS:
                elapsed = _timed_pass(campaign, stores[workers],
                                      workers=workers,
                                      engine=engines[workers])
                best[workers] = min(best[workers], elapsed)
    finally:
        for engine in engines.values():
            engine.close()
    return stores, best, cold_starts


def test_campaign_serial_vs_engine_throughput(tmp_path):
    """The warm engine must preserve results bit-for-bit and beat serial."""
    artifact = {
        "campaign": _base_campaign().name,
        "cpu_count": os.cpu_count(),
        "configs": {},
    }
    rows = []
    for label, campaign in _configs():
        total = campaign.size()
        stores, best, cold_starts = _measure_config(campaign, tmp_path, label)
        serial_s = best["serial"]
        serial = [strip_timing(r) for r in stores["serial"].load()]
        assert len(serial) == total
        # Every run must have delivered traffic — an empty result at
        # sweep scale means a mis-wired factor, not a slow machine.
        assert all(r["delivered"] > 0 for r in serial)

        config = {
            "runs": total,
            "serial": {"elapsed_s": serial_s,
                       "runs_per_second": total / serial_s},
            "workers": {},
        }
        rows.append({"config": label, "workers": "serial", "runs": total,
                     "elapsed_s": serial_s,
                     "runs_per_second": total / serial_s,
                     "cold_start_s": 0.0, "speedup_vs_serial": 1.0})
        for workers in WORKER_COUNTS:
            elapsed = best[workers]
            parallel = [strip_timing(r) for r in stores[workers].load()]
            assert parallel == serial, (
                f"{label} workers={workers} diverged from serial")
            config["workers"][str(workers)] = {
                "elapsed_s": elapsed,
                "runs_per_second": total / elapsed,
                "cold_start_s": cold_starts[workers],
            }
            rows.append({"config": label, "workers": workers, "runs": total,
                         "elapsed_s": elapsed,
                         "runs_per_second": total / elapsed,
                         "cold_start_s": cold_starts[workers],
                         "speedup_vs_serial": serial_s / elapsed})
        config["speedup_max_workers_vs_serial"] = (
            serial_s / config["workers"][str(WORKER_COUNTS[-1])]["elapsed_s"])
        artifact["configs"][label] = config

    # Headline metrics: the largest configuration (amortisation visible),
    # mirrored at the top level for the perf gate and the README.
    headline = artifact["configs"][list(artifact["configs"])[-1]]
    artifact["runs"] = headline["runs"]
    artifact["workers"] = headline["workers"]
    artifact["speedup_max_workers_vs_serial"] = (
        headline["speedup_max_workers_vs_serial"])
    report("Campaign sweep throughput (paper_sweep, quick durations, "
           "warm phase)", rows)
    BENCH_ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
