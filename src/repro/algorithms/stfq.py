"""Start-Time Fair Queueing (STFQ) — Figure 1 of the paper.

STFQ is the practical approximation of Weighted Fair Queueing the paper uses
for every fair-queueing example.  Before a packet is enqueued, its *virtual
start time* is computed as the maximum of (a) the virtual finish time of the
previous packet of the same flow and (b) the scheduler's *virtual time*, a
single state variable tracking the virtual start time of the last dequeued
packet.  Packets are scheduled in increasing virtual-start-time order.

The transaction below is a direct transliteration of Figure 1::

    f = flow(p)
    if f in last_finish:
        p.start = max(virtual_time, last_finish[f])
    else:
        p.start = virtual_time
    last_finish[f] = p.start + p.length / f.weight
    p.rank = p.start

plus the dequeue-side update of ``virtual_time`` that STFQ requires (the
paper discusses this state in Section 7: without it a newly active flow could
be starved of its fair share).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from ..core.packet import Packet
from ..core.pifo import Rank
from ..core.transaction import SchedulingTransaction, TransactionContext


class STFQTransaction(SchedulingTransaction):
    """Scheduling transaction for Start-Time Fair Queueing.

    Parameters
    ----------
    weights:
        Mapping from flow identifier to its weight.  Flows absent from the
        mapping use ``default_weight``.  A flow with weight *w* receives a
        share of link capacity proportional to *w* while backlogged.
    default_weight:
        Weight used for flows not present in ``weights``.
    """

    state_variables = ("virtual_time", "last_finish")

    def __init__(
        self,
        weights: Optional[Mapping[str, float]] = None,
        default_weight: float = 1.0,
    ) -> None:
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        self.weights: Dict[str, float] = dict(weights or {})
        for flow, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"weight of flow {flow!r} must be positive")
        self.default_weight = default_weight
        super().__init__()

    def initial_state(self) -> Dict[str, Any]:
        return {"virtual_time": 0.0, "last_finish": {}}

    def weight_of(self, flow: str) -> float:
        """Return the configured weight of ``flow``."""
        return self.weights.get(flow, self.default_weight)

    def set_weight(self, flow: str, weight: float) -> None:
        """Set or update a flow's weight (takes effect on the next packet)."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.weights[flow] = weight

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        flow = ctx.element_flow
        last_finish: Dict[str, float] = self.state["last_finish"]
        virtual_time: float = self.state["virtual_time"]

        if flow in last_finish:
            start = max(virtual_time, last_finish[flow])
        else:
            start = virtual_time
        last_finish[flow] = start + ctx.element_length / self.weight_of(flow)
        return start

    def on_dequeue(self, element: Any, ctx: TransactionContext) -> None:
        # The virtual time advances to the start tag of the packet being
        # dequeued; the start tag is exactly the PIFO rank.
        rank = ctx.extras.get("rank")
        if rank is not None and rank > self.state["virtual_time"]:
            self.state["virtual_time"] = rank

    def describe(self) -> str:
        return f"STFQ(weights={self.weights or 'uniform'})"


#: Alias matching the paper's terminology: the WFQ examples in Figures 3 and
#: 4 all use the STFQ transaction.
WFQTransaction = STFQTransaction
