"""Tests for the token-bucket shaping transaction (Figure 4c)."""

from __future__ import annotations

import pytest

from repro.algorithms import TokenBucketSchedulingGate, TokenBucketShapingTransaction
from repro.core import Packet, TransactionContext


def ctx(now, length):
    return TransactionContext(now=now, element_length=length)


class TestTokenBucketShapingTransaction:
    def test_burst_sends_immediately(self):
        txn = TokenBucketShapingTransaction(rate_bps=8e6, burst_bytes=3000)
        send = txn(Packet(flow="A", length=1500), ctx(0.0, 1500))
        assert send == pytest.approx(0.0)

    def test_exhausted_bucket_delays_send(self):
        txn = TokenBucketShapingTransaction(rate_bps=8e6, burst_bytes=1000)
        txn(Packet(flow="A", length=1000), ctx(0.0, 1000))  # drains the bucket
        send = txn(Packet(flow="A", length=1000), ctx(0.0, 1000))
        # 1000 bytes at 1 MB/s (8 Mbit/s) -> 1 ms.
        assert send == pytest.approx(0.001)

    def test_long_burst_spaced_at_exactly_rate(self):
        txn = TokenBucketShapingTransaction(rate_bps=8e6, burst_bytes=1000)
        sends = [
            txn(Packet(flow="A", length=1000), ctx(0.0, 1000)) for _ in range(5)
        ]
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        assert all(gap == pytest.approx(0.001) for gap in gaps)

    def test_tokens_replenish_while_idle_up_to_burst(self):
        txn = TokenBucketShapingTransaction(rate_bps=8e6, burst_bytes=2000)
        txn(Packet(flow="A", length=2000), ctx(0.0, 2000))
        # After 10 seconds idle the bucket is full again (but capped at B).
        send = txn(Packet(flow="A", length=2000), ctx(10.0, 2000))
        assert send == pytest.approx(10.0)

    def test_paper_pseudocode_token_arithmetic(self):
        """Follow Figure 4c step by step for a deterministic sequence."""
        txn = TokenBucketShapingTransaction(rate_bps=8e6, burst_bytes=1500,
                                            initial_tokens_bytes=500)
        # now=0: tokens=500, packet 1000 > tokens -> send at (1000-500)/1e6 = 0.5ms
        send1 = txn(Packet(flow="A", length=1000), ctx(0.0, 1000))
        assert send1 == pytest.approx(0.0005)
        assert txn.state["tokens"] == pytest.approx(-500.0)
        # now=1ms: replenish 1000 bytes -> tokens=500; packet 400 fits.
        send2 = txn(Packet(flow="A", length=400), ctx(0.001, 400))
        assert send2 == pytest.approx(0.001)
        assert txn.state["tokens"] == pytest.approx(100.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TokenBucketShapingTransaction(rate_bps=0, burst_bytes=100)
        with pytest.raises(ValueError):
            TokenBucketShapingTransaction(rate_bps=1e6, burst_bytes=0)

    def test_reset_refills_bucket(self):
        txn = TokenBucketShapingTransaction(rate_bps=8e6, burst_bytes=1000)
        txn(Packet(flow="A", length=1000), ctx(0.0, 1000))
        txn.reset()
        assert txn.state["tokens"] == 1000


class TestTokenBucketGate:
    def test_gate_matches_transaction_arithmetic(self):
        txn = TokenBucketShapingTransaction(rate_bps=8e6, burst_bytes=1000)
        gate = TokenBucketSchedulingGate(rate_bps=8e6, burst_bytes=1000)
        for i in range(4):
            now = i * 0.0004
            assert gate.consume(1000, now) == pytest.approx(
                txn(Packet(flow="A", length=1000), ctx(now, 1000))
            )

    def test_conforming_check_does_not_consume(self):
        gate = TokenBucketSchedulingGate(rate_bps=8e6, burst_bytes=1000)
        assert gate.conforming(500, now=0.0)
        assert gate.conforming(500, now=0.0)
        gate.consume(1000, now=0.0)
        assert not gate.conforming(500, now=0.0)
