"""Tests for output ports, packet sources and sinks."""

from __future__ import annotations

import pytest

from repro.algorithms import FIFOTransaction
from repro.baselines import FIFOQueue
from repro.core import Packet, ProgrammableScheduler, single_node_tree
from repro.exceptions import TrafficError
from repro.sim import OutputPort, PacketSink, PacketSource, Simulator, chain_hops
from repro.traffic import FlowSpec, cbr_arrivals


def fifo_port(sim, rate_bps=8e6):
    scheduler = ProgrammableScheduler(single_node_tree(FIFOTransaction()))
    return OutputPort(sim, scheduler, rate_bps=rate_bps, name="p")


class TestOutputPort:
    def test_single_packet_transmission_time(self):
        sim = Simulator()
        port = fifo_port(sim, rate_bps=8e6)  # 1 MB/s
        port.receive(Packet(flow="A", length=1000))
        sim.run()
        assert port.transmitted_packets == 1
        packet = port.sink.packets[0]
        assert packet.departure_time == pytest.approx(0.001)

    def test_back_to_back_serialisation(self):
        sim = Simulator()
        port = fifo_port(sim, rate_bps=8e6)
        for _ in range(3):
            port.receive(Packet(flow="A", length=1000))
        sim.run()
        departures = [p.departure_time for p in port.sink.packets]
        assert departures == pytest.approx([0.001, 0.002, 0.003])

    def test_works_with_baseline_scheduler(self):
        sim = Simulator()
        port = OutputPort(sim, FIFOQueue(), rate_bps=8e6)
        port.receive(Packet(flow="A", length=1000))
        sim.run()
        assert port.transmitted_packets == 1

    def test_utilization_under_light_load(self):
        sim = Simulator()
        port = fifo_port(sim, rate_bps=8e6)
        sim.schedule(0.0, lambda: port.receive(Packet(flow="A", length=1000)))
        sim.run(until=0.01)
        assert port.utilization == pytest.approx(0.1, rel=0.05)

    def test_drop_counted_when_scheduler_refuses(self):
        sim = Simulator()
        scheduler = ProgrammableScheduler(
            single_node_tree(FIFOTransaction(), pifo_capacity=1)
        )
        port = OutputPort(sim, scheduler, rate_bps=1e3)  # slow link, queue fills
        assert port.receive(Packet(flow="A", length=1000))
        assert port.receive(Packet(flow="A", length=1000)) or True  # may buffer
        port.receive(Packet(flow="A", length=1000))
        port.receive(Packet(flow="A", length=1000))
        assert port.dropped_packets >= 1

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            OutputPort(Simulator(), FIFOQueue(), rate_bps=0)


class TestPacketSource:
    def test_replays_arrivals_at_their_times(self):
        sim = Simulator()
        port = fifo_port(sim, rate_bps=80e6)
        spec = FlowSpec(name="A", rate_bps=8e6, packet_size=1000)
        PacketSource(sim, port, cbr_arrivals(spec, duration=0.01))
        sim.run(until=0.02)
        # 8 Mbit/s with 8000-bit packets -> 1 packet per ms -> 10 arrivals in
        # the half-open window [0, 10 ms).
        assert port.transmitted_packets == 10

    def test_out_of_order_arrivals_rejected(self):
        sim = Simulator()
        port = fifo_port(sim)
        bad = [(0.1, Packet(flow="A", length=100)), (0.05, Packet(flow="A", length=100))]
        with pytest.raises(TrafficError):
            PacketSource(sim, port, bad)
            sim.run()

    def test_generated_packet_count(self):
        sim = Simulator()
        port = fifo_port(sim, rate_bps=80e6)
        arrivals = [(0.001 * i, Packet(flow="A", length=100)) for i in range(5)]
        source = PacketSource(sim, port, arrivals)
        sim.run()
        assert source.generated_packets == 5


class TestChainHops:
    def test_packets_traverse_two_hops(self):
        sim = Simulator()
        first = fifo_port(sim, rate_bps=8e6)
        second = fifo_port(sim, rate_bps=8e6)
        chain_hops(sim, first, second)
        first.receive(Packet(flow="A", length=1000))
        sim.run()
        assert first.transmitted_packets == 1
        assert second.transmitted_packets == 1
        assert second.sink.packets[0].departure_time == pytest.approx(0.002)

    def test_transform_applied_between_hops(self):
        sim = Simulator()
        first = fifo_port(sim)
        second = fifo_port(sim)

        def tag(packet):
            packet.set("hop", packet.get("hop", 0) + 1)
            return packet

        chain_hops(sim, first, second, transform=tag)
        first.receive(Packet(flow="A", length=1000))
        sim.run()
        assert second.sink.packets[0].get("hop") == 1

    def test_propagation_delay(self):
        sim = Simulator()
        first = fifo_port(sim, rate_bps=8e6)
        second = fifo_port(sim, rate_bps=8e6)
        chain_hops(sim, first, second, propagation_delay=0.005)
        first.receive(Packet(flow="A", length=1000))
        sim.run()
        assert second.sink.packets[0].departure_time == pytest.approx(0.007)


class TestPacketSink:
    def test_share_by_flow(self):
        sink = PacketSink()
        for flow, count in (("A", 3), ("B", 1)):
            for _ in range(count):
                packet = Packet(flow=flow, length=1000)
                packet.departure_time = 0.001
                sink.record(packet)
        shares = sink.share_by_flow(end=0.01)
        assert shares["A"] == pytest.approx(0.75)

    def test_throughput_window(self):
        sink = PacketSink()
        packet = Packet(flow="A", length=1250)  # 10000 bits
        packet.departure_time = 0.5
        sink.record(packet)
        assert sink.throughput_bps(end=1.0) == pytest.approx(10000)
        assert sink.throughput_bps(start=0.6, end=1.0) == 0.0

    def test_departure_order_and_counts(self):
        sink = PacketSink()
        for flow in ("A", "B", "A"):
            packet = Packet(flow=flow, length=100)
            packet.departure_time = 0.0
            sink.record(packet)
        assert sink.departure_order() == ["A", "B", "A"]
        assert sink.packets_by_flow["A"] == 2
        assert sink.total_bytes() == 300
