"""Tests for Stop-and-Go queueing (Figure 7)."""

from __future__ import annotations

import pytest

from repro.algorithms import FIFOTransaction, StopAndGoShapingTransaction, worst_case_delay_bound
from repro.core import (
    MatchAll,
    Packet,
    ProgrammableScheduler,
    ScheduleTree,
    TransactionContext,
    TreeNode,
)


def build_stop_and_go_tree(frame_length):
    root = TreeNode(name="Root", scheduling=FIFOTransaction())
    shaped = TreeNode(
        name="Framed",
        predicate=MatchAll(),
        scheduling=FIFOTransaction(),
        shaping=StopAndGoShapingTransaction(frame_length=frame_length),
    )
    root.add_child(shaped)
    return ScheduleTree(root)


class TestStopAndGoTransaction:
    def test_release_at_end_of_current_frame(self):
        txn = StopAndGoShapingTransaction(frame_length=0.010)
        send = txn(Packet(flow="A", length=100), TransactionContext(now=0.003))
        assert send == pytest.approx(0.010)

    def test_all_packets_in_one_frame_share_release_time(self):
        txn = StopAndGoShapingTransaction(frame_length=0.010)
        sends = [
            txn(Packet(flow="A", length=100), TransactionContext(now=t))
            for t in (0.001, 0.004, 0.009)
        ]
        assert all(send == pytest.approx(0.010) for send in sends)

    def test_packet_in_next_frame_released_a_frame_later(self):
        txn = StopAndGoShapingTransaction(frame_length=0.010)
        txn(Packet(flow="A", length=100), TransactionContext(now=0.001))
        send = txn(Packet(flow="A", length=100), TransactionContext(now=0.0125))
        assert send == pytest.approx(0.020)

    def test_idle_gap_of_many_frames_handled(self):
        txn = StopAndGoShapingTransaction(frame_length=0.010)
        send = txn(Packet(flow="A", length=100), TransactionContext(now=0.057))
        assert send == pytest.approx(0.060)

    def test_invalid_frame_length(self):
        with pytest.raises(ValueError):
            StopAndGoShapingTransaction(frame_length=0.0)

    def test_delay_bound_helper(self):
        assert worst_case_delay_bound(0.01) == pytest.approx(0.02)
        assert worst_case_delay_bound(0.01, hops=3) == pytest.approx(0.06)
        with pytest.raises(ValueError):
            worst_case_delay_bound(-1.0)
        with pytest.raises(ValueError):
            worst_case_delay_bound(0.01, hops=0)


class TestStopAndGoBehaviour:
    def test_no_packet_leaves_before_its_frame_ends(self):
        scheduler = ProgrammableScheduler(build_stop_and_go_tree(frame_length=0.010))
        scheduler.enqueue(Packet(flow="A", length=100), now=0.002)
        scheduler.enqueue(Packet(flow="A", length=100), now=0.008)
        assert scheduler.dequeue(now=0.009) is None
        assert scheduler.dequeue(now=0.010) is not None
        assert scheduler.dequeue(now=0.010) is not None

    def test_frame_smooths_bursts(self):
        """A burst arriving within one frame leaves together at the frame
        boundary; packets of the next frame leave a frame later."""
        scheduler = ProgrammableScheduler(build_stop_and_go_tree(frame_length=0.010))
        for t in (0.001, 0.002, 0.003):
            scheduler.enqueue(Packet(flow="burst", length=100), now=t)
        scheduler.enqueue(Packet(flow="late", length=100), now=0.011)
        first_frame = scheduler.drain(now=0.0101)
        assert [p.flow for p in first_frame] == ["burst"] * 3
        assert scheduler.dequeue(now=0.015) is None
        second_frame = scheduler.drain(now=0.020)
        assert [p.flow for p in second_frame] == ["late"]

    def test_fifo_order_within_a_frame(self):
        scheduler = ProgrammableScheduler(build_stop_and_go_tree(frame_length=0.010))
        packets = [Packet(flow=f"p{i}", length=100) for i in range(4)]
        for i, packet in enumerate(packets):
            scheduler.enqueue(packet, now=0.001 * (i + 1))
        assert scheduler.drain(now=0.010) == packets

    def test_delay_never_exceeds_two_frames(self):
        scheduler = ProgrammableScheduler(build_stop_and_go_tree(frame_length=0.010))
        arrivals = [0.0005 * i for i in range(30)]
        for t in arrivals:
            scheduler.enqueue(Packet(flow="A", length=100), now=t)
        packets = scheduler.drain_timed(until=0.1)
        assert len(packets) == 30
        bound = worst_case_delay_bound(0.010)
        for packet in packets:
            delay = packet.dequeue_time - packet.arrival_time
            assert delay <= bound + 1e-9
