"""Section 3.5 — limitations of the PIFO abstraction.

Regenerates: the pFabric counter-example (a single PIFO cannot reorder a
flow's already-buffered packets) and the output-rate-limiting transient.
The point of this benchmark is to confirm the *negative* result: the
reproduction exhibits exactly the gap the paper describes.
"""

from __future__ import annotations

from conftest import report

from repro.algorithms import SRPTTransaction
from repro.core import Packet, ProgrammableScheduler, single_node_tree

PFABRIC_ARRIVALS = [("p0", 7), ("p1", 9), ("p1", 8), ("p1", 6)]
PFABRIC_DESIRED = ["p1(9)", "p1(8)", "p1(6)", "p0(7)"]


def run_pfabric_example():
    scheduler = ProgrammableScheduler(single_node_tree(SRPTTransaction()))
    for flow, remaining in PFABRIC_ARRIVALS:
        scheduler.enqueue(
            Packet(flow=flow, length=100,
                   fields={"remaining_size": remaining,
                           "label": f"{flow}({remaining})"})
        )
    return [p.get("label") for p in scheduler.drain()]


def test_sec35_single_pifo_cannot_express_pfabric(benchmark):
    pifo_order = benchmark(run_pfabric_example)
    report(
        "Section 3.5: pFabric ordering vs what one PIFO can do",
        [
            {"schedule": "pFabric (desired)", "order": ", ".join(PFABRIC_DESIRED)},
            {"schedule": "SRPT on one PIFO", "order": ", ".join(pifo_order)},
        ],
    )
    assert pifo_order != PFABRIC_DESIRED
    # The already-buffered packets p1(9), p1(8) keep their relative order and
    # their position relative to p0(7); only the new arrival p1(6) chose its
    # own slot.
    assert pifo_order.index("p0(7)") < pifo_order.index("p1(8)")
    assert pifo_order.index("p1(8)") < pifo_order.index("p1(9)")
    assert pifo_order[0] == "p1(6)"


def test_sec35_buffered_elements_order_is_immutable(benchmark):
    """Arrivals never change the relative order of elements already in a
    PIFO, measured over a large random workload."""
    import random

    def check(seed=0, operations=2000):
        from repro.core import PIFO

        rng = random.Random(seed)
        pifo = PIFO()
        violations = 0
        for op_index in range(operations):
            snapshot = [id(e) for e in pifo]
            pifo.push(object(), rng.randint(0, 100))
            after = [id(e) for e in pifo]
            after_filtered = [e for e in after if e in set(snapshot)]
            if after_filtered != snapshot:
                violations += 1
            if op_index % 7 == 0 and pifo:
                pifo.pop()
        return violations

    violations = benchmark(check)
    assert violations == 0
