"""Durable JSONL result store for campaign runs.

One line per completed run, appended as soon as the run's record is
available and flushed to disk immediately — an interrupted campaign loses
at most the line being written.  Records are plain JSON objects carrying
the run's full configuration (including its :meth:`RunSpec.fingerprint`)
next to its measured results, so the store is self-describing: resuming
needs no side state beyond the file, and reports can group by any factor
column straight off the records.

A torn trailing line (the classic crash artefact) is tolerated on load and
simply re-run on resume; corruption anywhere else raises, because silently
dropping completed results would make reports lie.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Set

from ..exceptions import ReproError

#: Record fields that legitimately differ between two executions of the
#: same RunSpec (wall-clock measurements and worker identity).  Everything
#: else must be bit-identical regardless of worker count — the determinism
#: tests strip exactly these keys before comparing.
TIMING_FIELDS = ("wall_clock_s", "worker_pid")


class StoreError(ReproError):
    """A result store file is unreadable or corrupt."""


def strip_timing(record: Dict) -> Dict:
    """A copy of ``record`` without the execution-timing fields."""
    return {key: value for key, value in record.items()
            if key not in TIMING_FIELDS}


class ResultStore:
    """Append-only JSONL store of one record per completed run."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, record: Dict) -> None:
        """Append one record and flush it to disk.

        If the file ends in a torn line (interrupted previous append), the
        torn bytes are truncated first — appending after them would merge
        two records into one unparseable interior line.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._truncate_torn_tail()
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def _truncate_torn_tail(self) -> None:
        """Drop trailing bytes after the last newline (a torn append)."""
        if not self.path.exists():
            return
        with self.path.open("rb+") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            # Scan backwards in chunks for the last newline.
            keep = 0
            position = size
            while position > 0:
                chunk_size = min(4096, position)
                position -= chunk_size
                handle.seek(position)
                chunk = handle.read(chunk_size)
                newline = chunk.rfind(b"\n")
                if newline != -1:
                    keep = position + newline + 1
                    break
            handle.truncate(keep)

    def _lines(self) -> Iterator[str]:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            yield from handle

    def load(self) -> List[Dict]:
        """All records in append order.

        An unparseable *final* line is dropped (interrupted append); an
        unparseable line anywhere else raises :class:`StoreError`.
        """
        lines = [line.rstrip("\n") for line in self._lines()]
        while lines and not lines[-1].strip():
            lines.pop()
        records: List[Dict] = []
        for index, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if index == len(lines) - 1:
                    break  # torn tail from an interrupt; resume re-runs it
                raise StoreError(
                    f"{self.path}: corrupt record on line {index + 1}: {exc}"
                ) from exc
        return records

    def fingerprints(self) -> Set[str]:
        """Fingerprints of every completed run in the store."""
        return {record["fingerprint"] for record in self.load()
                if "fingerprint" in record}

    def latest_by_fingerprint(self) -> Dict[str, Dict]:
        """Last record per fingerprint (re-runs overwrite logically)."""
        latest: Dict[str, Dict] = {}
        for record in self.load():
            fingerprint = record.get("fingerprint")
            if fingerprint is not None:
                latest[fingerprint] = record
        return latest

    def effective_records(self) -> List[Dict]:
        """Records with re-runs deduplicated: the last record wins per
        fingerprint.  This is what reports should aggregate — running a
        campaign twice into the same store must not double its counts."""
        records = self.load()
        last_index: Dict[str, int] = {}
        for index, record in enumerate(records):
            fingerprint = record.get("fingerprint")
            if fingerprint is not None:
                last_index[fingerprint] = index
        return [
            record for index, record in enumerate(records)
            if (record.get("fingerprint") is None
                or last_index[record["fingerprint"]] == index)
        ]

    def clear(self) -> None:
        if self.path.exists():
            self.path.unlink()

    def __len__(self) -> int:
        return len(self.load())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.path)!r})"
