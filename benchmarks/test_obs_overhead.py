"""Observability overhead benchmark: metrics off must stay free.

The metrics registry (:mod:`repro.obs.metrics`) promises that a disabled
registry costs the hot path one local ``is not None`` check per seam —
nothing measurable — and that enabling then disabling collection leaves
no residue (no leaked enabled state, no instruments still attached).
This benchmark holds the implementation to that promise with numbers
written to ``BENCH_obs_overhead.json``:

* ``metrics_off_pps`` — the chain3 fabric workload with the registry
  disabled, i.e. the product-default configuration.  The standard
  perf-regression tolerance applies to this rate.
* ``off_vs_baseline`` — the disabled rate measured *immediately after* a
  collection session, as a fraction of a baseline rate measured before
  any ``collecting()`` ran in that round.  The three configurations are
  interleaved round-robin (baseline, on, off) so machine drift cancels;
  any gap between baseline and off means a collection session left
  residue on the off path.  ``check_perf_regression.py`` holds this to
  an absolute floor of 0.98 — the ≤2% overhead acceptance gate — rather
  than a baseline-relative tolerance, because both rates come from one
  interleaved run.
* ``metrics_on_vs_off`` — the workload with a registry enabled, as a
  fraction of the off rate.  Collection is allowed to cost a few
  percent; the ratio is recorded so a collapse of the instrumented path
  is visible in the artifact.
* ``fabric_chain3_sorted_pps`` — the chain3/sorted rate from
  ``BENCH_network_fabric.json`` when present (informational: the fabric
  benchmark takes a single shot per backend, so it is too noisy to gate
  a 2% floor against, but it anchors the obs numbers to the gated
  fabric artifact from the same session).

Set ``BENCH_QUICK=1`` to shrink the workload for smoke runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import report

from repro.obs import metrics
from repro.perf import run_workload

BENCH_QUICK = bool(os.environ.get("BENCH_QUICK"))
PACKETS = 2_000 if BENCH_QUICK else 10_000
ROUNDS = 3 if BENCH_QUICK else 5
BENCH_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_obs_overhead.json"
FABRIC_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_network_fabric.json"


def _round(tree_kernel: bool = True, enabled: bool = False) -> float:
    """Packets/second for one run of the chain3 workload."""
    if enabled:
        with metrics.collecting():
            result = run_workload("chain3", packets=PACKETS,
                                  pifo_backend="sorted",
                                  tree_kernel=tree_kernel)
    else:
        result = run_workload("chain3", packets=PACKETS,
                              pifo_backend="sorted",
                              tree_kernel=tree_kernel)
    assert result.delivered >= PACKETS * 0.99
    return result.packets_per_second


def test_metrics_off_overhead_summary():
    """Interleaved baseline/on/off rates; writes the CI artifact."""
    assert not metrics.is_enabled()
    # Round-robin so drift affects all three configurations equally.
    # Order matters within a round: "base" has never been preceded by a
    # collecting() session in round 1, and "off" always runs right after
    # one — the base/off pair is what detects residue from collection.
    base_pps = on_pps = off_pps = 0.0
    for _ in range(ROUNDS):
        base_pps = max(base_pps, _round())
        on_pps = max(on_pps, _round(enabled=True))
        off_pps = max(off_pps, _round())
    assert not metrics.is_enabled()
    # The interpreted datapath carries more instrumented seams per packet
    # (per-port enqueue/delivery instead of fused closures), so measure
    # the on/off ratio there too — it is the worst case for the registry.
    off_interp = on_interp = 0.0
    for _ in range(ROUNDS):
        on_interp = max(on_interp, _round(tree_kernel=False, enabled=True))
        off_interp = max(off_interp, _round(tree_kernel=False))

    artifact = {
        "workload": "chain3",
        "packets": PACKETS,
        "rounds": ROUNDS,
        "baseline_pps": base_pps,
        "metrics_off_pps": off_pps,
        "metrics_on_pps": on_pps,
        "off_vs_baseline": off_pps / base_pps,
        "metrics_on_vs_off": on_pps / off_pps,
        "interpreted_metrics_off_pps": off_interp,
        "interpreted_metrics_on_vs_off": on_interp / off_interp,
    }
    if FABRIC_ARTIFACT.is_file():
        fabric = json.loads(FABRIC_ARTIFACT.read_text())
        base = (fabric.get("topologies", {}).get("chain3", {})
                .get("backends", {}).get("sorted"))
        if base:
            artifact["fabric_chain3_sorted_pps"] = base

    report("Observability overhead (chain3, packets/second)", [
        {"config": "fused, baseline", "pps": base_pps, "ratio": 1.0},
        {"config": "fused, metrics off", "pps": off_pps,
         "ratio": artifact["off_vs_baseline"]},
        {"config": "fused, metrics on", "pps": on_pps,
         "ratio": artifact["metrics_on_vs_off"]},
        {"config": "interpreted, metrics off", "pps": off_interp,
         "ratio": 1.0},
        {"config": "interpreted, metrics on", "pps": on_interp,
         "ratio": artifact["interpreted_metrics_on_vs_off"]},
    ])
    BENCH_ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    # Collection itself must stay cheap even where it is not gated: a
    # halved instrumented rate means an instrument leaked into a loop.
    assert artifact["metrics_on_vs_off"] > 0.5
    assert artifact["interpreted_metrics_on_vs_off"] > 0.5
