"""The fabric: a :class:`~repro.net.topology.Network` brought to life.

``Fabric`` instantiates one :class:`~repro.switch.SharedMemorySwitch` per
switch node — with one egress port per outgoing link, each port running the
experiment's scheduler at the link's rate — and a lightweight egress switch
per host (FIFO, effectively unbuffered admission) modelling the NIC.  Egress
ports are chained to the next hop's ingress through the
:class:`~repro.sim.link.OutputPort` delivery hook, so *any* scheduler or
PIFO backend that works on a single port works unmodified on any topology.

As a packet leaves each hop the fabric appends a ``(node, arrival,
queueing, departure)`` record to ``packet.hops`` and accumulates the hop's
queueing delay into the packet's ``prev_wait_time`` field (the in-band
telemetry Section 3.1 assumes), which is exactly what the LSTF transaction
consumes downstream.  End-to-end delay is measured from injection at the
source NIC to arrival at the destination host, propagation included.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from ..algorithms.fifo import FIFOTransaction
from ..algorithms.lstf import stamp_wait_time
from ..core.backend import BackendSpec
from ..core.packet import Packet
from ..core.scheduler import ProgrammableScheduler
from ..core.tree import single_node_tree
from ..exceptions import RoutingError
from ..sim.simulator import Simulator
from ..sim.sink import PacketSink
from ..sim.source import PacketSource
from ..switch.buffer import SharedBuffer
from ..switch.switch import PortSpec, SharedMemorySwitch
from ..switch.thresholds import AdmissionPolicy
from .routing import build_forwarding_tables
from .topology import Network

#: Scheduler factory signature: ``(switch_name, port_name) -> scheduler``.
SchedulerFactory = Callable[[str, str], object]


def _default_host_scheduler(switch: str, port: str) -> ProgrammableScheduler:
    """Host NICs transmit in arrival order."""
    return ProgrammableScheduler(single_node_tree(FIFOTransaction()))


class HostInjector:
    """Entry point for traffic at a host; quacks like a port for sources."""

    def __init__(self, fabric: "Fabric", host: str) -> None:
        self.fabric = fabric
        self.host = host

    def receive(self, packet: Packet) -> bool:
        return self.fabric.inject(self.host, packet)


class Fabric:
    """Simulation instance of a network: switches, links, host endpoints.

    Parameters
    ----------
    sim:
        Driving simulator.
    network:
        Topology to instantiate (validated on construction).
    scheduler_factory:
        ``(switch_name, port_name) -> scheduler`` producing a fresh scheduler
        for every switch egress port.
    ecmp:
        Keep all equal-cost next hops and spread flows across them by a
        stable flow hash; ``False`` pins each destination to one path.
    pifo_backend:
        Optional PIFO backend spec applied to every switch scheduler.
    buffer_factory / admission_factory:
        Per-node shared buffer / admission policy constructors (called with
        the node name); switches default to the paper's 12 MB shared buffer
        with always-admit, host NICs to an effectively unbounded buffer
        (end-host memory is not the resource under study).
    keep_packets:
        Whether host sinks retain every delivered packet (default) or run in
        streaming-aggregate mode for large workloads.
    telemetry:
        Record per-hop traces (``packet.hops``) and per-port switch-stat
        breakdowns (default).  Sweeps disable this to strip the per-packet
        per-hop bookkeeping from the forwarding path; aggregate counters,
        per-flow sink aggregates and the in-band ``prev_wait_time`` stamp
        consumed by LSTF are always maintained, so scheduling decisions —
        and therefore results — are identical either way.  With telemetry
        off and streaming sinks, delivered packets are recycled into the
        packet pool.
    host_scheduler_factory:
        Scheduler for host egress (NIC) ports; FIFO by default.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        scheduler_factory: SchedulerFactory,
        ecmp: bool = False,
        pifo_backend: BackendSpec = None,
        buffer_factory: Optional[Callable[[str], SharedBuffer]] = None,
        admission_factory: Optional[Callable[[str], AdmissionPolicy]] = None,
        keep_packets: bool = True,
        telemetry: bool = True,
        host_scheduler_factory: SchedulerFactory = _default_host_scheduler,
    ) -> None:
        network.validate()
        self.sim = sim
        self.network = network
        self.ecmp = ecmp
        self.telemetry = telemetry
        self.injected_packets = 0
        self.delivered_packets = 0
        #: One SharedMemorySwitch per node (hosts get a FIFO NIC switch).
        self.node_switches: Dict[str, SharedMemorySwitch] = {}
        #: Terminal sink per host for traffic addressed to it.
        self.host_sinks: Dict[str, PacketSink] = {
            host: PacketSink(name=f"{host}.sink", keep_packets=keep_packets,
                             recycle_packets=not keep_packets and not telemetry)
            for host in network.hosts()
        }
        self._sources: list = []

        for name in sorted(network.nodes):
            is_host = network.is_host(name)
            specs = [
                PortSpec(
                    name=self.port_to(neighbor),
                    rate_bps=link.rate_bps,
                    propagation_delay=link.propagation_delay,
                    delivery=self._make_delivery(name, neighbor),
                )
                for neighbor, link in sorted(network.links[name].items())
            ]
            factory = host_scheduler_factory if is_host else scheduler_factory
            if buffer_factory is not None:
                buffer = buffer_factory(name)
            elif is_host:
                buffer = SharedBuffer(capacity_bytes=1 << 30)
            else:
                buffer = None
            self.node_switches[name] = SharedMemorySwitch(
                sim=sim,
                scheduler_factory=lambda port, node=name, f=factory: f(node, port),
                port_specs=specs,
                buffer=buffer,
                admission=admission_factory(name) if admission_factory else None,
                pifo_backend=None if is_host else pifo_backend,
                telemetry=telemetry,
                name=name,
            )

        self._install_routes()

    # -- construction helpers ----------------------------------------------
    @staticmethod
    def port_to(neighbor: str) -> str:
        """Egress port name used for the link toward ``neighbor``."""
        return f"to_{neighbor}"

    def _install_routes(self) -> None:
        tables = build_forwarding_tables(self.network, ecmp=self.ecmp)
        for node, routes in tables.items():
            switch = self.node_switches[node]
            for dst, hops in routes.items():
                if hops:
                    switch.install_route(dst, [self.port_to(h) for h in hops])

    def _make_delivery(self, node: str, neighbor: str) -> Callable[[Packet], None]:
        to_host = self.network.is_host(neighbor)
        telemetry = self.telemetry

        def deliver(packet: Packet) -> None:
            # ``prev_wait_time`` is in-band data the paper's LSTF transaction
            # consumes downstream — it is stamped regardless of the telemetry
            # flag so scheduling semantics never depend on observability.
            enq = packet.enqueue_time
            deq = packet.dequeue_time
            wait = deq - enq if (enq is not None and deq is not None) else 0.0
            if telemetry:
                packet.record_hop(node, packet.arrival_time, wait,
                                  packet.departure_time)
            stamp_wait_time(packet, wait)
            if to_host:
                if packet.dst != neighbor:
                    # Routing never transits an end host; landing here with
                    # a different destination means a corrupted route.
                    raise RoutingError(
                        f"packet for {packet.dst!r} delivered to host "
                        f"{neighbor!r}; hosts do not forward transit traffic"
                    )
                self._arrive(neighbor, packet)
            else:
                self.node_switches[neighbor].forward(packet)

        return deliver

    def _arrive(self, host: str, packet: Packet) -> None:
        # Stamp arrival at the destination NIC (propagation included) so
        # end-to-end delay decomposes exactly into the recorded hops + wires.
        packet.departure_time = self.sim.now
        self.delivered_packets += 1
        self.host_sinks[host].record(packet)

    # -- traffic -----------------------------------------------------------
    def inject(self, host: str, packet: Packet) -> bool:
        """Inject a packet at a source host; routes by ``packet.dst``."""
        if packet.dst is None:
            raise RoutingError(f"cannot inject {packet!r}: no dst address")
        if packet.dst == host:
            raise RoutingError(f"packet at {host!r} addressed to itself")
        if packet.src is None:
            packet.src = host
        packet.injection_time = self.sim.now
        self.injected_packets += 1
        return self.node_switches[host].forward(packet)

    def injector(self, host: str) -> HostInjector:
        """A receive()-compatible endpoint for :class:`PacketSource`."""
        self.network.node(host)
        return HostInjector(self, host)

    def attach_source(self, host: str,
                      arrivals: Iterable[Tuple[float, Packet]],
                      name: Optional[str] = None) -> PacketSource:
        """Replay an arrival stream into the fabric at ``host``."""
        source = PacketSource(self.sim, self.injector(host), arrivals,
                              name=name or f"{host}.source")
        self._sources.append(source)
        return source

    # -- execution ---------------------------------------------------------
    def run(self, until: Optional[float] = None, drain: bool = False) -> float:
        """Advance the simulation; optionally keep going until all packets
        in flight at ``until`` have left the fabric.

        Draining stops the attached sources first, so arrivals scheduled
        past ``until`` are discarded rather than replayed — only traffic
        already inside the fabric is flushed out.
        """
        now = self.sim.run(until=until)
        if drain:
            if until is not None:
                for source in self._sources:
                    source.stop()
            now = self.sim.run()
        return now

    # -- accounting --------------------------------------------------------
    def switch(self, name: str) -> SharedMemorySwitch:
        return self.node_switches[name]

    def sink(self, host: str) -> PacketSink:
        return self.host_sinks[host]

    def dropped_packets(self) -> int:
        return sum(s.stats.dropped for s in self.node_switches.values())

    def buffered_packets(self) -> int:
        return sum(s.buffered_packets() for s in self.node_switches.values())

    def in_flight_packets(self) -> int:
        """Packets inside the fabric: queued, on the wire, or propagating."""
        return (self.injected_packets - self.delivered_packets
                - self.dropped_packets())

    def conservation_check(self) -> Dict[str, int]:
        """Injected / delivered / dropped / in-flight balance for assertions."""
        return {
            "injected": self.injected_packets,
            "delivered": self.delivered_packets,
            "dropped": self.dropped_packets(),
            "in_flight": self.in_flight_packets(),
        }

    def stats_by_node(self) -> Dict[str, Dict]:
        """JSON-friendly per-node stats with per-port breakdowns."""
        out = {}
        for name in sorted(self.node_switches):
            stats = self.node_switches[name].stats
            out[name] = {
                "received": stats.received,
                "transmitted": stats.transmitted,
                "dropped_admission": stats.dropped_admission,
                "dropped_scheduler": stats.dropped_scheduler,
                "per_port": stats.per_port_dict(),
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Fabric(network={self.network.name!r}, "
            f"injected={self.injected_packets}, "
            f"delivered={self.delivered_packets})"
        )
