"""Plain-text table rendering for experiment results.

The renderers are deliberately dependency-free (no rich/tabulate): output
must be stable enough to diff in EXPERIMENTS.md and readable in CI logs.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence


def format_value(value: Any, float_digits: int = 4) -> str:
    """Render one cell.

    Floats use a compact significant-digit format, booleans render as
    ``yes``/``no`` (the paper's Table 2 style), ``None`` renders as ``-``.
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    title: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
    float_digits: int = 4,
) -> str:
    """Render a list of row mappings as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used (rows may omit trailing columns, rendered as ``-``).
    """
    rows = list(rows)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    if not rows:
        lines.append("(no rows)")
        return "\n".join(lines)

    if columns is None:
        columns = list(rows[0].keys())
        for row in rows[1:]:
            for key in row:
                if key not in columns:
                    columns.append(key)

    rendered_rows = [
        {column: format_value(row.get(column), float_digits) for column in columns}
        for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered_rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines.append(header)
    lines.append(separator)
    for row in rendered_rows:
        lines.append("  ".join(row[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def render_kv(
    mapping: Mapping[str, Any],
    title: Optional[str] = None,
    float_digits: int = 4,
) -> str:
    """Render a mapping as aligned ``key : value`` lines."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    if not mapping:
        lines.append("(empty)")
        return "\n".join(lines)
    width = max(len(str(key)) for key in mapping)
    for key, value in mapping.items():
        lines.append(f"{str(key).ljust(width)} : {format_value(value, float_digits)}")
    return "\n".join(lines)


def render_comparison(
    rows: Sequence[Mapping[str, Any]],
    measured_key: str,
    paper_key: str,
    title: Optional[str] = None,
    tolerance: float = 0.15,
) -> str:
    """Render a paper-vs-measured table with a per-row agreement marker.

    A row "agrees" when the measured value is within ``tolerance`` (relative)
    of the paper value; rows without a paper value are marked ``n/a``.
    """
    annotated = []
    for row in rows:
        row = dict(row)
        paper = row.get(paper_key)
        measured = row.get(measured_key)
        if paper in (None, 0) or not isinstance(paper, (int, float)):
            row["agrees"] = "n/a"
        elif isinstance(measured, (int, float)):
            row["agrees"] = "yes" if abs(measured - paper) <= tolerance * abs(paper) else "NO"
        else:
            row["agrees"] = "n/a"
        annotated.append(row)
    return render_table(annotated, title=title)
