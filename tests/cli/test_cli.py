"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_subcommands(self):
        parser = build_parser()
        for argv in (["list"], ["run", "table1"], ["report"], ["programs"],
                     ["scenarios"], ["show", "stfq"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_run_flags(self):
        args = build_parser().parse_args(["run", "fig1", "--quick", "--json"])
        assert args.experiment == "fig1"
        assert args.quick is True
        assert args.json is True

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestCommands:
    def test_no_command_prints_help_and_fails(self, capsys):
        assert main([]) == 1
        assert "usage:" in capsys.readouterr().out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig3" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "2048" in out
        assert "4096" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_run_json_output(self, capsys):
        assert main(["run", "sec5.4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "sec5.4"
        assert payload["rows"]

    def test_run_behavioural_experiment_quick(self, capsys):
        assert main(["run", "fig1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "measured_share" in out

    def test_report_subset(self, capsys):
        assert main(["report", "table1", "sec5.4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[table1]" in out
        assert "[sec5.4]" in out

    def test_report_unknown_experiment(self, capsys):
        assert main(["report", "bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_programs_command(self, capsys):
        assert main(["programs"]) == 0
        out = capsys.readouterr().out
        assert "stfq" in out
        assert "token_bucket" in out

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "fig6_chain" in out
        assert "leaf_spine_fct" in out
        assert "LSTF" in out

    def test_list_includes_fabric_experiments(self, capsys):
        assert main(["list"]) == 0
        assert "leaf_spine_fct" in capsys.readouterr().out

    def test_show_command(self, capsys):
        assert main(["show", "token_bucket"]) == 0
        out = capsys.readouterr().out
        assert "p.send_time" in out
        assert "Atom pipeline" in out
        assert "feasible at line rate : yes" in out

    def test_show_unknown_program(self, capsys):
        assert main(["show", "bogus"]) == 2
        assert "unknown program" in capsys.readouterr().err
