"""Tests for the SP-PIFO approximation extension."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PIFO
from repro.exceptions import PIFOEmptyError
from repro.extensions import (
    SPPIFOQueue,
    compare_with_exact_pifo,
    count_inversions,
)


class TestCountInversions:
    def test_sorted_sequence_has_no_inversions(self):
        assert count_inversions([1, 2, 3, 4, 5]) == 0

    def test_reverse_sorted_sequence_is_worst_case(self):
        n = 6
        assert count_inversions(list(range(n, 0, -1))) == n * (n - 1) // 2

    def test_single_swap(self):
        assert count_inversions([1, 3, 2, 4]) == 1

    def test_duplicates_are_not_inversions(self):
        assert count_inversions([2, 2, 2, 2]) == 0

    def test_empty_and_singleton(self):
        assert count_inversions([]) == 0
        assert count_inversions([7]) == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=80))
    def test_matches_quadratic_reference(self, ranks):
        reference = sum(
            1
            for i in range(len(ranks))
            for j in range(i + 1, len(ranks))
            if ranks[i] > ranks[j]
        )
        assert count_inversions(ranks) == reference


class TestSPPIFOQueue:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SPPIFOQueue(num_queues=0)
        with pytest.raises(ValueError):
            SPPIFOQueue(num_queues=3, initial_bounds=[0.0, 1.0])
        with pytest.raises(ValueError):
            SPPIFOQueue(num_queues=3, initial_bounds=[2.0, 1.0, 0.0])

    def test_pop_empty_raises(self):
        queue = SPPIFOQueue(num_queues=4)
        with pytest.raises(PIFOEmptyError):
            queue.pop()
        with pytest.raises(PIFOEmptyError):
            queue.peek()

    def test_len_and_clear(self):
        queue = SPPIFOQueue(num_queues=4)
        for rank in (5, 1, 9):
            queue.push(f"e{rank}", rank)
        assert len(queue) == 3
        assert bool(queue)
        queue.clear()
        assert len(queue) == 0
        assert queue.is_empty

    def test_single_queue_degenerates_to_fifo(self):
        queue = SPPIFOQueue(num_queues=1)
        for index, rank in enumerate([5, 1, 9, 3]):
            queue.push(index, rank)
        assert [queue.pop() for _ in range(4)] == [0, 1, 2, 3]

    def test_distinct_ranks_with_many_queues_sort_exactly(self):
        """With at least as many queues as distinct ranks and arrivals seen
        in any order, the strict-priority scan separates the ranks."""
        queue = SPPIFOQueue(num_queues=8)
        ranks = [3, 1, 2, 0]
        for rank in ranks:
            queue.push(f"r{rank}", rank)
        popped = [queue.pop_with_rank()[0] for _ in range(len(ranks))]
        assert count_inversions(popped) <= count_inversions(list(ranks))

    def test_push_up_tracks_admitted_rank(self):
        queue = SPPIFOQueue(num_queues=2)
        queue.push("a", 5.0)
        assert queue.bounds()[-1] == 5.0 or queue.bounds()[0] == 5.0

    def test_push_down_on_bound_miss(self):
        queue = SPPIFOQueue(num_queues=2, initial_bounds=[10.0, 20.0])
        queue.push("small", 1.0)
        assert queue.stats.push_downs == 1
        # Every bound decreased by the inversion cost (10 - 1 = 9).
        assert queue.bounds() == [1.0, 11.0]

    def test_dequeue_serves_highest_priority_queue_first(self):
        queue = SPPIFOQueue(num_queues=3, initial_bounds=[0.0, 10.0, 20.0])
        queue.push("low", 25.0)    # lands in queue 2
        queue.push("high", 5.0)    # lands in queue 0
        assert queue.pop() == "high"
        assert queue.pop() == "low"

    def test_occupancy_reports_per_queue_counts(self):
        queue = SPPIFOQueue(num_queues=3, initial_bounds=[0.0, 10.0, 20.0])
        queue.push("a", 5.0)
        queue.push("b", 15.0)
        queue.push("c", 25.0)
        assert sum(queue.occupancy()) == 3
        assert len(queue.occupancy()) == 3

    def test_stats_counters(self):
        queue = SPPIFOQueue(num_queues=4)
        for rank in (3, 1, 4, 1, 5):
            queue.push("x", rank)
        while not queue.is_empty:
            queue.pop()
        assert queue.stats.pushes == 5
        assert queue.stats.pops == 5

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False),
                    min_size=1, max_size=120))
    def test_property_conserves_elements(self, ranks):
        queue = SPPIFOQueue(num_queues=8)
        for index, rank in enumerate(ranks):
            queue.push(index, rank)
        popped = set()
        while not queue.is_empty:
            popped.add(queue.pop())
        assert popped == set(range(len(ranks)))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False),
                    min_size=2, max_size=100),
           st.integers(min_value=1, max_value=16))
    def test_property_non_decreasing_arrivals_dequeue_in_order(self, ranks, queues):
        """When ranks arrive in non-decreasing order every element is
        admitted to the lowest-priority queue (its bound always trails the
        largest admitted rank), so the dequeue order is exactly the arrival
        order — zero inversions."""
        ranks = sorted(ranks)
        queue = SPPIFOQueue(num_queues=queues)
        for index, rank in enumerate(ranks):
            queue.push(index, rank)
        popped = []
        while not queue.is_empty:
            popped.append(queue.pop_with_rank()[0])
        assert popped == ranks
        assert count_inversions(popped) == 0


class TestCompareWithExactPIFO:
    def test_exact_pifo_has_zero_inversions(self):
        rng = random.Random(7)
        arrivals = [(i, rng.uniform(0, 100)) for i in range(300)]
        report = compare_with_exact_pifo(arrivals, num_queues=8)
        assert report.exact_inversions == 0
        assert report.elements == 300

    def test_more_queues_reduce_inversions(self):
        rng = random.Random(11)
        arrivals = [(i, rng.uniform(0, 100)) for i in range(500)]
        few = compare_with_exact_pifo(arrivals, num_queues=2, drain_every=2)
        many = compare_with_exact_pifo(arrivals, num_queues=32, drain_every=2)
        assert many.inversions <= few.inversions

    def test_inversion_rate_normalisation(self):
        rng = random.Random(3)
        arrivals = [(i, rng.uniform(0, 100)) for i in range(100)]
        report = compare_with_exact_pifo(arrivals, num_queues=4)
        assert 0.0 <= report.inversion_rate <= 1.0
        assert 0.0 <= report.unpifoness <= 1.0

    def test_interleaved_draining(self):
        rng = random.Random(5)
        arrivals = [(i, rng.uniform(0, 100)) for i in range(200)]
        report = compare_with_exact_pifo(arrivals, num_queues=8, drain_every=3)
        assert report.elements == 200
        assert report.mean_rank_error >= 0.0

    def test_exact_pifo_reference_is_actually_sorted(self):
        """Sanity-check the reference: a PIFO drained after all enqueues
        yields non-decreasing ranks."""
        rng = random.Random(13)
        pifo = PIFO()
        for i in range(200):
            pifo.push(i, rng.uniform(0, 50))
        ranks = []
        while not pifo.is_empty:
            ranks.append(pifo.pop_entry().rank)
        assert ranks == sorted(ranks)
