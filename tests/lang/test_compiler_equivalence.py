"""Property-based lockstep equivalence: interpreter vs compiler.

For every program bundled in :mod:`repro.lang.programs`, hypothesis drives
random packet sequences through the interpreter and the compiled closure in
lockstep — fresh, isolated environments, identical inputs per step — and
requires the two paths to agree *exactly* at every step:

* the :class:`ExecutionResult` (rank, send time, every packet write, every
  local) is identical,
* the persistent state trajectory is identical,
* and when one path raises, the other raises the same
  :class:`RuntimeLangError` with the same message, leaving identical state.

Exact ``==`` (not approx) is intentional: both paths must perform the same
float operations in the same order, so bit-identical results are part of
the compiled-backend contract.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Packet, TransactionContext
from repro.lang import Interpreter, ProgramEnvironment, RuntimeLangError, parse
from repro.lang.compiler import compile_program
from repro.lang.programs import (
    PROGRAM_SOURCES,
    PROGRAM_STATE,
    STFQ_DEQUEUE_SOURCE,
)

#: Parameters each program needs (mirrors DEFAULT_FACTORIES' choices).
PROGRAM_PARAMS = {
    "token_bucket": {"r": 1.25e6, "B": 3000.0},
    "stop_and_go": {"T": 1e-3},
    "min_rate": {"min_rate": 1.25e6, "BURST_SIZE": 3000.0},
}

#: Flow-attribute accessors each program needs.
PROGRAM_FLOW_ATTRS = {
    "stfq": {"weight": lambda flow: {"a": 1.0, "b": 2.0, "c": 0.5}.get(flow, 1.0)},
}

ALL_PROGRAMS = sorted(PROGRAM_SOURCES)

#: Every metadata field any bundled program reads, so the "rich packet"
#: strategy exercises success paths for all of them.
RICH_FIELDS = ("slack", "prev_wait_time", "flow_size", "remaining_size", "deadline")


def arrivals_strategy(rich: bool):
    field_values = st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    fields = (
        st.fixed_dictionaries({name: field_values for name in RICH_FIELDS})
        if rich
        # Sparse packets: most fields missing, so field reads often fail —
        # the error paths must stay equivalent too.
        else st.dictionaries(st.sampled_from(RICH_FIELDS), field_values, max_size=2)
    )
    return st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),                    # flow
            st.integers(min_value=1, max_value=9000),            # length
            st.floats(min_value=0.0, max_value=0.02,
                      allow_nan=False),                          # inter-arrival gap
            st.integers(min_value=0, max_value=7),               # priority
            fields,
        ),
        min_size=1,
        max_size=30,
    )


def _fresh_env(name):
    state = {
        key: (dict(value) if isinstance(value, dict) else value)
        for key, value in PROGRAM_STATE[name].items()
    }
    return ProgramEnvironment(
        state=state,
        params=dict(PROGRAM_PARAMS.get(name, {})),
        flow_attrs=dict(PROGRAM_FLOW_ATTRS.get(name, {})),
    )


def _step(execute, env, flow, length, now, priority, fields):
    packet = Packet(flow=flow, length=length, priority=priority,
                    fields=dict(fields))
    ctx = TransactionContext(now=now, node="n", element_flow=flow,
                             element_length=length)
    try:
        result = execute(packet, ctx, env)
        return (
            "ok",
            result.rank,
            result.send_time,
            result.packet_writes,
            result.locals,
        )
    except RuntimeLangError as exc:
        return ("err", str(exc))


def drive_lockstep(name, arrivals):
    program = parse(PROGRAM_SOURCES[name])
    interpreter = Interpreter(program)
    compiled = compile_program(
        program,
        state=PROGRAM_STATE[name],
        params=PROGRAM_PARAMS.get(name, {}),
        name=name,
    )
    env_i = _fresh_env(name)
    env_c = _fresh_env(name)
    now = 0.0
    for step, (flow, length, gap, priority, fields) in enumerate(arrivals):
        now += gap
        out_i = _step(interpreter.execute, env_i, flow, length, now, priority, fields)
        out_c = _step(compiled.execute, env_c, flow, length, now, priority, fields)
        assert out_c == out_i, (
            f"{name} diverged at step {step}: interpreter {out_i!r} "
            f"vs compiled {out_c!r}"
        )
        assert env_c.state == env_i.state, (
            f"{name} state diverged at step {step}"
        )


@pytest.mark.parametrize("name", ALL_PROGRAMS)
@settings(max_examples=25, deadline=None)
@given(arrivals=arrivals_strategy(rich=True))
def test_lockstep_equivalence_rich_packets(name, arrivals):
    """Success-path equivalence: every field present, ranks/state identical."""
    drive_lockstep(name, arrivals)


@pytest.mark.parametrize("name", ALL_PROGRAMS)
@settings(max_examples=25, deadline=None)
@given(arrivals=arrivals_strategy(rich=False))
def test_lockstep_equivalence_sparse_packets(name, arrivals):
    """Error-path equivalence: missing fields must raise identically."""
    drive_lockstep(name, arrivals)


@settings(max_examples=30, deadline=None)
@given(
    ranks=st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
def test_lockstep_equivalence_stfq_dequeue_program(ranks):
    """The dequeue-side program (dynamic ``dequeued_rank`` parameter) stays
    equivalent across random dequeue rank sequences."""
    program = parse(STFQ_DEQUEUE_SOURCE)
    interpreter = Interpreter(program)
    compiled = compile_program(
        program,
        state={"virtual_time": 0.0},
        params={"dequeued_rank": 0.0},
        dynamic_params=("dequeued_rank",),
        name="stfq.dequeue",
    )
    env_i = ProgramEnvironment(state={"virtual_time": 0.0},
                               params={"dequeued_rank": 0.0})
    env_c = ProgramEnvironment(state={"virtual_time": 0.0},
                               params={"dequeued_rank": 0.0})
    packet = Packet(flow="a", length=100)
    for rank in ranks:
        env_i.params["dequeued_rank"] = rank
        env_c.params["dequeued_rank"] = rank
        ctx = TransactionContext(now=0.0, node="n", element_flow="a",
                                 element_length=100)
        out_i = interpreter.execute(packet, ctx, env_i)
        out_c = compiled.execute(packet, ctx, env_c)
        assert out_c.packet_writes == out_i.packet_writes
        assert env_c.state == env_i.state


def test_lockstep_covers_every_bundled_program():
    """Smoke-drive every bundled program through the lockstep harness (the
    parametrized hypothesis tests above auto-grow with PROGRAM_SOURCES; this
    catches a program whose params/flow_attrs wiring here went stale)."""
    for name in ALL_PROGRAMS:
        drive_lockstep(
            name,
            [("a", 1500, 0.001, 3,
              {field: 10.0 for field in RICH_FIELDS})] * 5,
        )
