"""Figures 10-11 / Section 4.3 — compiling trees onto a PIFO mesh.

Regenerates the two compilation examples: HPFQ maps onto two PIFO blocks
(Figure 10b) and Hierarchies-with-Shaping needs a third block for the
TBF_Right shaping PIFO whose next hop enqueues into the root block
(Figure 11b).  Also measures compilation throughput for a 5-level
hierarchy — the configuration the introduction claims the hardware can
support.
"""

from __future__ import annotations

from conftest import report

from repro.algorithms import build_deep_hierarchy, build_fig3_tree, build_fig4_tree
from repro.hardware import compile_tree


def compile_both():
    return compile_tree(build_fig3_tree()), compile_tree(build_fig4_tree())


def test_fig10_11_mesh_configurations(benchmark):
    hpfq_program, shaped_program = benchmark(compile_both)
    rows = []
    for name, program in (("HPFQ (Fig 10)", hpfq_program),
                          ("Hierarchies w/ Shaping (Fig 11)", shaped_program)):
        rows.append(
            {
                "algorithm": name,
                "tree_levels": program.levels,
                "pifo_blocks": program.block_count(),
                "blocks": ", ".join(sorted(program.mesh.blocks)),
            }
        )
    report("Figures 10-11: compiled mesh configurations", rows)

    assert hpfq_program.block_count() == 2
    assert shaped_program.block_count() == 3
    # Next-hop tables follow the figures: root dequeues chain to the leaf
    # block; leaf PIFOs transmit; the shaping PIFO enqueues into the root.
    root_slot = hpfq_program.scheduling_assignment["Root"]
    assert hpfq_program.mesh.next_hop(root_slot.block, root_slot.logical_pifo).operation == "dequeue"
    right_shape = shaped_program.shaping_assignment["Right"]
    hop = shaped_program.mesh.next_hop(right_shape.block, right_shape.logical_pifo)
    assert hop.operation == "enqueue"
    assert hop.target_block == shaped_program.scheduling_assignment["Root"].block


def test_five_level_hierarchy_compiles_within_five_blocks(benchmark):
    """The introduction's headline configuration: a 5-level hierarchical
    scheduler with programmable levels fits the 5-block mesh the area model
    prices out."""
    def compile_deep():
        return compile_tree(build_deep_hierarchy(levels=5, fanout=2, flows_per_leaf=2))

    program = benchmark(compile_deep)
    report(
        "5-level hierarchy compilation",
        [{"levels": program.levels, "blocks": program.block_count(),
          "logical_pifos": len(program.scheduling_assignment)}],
    )
    assert program.levels == 5
    assert program.block_count() == 5
    assert len(program.scheduling_assignment) == 1 + 2 + 4 + 8 + 16
