"""Sharded campaign execution with deterministic, resumable results.

:class:`CampaignRunner` executes a campaign's run table either serially
(``workers=1``) or across a :mod:`multiprocessing` pool.  Three invariants
make the parallelism safe to trust:

* **Seeds are data, not state.**  Every :class:`~repro.campaign.spec.RunSpec`
  carries its own derived seed, so a run's result is a pure function of the
  spec — which worker executed it, and in what order, cannot matter.
* **Ordered collection.**  Workers may *finish* in any order, but results
  are collected with ``imap`` (submission order) and appended to the store
  in run-table order, so a ``workers=N`` store is byte-identical to the
  serial one modulo the :data:`~repro.campaign.store.TIMING_FIELDS`.
* **Resume by fingerprint.**  Completed runs are identified by their config
  fingerprint in the store; ``resume=True`` executes exactly the missing
  *and failed* specs and appends them behind the surviving records.

Workers receive plain dict payloads (fork *or* spawn start methods work)
and resolve scenario names against the registry after import, so nothing
unpicklable ever crosses the process boundary.

Failure isolation
-----------------
A raised exception, a timed-out run or a dead worker process never kills
the campaign: each failure becomes a **structured failure record** (status,
error type, truncated message, traceback digest, attempt count) appended to
the store in the run's table position, so the sweep completes, the store
stays resumable, and ``--resume`` re-runs exactly the failed set.  The
retry state machine per run::

    attempt 1 ──ok──────────────────────────► STATUS_OK record
        │
        exception ──attempts left?──yes──► backoff, attempt N+1
        │                         └──no──► STATUS_FAILED record
        timeout (SIGALRM) ────────────────► STATUS_TIMEOUT record (no retry)
        process death ────────────────────► STATUS_WORKER_LOST record
                                            (detected by the parent)

Retries run *inside* the worker, so the pool still yields exactly one
record per spec in submission order.  A dead worker stalls the pool's
result iterator; the parent's watchdog detects the stall, terminates the
pool and degrades to crash-isolated execution — one subprocess per
remaining spec — so a single poisoned run cannot take down the sweep.

``REPRO_CAMPAIGN_FAULT=<run_id substring>:<mode>[:<arg>]`` injects faults
for testing: ``raise`` (every attempt raises), ``flaky:N`` (raises until
attempt N), ``hang:SECONDS`` (sleeps), ``exit:CODE`` (kills the worker
process).  Matching is by substring against the spec's ``run_id``.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..obs.progress import ProgressWriter, progress_path_for
from ..obs.resources import ResourceProbe, rss_peak_bytes
from .spec import Campaign, RunSpec
from .store import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    STATUS_WORKER_LOST,
    ResultStore,
)

#: Environment variable enabling injected faults (see module docstring).
FAULT_ENV = "REPRO_CAMPAIGN_FAULT"

#: Per-run wall-clock bound assumed by the dead-worker watchdog when the
#: campaign sets no explicit ``timeout_s``.  Generous: any legitimate
#: single run finishes orders of magnitude faster.
DEFAULT_WATCHDOG_RUN_S = 300.0

#: Maximum length of the error message stored in a failure record.
ERROR_MESSAGE_LIMIT = 500


def execute_spec(spec: RunSpec) -> Dict:
    """Execute one run and return its self-describing result record.

    This is the single choke point between the sweep engine and the
    simulation substrate: it resolves the scenario by name, runs exactly
    one scheduler variant with the spec's PIFO backend, lang backend, load
    scale and derived seed, and flattens the
    :class:`~repro.net.scenario.ScenarioResult` into a JSON-safe record.
    """
    from ..net import get_scenario  # imports repro.net.scenarios -> registry
    from .workload_cache import active_cache

    scenario = get_scenario(spec.scenario)
    probe = ResourceProbe().start()
    started = time.perf_counter()
    results = scenario.run(
        quick=spec.quick,
        pifo_backend=spec.pifo_backend,
        variant=spec.variant,
        lang_backend=spec.lang_backend,
        load_scale=spec.load_scale,
        base_seed=spec.seed,
        telemetry=spec.telemetry,
        # Paired runs share a workload by construction; the process cache
        # replays it instead of regenerating it (see workload_cache).
        workload_cache=active_cache(),
    )
    wall_clock_s = time.perf_counter() - started
    result = results[spec.variant]
    resources = probe.stop(events=result.events, wall_s=wall_clock_s)

    total_packets = sum(stats["packets"] for stats in result.flow_stats.values())
    delay_weighted = sum(
        stats["packets"] * stats["mean_delay"]
        for stats in result.flow_stats.values()
        if stats["mean_delay"] is not None
    )
    record: Dict = dict(spec.to_dict())
    record.update({
        "run_id": spec.run_id,
        "fingerprint": spec.fingerprint(),
        "status": STATUS_OK,
        "duration": result.duration,
        "injected": result.conservation["injected"],
        "delivered": result.conservation["delivered"],
        "dropped": result.conservation["dropped"],
        "lost_to_faults": result.conservation.get("lost_to_faults", 0),
        "in_flight": result.conservation["in_flight"],
        "flows_seen": len(result.flow_stats),
        "mean_delay": (delay_weighted / total_packets) if total_packets else None,
        "max_delay": max(
            (stats["max_delay"] for stats in result.flow_stats.values()
             if stats["max_delay"] is not None),
            default=None,
        ),
        "fct_count": result.fct.count if result.fct else 0,
        "fct_mean": result.fct.mean if result.fct else None,
        "fct_p50": result.fct.p50 if result.fct else None,
        "fct_p99": result.fct.p99 if result.fct else None,
        "fct_short_count": result.fct_short.count if result.fct_short else 0,
        "fct_short_mean": result.fct_short.mean if result.fct_short else None,
        "fct_short_p99": result.fct_short.p99 if result.fct_short else None,
        "wall_clock_s": wall_clock_s,
        "worker_pid": os.getpid(),
    })
    record.update(resources)
    return record


# --------------------------------------------------------------------------- #
# Guarded execution: timeouts, retry, structured failure records               #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkerPolicy:
    """Per-run resilience policy shipped to every worker."""

    timeout_s: Optional[float] = None
    max_attempts: int = 1
    backoff_s: float = 0.0

    def to_dict(self) -> Dict:
        return {"timeout_s": self.timeout_s, "max_attempts": self.max_attempts,
                "backoff_s": self.backoff_s}

    @classmethod
    def from_dict(cls, data: Dict) -> "WorkerPolicy":
        return cls(**data)


class _RunTimeout(Exception):
    """Internal: raised by the SIGALRM handler when a run overruns."""


@contextmanager
def _run_alarm(timeout_s: Optional[float]):
    """Arm a wall-clock alarm for one run (POSIX main thread only).

    Uses ``setitimer``/``SIGALRM`` so a hung simulation is interrupted at
    an arbitrary bytecode boundary.  Silently a no-op where alarms are
    unavailable (non-POSIX, or called off the main thread) — the parent's
    dead-worker watchdog still bounds those cases.
    """
    usable = (timeout_s is not None and timeout_s > 0
              and hasattr(signal, "SIGALRM")
              and threading.current_thread() is threading.main_thread())
    if not usable:
        yield
        return

    def on_alarm(signum, frame):
        raise _RunTimeout(f"run exceeded timeout of {timeout_s}s")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _maybe_inject_fault(spec: RunSpec, attempt: int) -> None:
    """Apply the ``REPRO_CAMPAIGN_FAULT`` injection, if it matches."""
    directive = os.environ.get(FAULT_ENV)
    if not directive:
        return
    pattern, _, action = directive.partition(":")
    if pattern not in spec.run_id:
        return
    mode, _, arg = action.partition(":")
    if mode == "raise":
        raise RuntimeError(f"injected fault for {spec.run_id}")
    if mode == "flaky":
        succeed_at = int(arg or 2)
        if attempt < succeed_at:
            raise RuntimeError(
                f"injected flaky fault for {spec.run_id} "
                f"(attempt {attempt} of {succeed_at})"
            )
        return
    if mode == "hang":
        time.sleep(float(arg or 3600.0))
        return
    if mode == "exit":
        os._exit(int(arg or 1))
    raise ValueError(f"unknown {FAULT_ENV} mode {mode!r}")


def failure_record(spec: RunSpec, status: str, error: BaseException,
                   attempts: int, wall_clock_s: float,
                   trace: Optional[str] = None) -> Dict:
    """The structured failure record appended in place of a result.

    Carries the spec's full configuration (so resume/report machinery
    treats it like any record), the failure class and truncated message,
    and a digest of the traceback so identical failures are groupable
    without storing kilobytes of text per run.
    """
    trace_text = trace if trace is not None else traceback.format_exc()
    record: Dict = dict(spec.to_dict())
    record.update({
        "run_id": spec.run_id,
        "fingerprint": spec.fingerprint(),
        "status": status,
        "error_type": type(error).__name__,
        "error": str(error)[:ERROR_MESSAGE_LIMIT],
        "traceback_digest": hashlib.sha256(
            trace_text.encode("utf-8", "replace")).hexdigest()[:16],
        "attempts": attempts,
        "wall_clock_s": wall_clock_s,
        "worker_pid": os.getpid(),
        # Failures carry the same resource fields as successes (events=0:
        # the run produced no usable simulation), so report columns and
        # downstream tooling never need to special-case record shape.
        "rss_peak_bytes": rss_peak_bytes(),
        "cpu_user_s": 0.0,
        "cpu_sys_s": 0.0,
        "events": 0,
        "events_per_s": 0.0,
    })
    return record


def execute_spec_guarded(spec: RunSpec,
                         policy: Optional[WorkerPolicy] = None) -> Dict:
    """Execute one run under the resilience policy; never raises.

    Returns the normal result record on success (with its ``attempts``
    count), a :data:`~repro.campaign.store.STATUS_FAILED` record after the
    last exhausted attempt, or a
    :data:`~repro.campaign.store.STATUS_TIMEOUT` record when the run
    overruns ``policy.timeout_s`` (timeouts never retry: a deterministic
    simulation that hung once will hang again).  ``KeyboardInterrupt``
    passes through — interrupting a campaign must stay interruptible.
    """
    policy = policy or WorkerPolicy()
    attempts = max(1, policy.max_attempts)
    started = time.perf_counter()
    last_error: Optional[BaseException] = None
    last_trace = ""
    for attempt in range(1, attempts + 1):
        try:
            with _run_alarm(policy.timeout_s):
                _maybe_inject_fault(spec, attempt)
                record = execute_spec(spec)
            record["attempts"] = attempt
            return record
        except _RunTimeout as exc:
            return failure_record(
                spec, STATUS_TIMEOUT, exc, attempt,
                time.perf_counter() - started, trace=traceback.format_exc(),
            )
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            last_error = exc
            last_trace = traceback.format_exc()
            if attempt < attempts and policy.backoff_s > 0:
                time.sleep(policy.backoff_s * attempt)
    return failure_record(
        spec, STATUS_FAILED, last_error, attempts,
        time.perf_counter() - started, trace=last_trace,
    )


#: Policy installed in pool workers by the initializer (module global so
#: the imap callable stays a picklable top-level function).
_WORKER_POLICY = WorkerPolicy()


def _worker_init(policy_dict: Optional[Dict] = None) -> None:
    """Pool initializer: warm each worker before its first run.

    Imports :mod:`repro.net` (which populates the scenario registry) and
    pre-compiles the built-in lang programs' factories lazily imported by
    the scenarios, so the first run a worker executes pays none of the
    import/registry cost.  Under ``fork`` the parent's warm interpreter is
    inherited and this is nearly free; under ``spawn`` it moves the entire
    import cost out of the measured per-run path.  Also installs the
    campaign's :class:`WorkerPolicy` for guarded execution.
    """
    from .. import net  # noqa: F401  (import side effect: scenario registry)

    net.list_scenarios()
    if policy_dict is not None:
        global _WORKER_POLICY
        _WORKER_POLICY = WorkerPolicy.from_dict(policy_dict)


def _isolated_entry(conn, payload: Dict, policy_dict: Dict) -> None:
    """Entry point for crash-isolated per-spec subprocesses."""
    _worker_init(policy_dict)
    record = execute_spec_guarded(RunSpec.from_dict(payload),
                                  WorkerPolicy.from_dict(policy_dict))
    conn.send(record)
    conn.close()


class CampaignAborted(Exception):
    """Internal control flow: the failure budget was exhausted."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class CampaignReport:
    """Summary of one :meth:`CampaignRunner.run` invocation."""

    campaign: str
    total_runs: int
    executed: int
    skipped: int
    workers: int
    wall_clock_s: float
    store_path: str
    records: List[Dict] = field(default_factory=list)
    #: Runs that ended in a failure record (failed / timeout / worker_lost).
    failed: int = 0
    #: Reason the campaign stopped early, or ``None`` if it ran to the end.
    aborted: Optional[str] = None
    #: Whether the pool broke and execution degraded to crash-isolated
    #: per-spec subprocesses.
    degraded: bool = False


class CampaignRunner:
    """Executes a campaign's run table against a result store.

    Parameters beyond the original engine's:

    timeout_s:
        Per-run wall-clock budget; an overrunning simulation is interrupted
        (SIGALRM) and recorded as a ``timeout`` failure.
    max_attempts:
        Attempts per run before a ``failed`` record is written (exceptions
        only; timeouts never retry).
    retry_backoff_s:
        Base sleep between attempts (grows linearly with the attempt
        number).
    max_failures:
        Abort the campaign once more than this many runs have failed; the
        store keeps every record committed so far and stays resumable.
        ``None`` (default) never aborts.
    engine:
        An existing :class:`~repro.campaign.engine.WarmWorkerEngine` to
        execute on (its warm pool, kernel caches and lease-size EMA
        persist across campaigns).  ``None`` (default) creates a
        per-invocation engine sized to ``workers`` and closes it when the
        run finishes.
    """

    def __init__(
        self,
        campaign: Campaign,
        store: ResultStore,
        workers: int = 1,
        quick: bool = False,
        resume: bool = False,
        timeout_s: Optional[float] = None,
        max_attempts: int = 1,
        retry_backoff_s: float = 0.0,
        max_failures: Optional[int] = None,
        engine=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.campaign = campaign
        self.store = store
        self.workers = workers
        self.quick = quick
        self.resume = resume
        self.max_failures = max_failures
        self.engine = engine
        self.policy = WorkerPolicy(timeout_s=timeout_s,
                                   max_attempts=max_attempts,
                                   backoff_s=retry_backoff_s)
        #: Kernel-cache totals across the execution substrate, populated
        #: by :meth:`run` (worker-aggregated in pool mode).
        self.kernel_cache_totals: Optional[Dict] = None

    def pending_specs(self) -> List[RunSpec]:
        """The ordered run table, minus runs whose latest record is ok.

        Failed, timed-out and worker-lost records do *not* count as done —
        resume re-runs exactly that set plus anything never attempted.
        """
        specs = self.campaign.expand(quick=self.quick)
        if not self.resume:
            return specs
        done = self.store.completed_fingerprints()
        return [spec for spec in specs if spec.fingerprint() not in done]

    # -- execution ---------------------------------------------------------
    def run(self, progress: Optional[Callable[[Dict], None]] = None) -> CampaignReport:
        """Execute every pending run; append each record to the store.

        ``progress`` (if given) is called with each record as it is
        committed — the CLI uses it for per-run status lines.  Failures
        are committed as structured records, never raised; the campaign
        stops early only when ``max_failures`` is exceeded (recorded in
        the report's ``aborted`` field) or on ``KeyboardInterrupt``, which
        terminates the pool cleanly and re-raises with the store flushed
        and resumable.
        """
        total = self.campaign.size()
        specs = self.pending_specs()
        started = time.perf_counter()
        records: List[Dict] = []
        failures = 0
        aborted: Optional[str] = None
        degraded = False
        # Live-status sidecar (``<store>.progress``): atomic, throttled,
        # best-effort.  ``repro campaign status`` reads it while the sweep
        # runs; readers of the store itself are unaffected.
        status = ProgressWriter(
            progress_path_for(str(self.store.path)),
            campaign=self.campaign.name,
            total=len(specs),
            workers=self.workers,
        )

        def commit(record: Dict, line: Optional[str] = None) -> None:
            nonlocal failures
            # Engine leases arrive with the record already encoded as its
            # canonical store line — append the bytes, don't re-serialise.
            if line is not None:
                self.store.append_line(line)
            else:
                self.store.append(record)
            records.append(record)
            status.record_run(ok=record.get("status", STATUS_OK) == STATUS_OK)
            if progress is not None:
                progress(record)
            if record.get("status", STATUS_OK) != STATUS_OK:
                failures += 1
                if (self.max_failures is not None
                        and failures > self.max_failures):
                    raise CampaignAborted(
                        f"aborted after {failures} failures "
                        f"(max_failures={self.max_failures})"
                    )

        try:
            # A caller-supplied engine is used even at workers=1 — its warm
            # GC-free worker beats in-process serial execution; without one,
            # a single-worker (or single-spec) table runs serially in-process
            # rather than paying pool start-up for no parallelism.
            if self.engine is None and (self.workers == 1 or len(specs) <= 1):
                for spec in specs:
                    commit(execute_spec_guarded(spec, self.policy))
            else:
                degraded = self._run_engine(specs, commit, status.heartbeat)
        except CampaignAborted as stop:
            aborted = stop.reason
        except BaseException:
            # Ctrl-C / crash: stamp the sidecar before propagating so a
            # status watcher sees "aborted", not an eternally-stale "running".
            status.finish("aborted")
            raise
        status.finish("done" if aborted is None else "aborted")
        if self.kernel_cache_totals is None:
            # Serial (or aborted-before-telemetry) execution: the kernel
            # cache of interest is this process's own.
            from ..lang.treekernel import kernel_cache_info

            self.kernel_cache_totals = dict(kernel_cache_info(), workers=0)

        return CampaignReport(
            campaign=self.campaign.name,
            total_runs=total,
            executed=len(records),
            skipped=total - len(specs),
            workers=self.workers,
            wall_clock_s=time.perf_counter() - started,
            store_path=str(self.store.path),
            records=records,
            failed=failures,
            aborted=aborted,
            degraded=degraded,
        )

    def _run_engine(self, specs: List[RunSpec],
                    commit: Callable[[Dict], None],
                    heartbeat: Optional[Callable[[int], None]] = None) -> bool:
        """Warm-engine execution with a lease watchdog.

        Delegates to a :class:`~repro.campaign.engine.WarmWorkerEngine`
        (the caller's persistent one, or a per-invocation engine warmed
        for this campaign's factor space).  Returns ``True`` if the pool
        broke and the remaining specs were executed in crash-isolated
        per-spec subprocesses instead.
        """
        from .engine import EngineBroken, WarmupSpec, WarmWorkerEngine

        engine = self.engine
        owned = engine is None
        if owned:
            engine = WarmWorkerEngine(
                workers=self.workers,
                policy=self.policy,
                warmup=WarmupSpec.for_campaign(self.campaign),
            )
        try:
            try:
                engine.execute(specs, commit, heartbeat=heartbeat)
                return False
            except EngineBroken as broken:
                # A worker died mid-lease or wedged past every bound: the
                # pool is gone.  Finish the remaining specs crash-isolated,
                # one subprocess each, so a poisoned run cannot take the
                # sweep down with it.
                context = multiprocessing.get_context(_start_method())
                self._run_isolated(specs[broken.committed:], commit, context)
                return True
        finally:
            self.kernel_cache_totals = engine.stats.kernel_cache_totals()
            if owned:
                engine.close()

    def _run_isolated(self, specs: List[RunSpec],
                      commit: Callable[[Dict], None], context) -> None:
        """Degraded mode: one subprocess per spec, crash-isolated.

        A run that kills its process (segfault, ``os._exit``, OOM kill)
        produces a ``worker_lost`` record with the exit code; a run that
        wedges past every bound is terminated and recorded as ``timeout``.
        Slower than the pool, but no single run can take anything else
        down with it.
        """
        policy_dict = self.policy.to_dict()
        per_run = self.policy.timeout_s or DEFAULT_WATCHDOG_RUN_S
        budget = (per_run + self.policy.backoff_s * self.policy.max_attempts) \
            * self.policy.max_attempts + 5.0
        for spec in specs:
            receiver, sender = context.Pipe(duplex=False)
            process = context.Process(
                target=_isolated_entry,
                args=(sender, spec.to_dict(), policy_dict),
                name=f"campaign-run-{spec.run_id}",
            )
            process.start()
            sender.close()
            record: Optional[Dict] = None
            try:
                if receiver.poll(budget):
                    record = receiver.recv()
            except (EOFError, OSError):
                record = None  # worker died before sending
            if record is None:
                # A dying worker closes its pipe end a moment before the
                # process is reapable — give it a beat so death is not
                # misclassified as a hang.
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join()
                    record = failure_record(
                        spec, STATUS_TIMEOUT,
                        TimeoutError(f"isolated run exceeded {budget:.0f}s"),
                        self.policy.max_attempts, budget, trace="",
                    )
                else:
                    process.join()
                    code = process.exitcode
                    record = failure_record(
                        spec, STATUS_WORKER_LOST,
                        ChildProcessError(
                            f"worker died with exit code {code}"),
                        1, 0.0, trace="",
                    )
            else:
                process.join()
            receiver.close()
            commit(record)


def _start_method() -> str:
    """Prefer fork (cheap, inherits the warm interpreter); fall back to
    whatever the platform offers (spawn works because payloads are dicts)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]
