"""Compiling a scheduling tree onto a PIFO mesh (Section 4.3, Figures 10-11).

The compiler takes a :class:`~repro.core.tree.ScheduleTree` and produces a
:class:`MeshProgram`:

* every tree **level** is assigned its own PIFO block (``sched_L<i>``), so a
  packet performs at most one enqueue and one dequeue per block per level —
  the constraint that makes work-conserving algorithms run at line rate;
* every node with a shaping transaction gets its shaping PIFO placed in an
  **additional** block for that level (``shape_L<i>``), exactly as Figure 11
  adds a separate block for ``TBF_Right``;
* next-hop lookup tables are generated per block: interior scheduling PIFOs
  chain a *dequeue* to the child level's block, leaf scheduling PIFOs
  *transmit*, and shaping PIFOs *enqueue* into the parent level's block.

:class:`HardwareScheduler` then executes the tree's transactions against the
compiled mesh, providing the same external interface as the reference
:class:`~repro.core.scheduler.ProgrammableScheduler` so the two can be
compared packet for packet.

Fidelity note: the flow-scheduler + rank-store decomposition assumes packet
ranks do not *decrease* within a flow (Section 5.2's structural
observation).  Algorithms that violate it (for example SRPT, where a flow's
remaining size shrinks) may see head-of-flow blocking relative to an ideal
PIFO; ``tests/hardware/test_equivalence.py`` demonstrates both the
equivalence under the assumption and the documented deviation without it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.backend import BackendSpec
from ..core.packet import Packet
from ..core.scheduler import SchedulerStats, ShapingToken
from ..core.transaction import TransactionContext
from ..core.tree import ScheduleTree, TreeNode
from ..exceptions import CompilationError, SchedulerError
from .mesh import NextHop, PIFOMesh
from .pifo_block import PIFOBlock


@dataclass(frozen=True)
class PIFOAssignment:
    """Placement of one logical PIFO in the mesh."""

    node: str
    block: str
    logical_pifo: int
    kind: str  # "scheduling" | "shaping"


@dataclass
class MeshProgram:
    """The compiler's output: a configured mesh plus placement metadata."""

    mesh: PIFOMesh
    scheduling_assignment: Dict[str, PIFOAssignment]
    shaping_assignment: Dict[str, PIFOAssignment]
    levels: int

    def block_count(self) -> int:
        return self.mesh.block_count()

    def assignments(self) -> List[PIFOAssignment]:
        return list(self.scheduling_assignment.values()) + list(
            self.shaping_assignment.values()
        )

    def describe(self) -> str:
        lines = [f"{self.levels} tree levels, {self.block_count()} PIFO blocks"]
        lines.append(self.mesh.describe())
        return "\n".join(lines)


class MeshCompiler:
    """Turns scheduling trees into configured PIFO meshes."""

    def __init__(
        self,
        capacity_flows: int = 1024,
        rank_store_capacity: int = 64 * 1024,
        logical_pifos_per_block: int = 256,
        max_blocks: Optional[int] = None,
        pifo_backend: BackendSpec = None,
    ) -> None:
        self.capacity_flows = capacity_flows
        self.rank_store_capacity = rank_store_capacity
        self.logical_pifos_per_block = logical_pifos_per_block
        self.max_blocks = max_blocks
        self.pifo_backend = pifo_backend

    def _new_block(self, mesh: PIFOMesh, name: str) -> PIFOBlock:
        block = PIFOBlock(
            name=name,
            capacity_flows=self.capacity_flows,
            rank_store_capacity=self.rank_store_capacity,
            logical_pifo_count=self.logical_pifos_per_block,
            pifo_backend=self.pifo_backend,
        )
        return mesh.add_block(block)

    def compile(self, tree: ScheduleTree) -> MeshProgram:
        """Compile the tree; raises :class:`CompilationError` on violations
        of block capacity or the block budget."""
        mesh = PIFOMesh()
        levels = tree.levels()
        scheduling_assignment: Dict[str, PIFOAssignment] = {}
        shaping_assignment: Dict[str, PIFOAssignment] = {}

        # Pass 1: create blocks and assign logical PIFO IDs level by level.
        sched_block_of_level: Dict[int, str] = {}
        shape_block_of_level: Dict[int, str] = {}
        for depth, nodes in enumerate(levels):
            if len(nodes) > self.logical_pifos_per_block:
                raise CompilationError(
                    f"level {depth} has {len(nodes)} nodes, more than the "
                    f"{self.logical_pifos_per_block} logical PIFOs one block provides"
                )
            sched_name = f"sched_L{depth}"
            self._new_block(mesh, sched_name)
            sched_block_of_level[depth] = sched_name
            for index, node in enumerate(nodes):
                scheduling_assignment[node.name] = PIFOAssignment(
                    node=node.name,
                    block=sched_name,
                    logical_pifo=index,
                    kind="scheduling",
                )
            shaped_nodes = [node for node in nodes if node.shaping is not None]
            if shaped_nodes:
                shape_name = f"shape_L{depth}"
                self._new_block(mesh, shape_name)
                shape_block_of_level[depth] = shape_name
                for index, node in enumerate(shaped_nodes):
                    shaping_assignment[node.name] = PIFOAssignment(
                        node=node.name,
                        block=shape_name,
                        logical_pifo=index,
                        kind="shaping",
                    )

        if self.max_blocks is not None and mesh.block_count() > self.max_blocks:
            raise CompilationError(
                f"tree needs {mesh.block_count()} PIFO blocks, exceeding the "
                f"mesh budget of {self.max_blocks}"
            )

        # Pass 2: next-hop lookup tables.
        for depth, nodes in enumerate(levels):
            for node in nodes:
                assignment = scheduling_assignment[node.name]
                if node.is_leaf:
                    hop = NextHop(operation="transmit")
                else:
                    hop = NextHop(
                        operation="dequeue",
                        target_block=sched_block_of_level[depth + 1],
                    )
                mesh.set_next_hop(assignment.block, assignment.logical_pifo, hop)
            for node in nodes:
                if node.shaping is None:
                    continue
                assignment = shaping_assignment[node.name]
                if node.parent is None:  # pragma: no cover - tree validation forbids
                    raise CompilationError("root node cannot carry shaping")
                parent_block = scheduling_assignment[node.parent.name].block
                mesh.set_next_hop(
                    assignment.block,
                    assignment.logical_pifo,
                    NextHop(operation="enqueue", target_block=parent_block),
                )

        return MeshProgram(
            mesh=mesh,
            scheduling_assignment=scheduling_assignment,
            shaping_assignment=shaping_assignment,
            levels=len(levels),
        )


def compile_tree(tree: ScheduleTree, **kwargs) -> MeshProgram:
    """Convenience wrapper: ``MeshCompiler(**kwargs).compile(tree)``."""
    return MeshCompiler(**kwargs).compile(tree)


class HardwareScheduler:
    """Executes a scheduling tree on a compiled PIFO mesh.

    Provides the same ``enqueue`` / ``dequeue`` / ``next_shaping_release`` /
    ``__len__`` interface as the reference engine so it can drive an
    :class:`~repro.sim.link.OutputPort` or be diffed against the reference
    packet by packet.
    """

    def __init__(self, tree: ScheduleTree, program: Optional[MeshProgram] = None,
                 compiler: Optional[MeshCompiler] = None,
                 pifo_backend: BackendSpec = None) -> None:
        self.tree = tree
        self.pifo_backend = (
            compiler.pifo_backend if compiler is not None else pifo_backend
        )
        # Kept so reset()/use_backend() recompile with the caller's block
        # capacities instead of silently reverting to defaults.
        self._compiler = compiler
        self.program = program if program is not None else (
            compiler or MeshCompiler(pifo_backend=pifo_backend)
        ).compile(tree)
        self.mesh = self.program.mesh
        self.stats = SchedulerStats()
        self._buffered_packets = 0
        # Count of elements per node's scheduling PIFO (for invariants).
        self._node_elements: Dict[str, int] = {node.name: 0 for node in tree.nodes()}
        # Global shaping calendar: (release_time, push order, token, slot).
        # Mirrors the reference engine so release processing is O(log n) per
        # token instead of scanning every shaping assignment per poll.
        self._shaping_calendar: List[Tuple[float, int, ShapingToken, PIFOAssignment]] = []
        self._calendar_seq = 0

    # -- placement helpers ------------------------------------------------------------
    def _sched_slot(self, node: TreeNode) -> PIFOAssignment:
        return self.program.scheduling_assignment[node.name]

    def _shape_slot(self, node: TreeNode) -> PIFOAssignment:
        return self.program.shaping_assignment[node.name]

    def _block(self, name: str) -> PIFOBlock:
        return self.mesh.blocks[name]

    # -- enqueue path -------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: Optional[float] = None) -> bool:
        time_now = packet.arrival_time if now is None else now
        path = self.tree.match_path(packet)
        self._walk_up(packet, path, 0, time_now, from_child=None)
        packet.enqueue_time = time_now
        self._buffered_packets += 1
        self.stats.enqueued += 1
        return True

    def _walk_up(
        self,
        packet: Packet,
        path: List[TreeNode],
        start_index: int,
        now: float,
        from_child: Optional[TreeNode],
    ) -> None:
        child = from_child
        for index in range(start_index, len(path)):
            node = path[index]
            element = packet if child is None else child
            flow = node.element_flow(packet, child)
            ctx = TransactionContext(
                now=now,
                node=node.name,
                element_flow=flow,
                element_length=packet.length,
            )
            rank = node.scheduling(packet, ctx)
            slot = self._sched_slot(node)
            self._block(slot.block).enqueue(
                slot.logical_pifo, rank=rank, flow=flow, metadata=element
            )
            self._node_elements[node.name] += 1
            self.stats.transactions_executed += 1

            if node.shaping is not None and index + 1 < len(path):
                send_time = node.shaping(packet, ctx)
                self.stats.transactions_executed += 1
                token = ShapingToken(
                    node=node,
                    packet=packet,
                    path=path,
                    resume_index=index + 1,
                    release_time=send_time,
                )
                shape_slot = self._shape_slot(node)
                self._block(shape_slot.block).enqueue(
                    shape_slot.logical_pifo,
                    rank=send_time,
                    flow=node.name,
                    metadata=token,
                )
                heapq.heappush(
                    self._shaping_calendar,
                    (send_time, self._calendar_seq, token, shape_slot),
                )
                self._calendar_seq += 1
                return
            child = node

    # -- shaping releases ----------------------------------------------------------------
    def _token_is_masked(self, token: ShapingToken, slot: PIFOAssignment) -> bool:
        """A shaping entry is paused when its flow (the shaped node's name)
        is PFC-masked in the shaping block; it must be *deferred*, never
        discarded — it becomes releasable again on unmask."""
        block = self._block(slot.block)
        return token.node.name in block.flow_scheduler.masked_flows()

    def _calendar_entry_is_stale(
        self, token: ShapingToken, slot: PIFOAssignment
    ) -> bool:
        """Stale when the token no longer heads its shaping logical PIFO
        (only possible after an external reset/recompile)."""
        head = self._block(slot.block).peek(slot.logical_pifo)
        return head is None or head.metadata is not token

    def process_shaping_releases(self, now: float) -> int:
        """Release due tokens in global release-time order by popping the
        shaping calendar — O(log n) per token, independent of how many
        shaped nodes the program has.  PFC-masked entries are set aside
        and re-queued so a pause defers (not drops) the release."""
        released = 0
        calendar = self._shaping_calendar
        deferred = []
        while calendar and calendar[0][0] <= now:
            entry = heapq.heappop(calendar)
            _, _, token, slot = entry
            if self._token_is_masked(token, slot):
                deferred.append(entry)
                continue
            if self._calendar_entry_is_stale(token, slot):
                continue
            self._block(slot.block).dequeue(slot.logical_pifo)
            self.stats.shaping_releases += 1
            released += 1
            self._walk_up(
                token.packet,
                token.path,
                token.resume_index,
                max(token.release_time, 0.0),
                from_child=token.node,
            )
        for entry in deferred:
            heapq.heappush(calendar, entry)
        return released

    def next_shaping_release(self) -> Optional[float]:
        """Earliest *releasable* pending time, skipping PFC-masked entries
        (a masked token cannot fire, and advertising its time would shadow
        later releasable tokens — the seed's mask-honouring peek likewise
        made paused heads invisible here)."""
        calendar = self._shaping_calendar
        deferred = []
        result: Optional[float] = None
        while calendar:
            release_time, _, token, slot = calendar[0]
            if self._token_is_masked(token, slot):
                deferred.append(heapq.heappop(calendar))
                continue
            if self._calendar_entry_is_stale(token, slot):
                heapq.heappop(calendar)
                continue
            result = release_time
            break
        for entry in deferred:
            heapq.heappush(calendar, entry)
        return result

    # -- dequeue path ----------------------------------------------------------------------
    def dequeue(self, now: float = 0.0) -> Optional[Packet]:
        self.process_shaping_releases(now)
        node = self.tree.root
        slot = self._sched_slot(node)
        if self._block(slot.block).is_empty(slot.logical_pifo):
            return None
        while True:
            slot = self._sched_slot(node)
            result = self._block(slot.block).dequeue(slot.logical_pifo)
            if result is None:
                raise SchedulerError(
                    f"dangling reference: node {node.name!r} was referenced but "
                    "its logical PIFO is empty"
                )
            self._node_elements[node.name] -= 1
            element = result.metadata
            ctx = TransactionContext(
                now=now,
                node=node.name,
                element_flow=result.flow,
                element_length=0 if isinstance(element, TreeNode) else element.length,
                extras={"rank": result.rank},
            )
            node.scheduling.on_dequeue(element, ctx)
            if isinstance(element, TreeNode):
                # Follow the next-hop table downward (and sanity-check that
                # the compiled table agrees with the tree structure).
                hop = self.mesh.next_hop(slot.block, slot.logical_pifo)
                child_slot = self._sched_slot(element)
                if hop.operation != "dequeue" or hop.target_block != child_slot.block:
                    raise SchedulerError(
                        "next-hop table disagrees with tree structure for node "
                        f"{node.name!r}"
                    )
                node = element
                continue
            packet: Packet = element
            packet.dequeue_time = now
            self._buffered_packets -= 1
            self.stats.dequeued += 1
            return packet

    # -- misc -----------------------------------------------------------------------------
    def __len__(self) -> int:
        return self._buffered_packets

    @property
    def is_empty(self) -> bool:
        return self._buffered_packets == 0

    def drain(self, now: float = 0.0) -> List[Packet]:
        packets: List[Packet] = []
        while True:
            packet = self.dequeue(now)
            if packet is None:
                return packets
            packets.append(packet)

    def use_backend(self, backend: BackendSpec) -> None:
        """Recompile the mesh with a different PIFO backend.

        Only valid while empty (the mesh is rebuilt from scratch); the
        simulator's ports call this before a run starts.
        """
        if self._buffered_packets:
            raise SchedulerError(
                "cannot swap the PIFO backend of a hardware scheduler with "
                f"{self._buffered_packets} buffered packets"
            )
        self.pifo_backend = backend
        if self._compiler is not None:
            self._compiler.pifo_backend = backend
        self.reset()

    def reset(self) -> None:
        """Reset transactions and recompile a fresh mesh (with the original
        compiler's capacities when one was supplied)."""
        self.tree.reset()
        compiler = (
            self._compiler
            if self._compiler is not None
            else MeshCompiler(pifo_backend=self.pifo_backend)
        )
        self.program = compiler.compile(self.tree)
        self.mesh = self.program.mesh
        self.stats = SchedulerStats()
        self._buffered_packets = 0
        self._node_elements = {node.name: 0 for node in self.tree.nodes()}
        self._shaping_calendar.clear()
        self._calendar_seq = 0
