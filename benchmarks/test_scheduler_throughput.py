"""Microbenchmarks — raw scheduler throughput of the Python models.

Not a paper table; this benchmark sizes the reproduction itself: packets per
second sustained by the reference engine, the mesh-backed hardware model and
the classic baselines, for the workloads the other benchmarks use.  Useful
when scaling simulation durations and when comparing against the paper's
1 GHz (10^9 packets/s) hardware target to keep expectations calibrated.

The PIFO-backend section at the bottom is parametrized over every
registered backend (see ``repro.core.backend``) on a 50 000-packet FIFO
workload, compares them against the seed's ``list.pop(0)``-based PIFO, and
writes the measured packets/second to ``BENCH_pifo_backends.json`` at the
repo root (the artifact CI uploads).  Set ``BENCH_QUICK=1`` to shrink the
workload for smoke runs.
"""

from __future__ import annotations

import bisect
import json
import os
import random
import time
from pathlib import Path

import pytest
from conftest import report

from repro.algorithms import (
    ArrivalSequenceTransaction,
    FIFOTransaction,
    StrictPriorityTransaction,
    build_fig3_tree,
    build_wfq_tree,
)
from repro.baselines import DeficitRoundRobin, FIFOQueue
from repro.core import Packet, ProgrammableScheduler, SortedListPIFO, single_node_tree
from repro.core.pifo import PIFOBase
from repro.hardware import HardwareScheduler

PACKET_COUNT = 2000

#: The backend comparison workload (Section "pluggable backends" of
#: DESIGN.md).  BENCH_QUICK=1 shrinks it for CI smoke runs; the speedup
#: gates only apply at full size, where the seed's O(n^2) term dominates.
BENCH_QUICK = bool(os.environ.get("BENCH_QUICK"))
BACKEND_PACKET_COUNT = 10_000 if BENCH_QUICK else 50_000
BENCH_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_pifo_backends.json"


class SeedListPIFO(SortedListPIFO):
    """The seed's reference PIFO: identical ordering, but head removal via
    ``list.pop(0)`` — O(n) per dequeue.  Kept (benchmark-only) as the
    baseline the pluggable backends are measured against.

    Pinned to the seed's *original* insert path as well: SortedListPIFO
    later grew a fused ``push`` with a monotone-append fast path (the
    hot-path overhaul), and inheriting those would anachronistically speed
    up the baseline the speedup gates are defined against."""

    backend_name = "seed-list"

    # The generic base-class push (capacity check -> PIFOEntry -> _insert
    # dispatch), exactly what the seed executed.
    push = PIFOBase.push

    def _insert(self, entry):
        # Seed behavior: unconditional bisect + insert (no append shortcut).
        index = bisect.bisect_right(self._keys, entry.key(), lo=self._front)
        self._keys.insert(index, entry.key())
        self._entries.insert(index, entry)

    def _pop_head(self):
        self._keys.pop(0)
        return self._entries.pop(0)


def make_packets(seed=0):
    rng = random.Random(seed)
    return [
        Packet(flow=rng.choice("ABCD"), length=rng.choice([500, 1000, 1500]))
        for _ in range(PACKET_COUNT)
    ]


def drive(scheduler, packets):
    for packet in packets:
        scheduler.enqueue(packet, now=0.0)
    count = 0
    while scheduler.dequeue(now=0.0) is not None:
        count += 1
    return count


def test_throughput_reference_wfq(benchmark):
    packets = make_packets()
    count = benchmark(lambda: drive(
        ProgrammableScheduler(build_wfq_tree({f: 1.0 for f in "ABCD"})),
        [p.copy() for p in packets]))
    assert count == PACKET_COUNT


def test_throughput_reference_hpfq(benchmark):
    packets = make_packets()
    count = benchmark(lambda: drive(
        ProgrammableScheduler(build_fig3_tree()), [p.copy() for p in packets]))
    assert count == PACKET_COUNT


def test_throughput_hardware_model_hpfq(benchmark):
    packets = make_packets()
    count = benchmark(lambda: drive(
        HardwareScheduler(build_fig3_tree()), [p.copy() for p in packets]))
    assert count == PACKET_COUNT


def test_throughput_reference_fifo(benchmark):
    packets = make_packets()
    count = benchmark(lambda: drive(
        ProgrammableScheduler(single_node_tree(FIFOTransaction())),
        [p.copy() for p in packets]))
    assert count == PACKET_COUNT


def test_throughput_baseline_fifo_queue(benchmark):
    packets = make_packets()
    count = benchmark(lambda: drive(FIFOQueue(), [p.copy() for p in packets]))
    assert count == PACKET_COUNT


def test_throughput_baseline_drr(benchmark):
    packets = make_packets()
    count = benchmark(lambda: drive(
        DeficitRoundRobin(weights={f: 1.0 for f in "ABCD"}),
        [p.copy() for p in packets]))
    assert count == PACKET_COUNT


def test_throughput_summary_table(benchmark):
    """One consolidated run printing packets/second for every model."""
    packets = make_packets()

    def run_all():
        import time

        results = {}
        candidates = {
            "reference FIFO": lambda: ProgrammableScheduler(
                single_node_tree(FIFOTransaction())),
            "reference HPFQ": lambda: ProgrammableScheduler(build_fig3_tree()),
            "hardware-model HPFQ": lambda: HardwareScheduler(build_fig3_tree()),
            "baseline FIFO queue": lambda: FIFOQueue(),
            "baseline DRR": lambda: DeficitRoundRobin(),
        }
        for name, factory in candidates.items():
            clones = [p.copy() for p in packets]
            start = time.perf_counter()
            drive(factory(), clones)
            elapsed = time.perf_counter() - start
            results[name] = PACKET_COUNT / elapsed
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "Python-model throughput (packets/second; hardware target is 10^9)",
        [{"model": name, "packets_per_second": rate} for name, rate in results.items()],
    )
    assert all(rate > 1000 for rate in results.values())


# --------------------------------------------------------------------------- #
# Pluggable PIFO backends (50 k-packet workload)                              #
# --------------------------------------------------------------------------- #
def make_backend_packets(count, seed=1):
    rng = random.Random(seed)
    return [
        Packet(flow=rng.choice("ABCDEFGH"), length=rng.choice([500, 1000, 1500]))
        for _ in range(count)
    ]


def drive_batched(scheduler, packets):
    """Enqueue via the scheduler's batch entry point, then drain.

    Transactions are inherently per packet, so ``enqueue_many`` is a loop
    over ``enqueue``; the backend comparison below measures PIFO storage
    costs, not bulk-insert tricks.
    """
    scheduler.enqueue_many(packets, now=0.0)
    count = 0
    while scheduler.dequeue(now=0.0) is not None:
        count += 1
    return count


def _fifo_scheduler(backend):
    return ProgrammableScheduler(
        single_node_tree(ArrivalSequenceTransaction(), pifo_backend=backend)
    )


@pytest.mark.parametrize("backend", ["sorted", "calendar", "bucketed"])
def test_throughput_backend_fifo_50k(benchmark, backend):
    """Each registered backend sustains the 50 k-packet FIFO workload."""
    packets = make_backend_packets(BACKEND_PACKET_COUNT)
    count = benchmark.pedantic(
        lambda: drive_batched(_fifo_scheduler(backend), [p.copy() for p in packets]),
        rounds=1,
        iterations=1,
    )
    assert count == BACKEND_PACKET_COUNT


@pytest.mark.parametrize("backend", ["sorted", "calendar"])
def test_throughput_backend_hpfq(benchmark, backend):
    """Hierarchical (float-rank) workload on the float-capable backends."""
    packets = make_packets()
    count = benchmark.pedantic(
        lambda: drive(
            ProgrammableScheduler(build_fig3_tree(pifo_backend=backend)),
            [p.copy() for p in packets],
        ),
        rounds=1,
        iterations=1,
    )
    assert count == PACKET_COUNT


def test_throughput_backends_vs_seed_50k(benchmark):
    """Acceptance gate: every pluggable backend beats the seed's
    list.pop(0) scheduler by >= 2x on the 50 k-packet workload that matches
    its rank pattern (see DESIGN.md's backend complexity table), and the
    measured rates land in BENCH_pifo_backends.json for CI.

    Two rank patterns are measured because they stress opposite costs:

    * **fifo** — monotone unique ranks; the seed pays O(n) head removal.
      Best case for the sorted list (inserts land at the tail).
    * **priority8** — 8 repeating integer ranks; the seed pays O(n) on
      *both* insert and head removal.  Best case for the bucket queue.
    """
    rng = random.Random(2)
    workloads = {
        "fifo": (
            ArrivalSequenceTransaction,
            make_backend_packets(BACKEND_PACKET_COUNT),
        ),
        "priority8": (
            StrictPriorityTransaction,
            [
                Packet(
                    flow=rng.choice("ABCDEFGH"),
                    length=rng.choice([500, 1000, 1500]),
                    priority=rng.randrange(8),
                )
                for _ in range(BACKEND_PACKET_COUNT)
            ],
        ),
    }
    candidates = ["seed-list", "sorted", "calendar", "bucketed"]

    def run_all():
        rates = {}
        for workload, (transaction_cls, packets) in workloads.items():
            for backend in candidates:
                spec = SeedListPIFO if backend == "seed-list" else backend
                scheduler = ProgrammableScheduler(
                    single_node_tree(transaction_cls(), pifo_backend=spec)
                )
                clones = [p.copy() for p in packets]
                start = time.perf_counter()
                count = drive_batched(scheduler, clones)
                elapsed = time.perf_counter() - start
                assert count == BACKEND_PACKET_COUNT
                rates.setdefault(workload, {})[backend] = (
                    BACKEND_PACKET_COUNT / elapsed
                )
        return rates

    rates = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for workload, by_backend in rates.items():
        seed_rate = by_backend["seed-list"]
        for name, rate in by_backend.items():
            rows.append(
                {
                    "workload": workload,
                    "backend": name,
                    "packets_per_second": rate,
                    "speedup_vs_seed": rate / seed_rate,
                }
            )
    report(
        f"PIFO backend throughput ({BACKEND_PACKET_COUNT} packets per workload)",
        rows,
    )
    BENCH_ARTIFACT.write_text(
        json.dumps(
            {
                "packet_count": BACKEND_PACKET_COUNT,
                "workloads": {
                    "fifo": "single-node FIFO, monotone arrival-sequence ranks",
                    "priority8": "single-node strict priority, 8 integer rank values",
                },
                "packets_per_second": rates,
                "speedup_vs_seed": {
                    workload: {
                        name: rate / by_backend["seed-list"]
                        for name, rate in by_backend.items()
                    }
                    for workload, by_backend in rates.items()
                },
            },
            indent=2,
        )
        + "\n"
    )
    if BENCH_QUICK:
        # At smoke size the seed's quadratic term barely registers; the
        # run exists to exercise the code and emit the artifact.
        return
    # Each backend must show the >= 2x win on the workload whose rank
    # pattern it targets (and must never lose to the seed anywhere).
    gates = {
        "sorted": "fifo",
        "calendar": "fifo",
        "bucketed": "priority8",
    }
    for backend, workload in gates.items():
        ratio = rates[workload][backend] / rates[workload]["seed-list"]
        assert ratio >= 2.0, (
            f"{backend} is only {ratio:.2f}x the seed scheduler on {workload}"
        )
    for workload, by_backend in rates.items():
        for backend in ("sorted", "calendar", "bucketed"):
            assert by_backend[backend] >= 0.9 * by_backend["seed-list"], (
                f"{backend} lost to the seed scheduler on {workload}"
            )
