"""Token Bucket Filter shaping transaction (Figure 4c).

The TBF shaping transaction rate-limits a node of a scheduling tree.  It
maintains a token bucket with rate *r* and burst allowance *B*; each element
is assigned the wall-clock time at which enough tokens will have accumulated
for it to depart.  Figure 4c::

    tokens = min(tokens + r * (now - last_time), B)
    if p.length <= tokens:
        p.send_time = now
    else:
        p.send_time = now + (p.length - tokens) / r
    tokens = tokens - p.length
    last_time = now
    p.rank = p.send_time

Note that tokens may go negative, which is what spaces out a long burst at
exactly rate *r* — each subsequent packet's send time moves further into the
future.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.packet import Packet
from ..core.transaction import ShapingTransaction, TransactionContext


class TokenBucketShapingTransaction(ShapingTransaction):
    """Shaping transaction implementing a token bucket filter.

    Parameters
    ----------
    rate_bps:
        Token generation rate in bits per second (the rate limit).
    burst_bytes:
        Bucket depth in bytes (the burst allowance ``B``).
    initial_tokens_bytes:
        Initial fill of the bucket; defaults to a full bucket, matching the
        common configuration where an idle class may send one burst at line
        rate.
    """

    state_variables = ("tokens", "last_time")

    def __init__(
        self,
        rate_bps: float,
        burst_bytes: float,
        initial_tokens_bytes: float = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst_bytes must be positive")
        self.rate_bps = rate_bps
        self.rate_bytes_per_s = rate_bps / 8.0
        self.burst_bytes = burst_bytes
        self.initial_tokens_bytes = (
            burst_bytes if initial_tokens_bytes is None else initial_tokens_bytes
        )
        super().__init__()

    def initial_state(self) -> Dict[str, Any]:
        return {"tokens": self.initial_tokens_bytes, "last_time": 0.0}

    def compute_send_time(self, packet: Packet, ctx: TransactionContext) -> float:
        now = ctx.now
        length = ctx.element_length or packet.length
        tokens = min(
            self.state["tokens"]
            + self.rate_bytes_per_s * (now - self.state["last_time"]),
            self.burst_bytes,
        )
        if length <= tokens:
            send_time = now
        else:
            send_time = now + (length - tokens) / self.rate_bytes_per_s
        self.state["tokens"] = tokens - length
        self.state["last_time"] = now
        return send_time

    def describe(self) -> str:
        return (
            f"TokenBucket(rate={self.rate_bps / 1e6:.3g} Mbit/s, "
            f"burst={self.burst_bytes:.0f} B)"
        )


class TokenBucketSchedulingGate:
    """Plain (non-transaction) token bucket used by baselines and tests.

    Provides ``conforming(length, now)``/``consume(length, now)`` so classic
    shapers outside the PIFO model can share the exact arithmetic of the
    shaping transaction, keeping comparisons apples-to-apples.
    """

    def __init__(self, rate_bps: float, burst_bytes: float) -> None:
        if rate_bps <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate_bytes_per_s = rate_bps / 8.0
        self.burst_bytes = burst_bytes
        self.tokens = burst_bytes
        self.last_time = 0.0

    def _replenish(self, now: float) -> None:
        self.tokens = min(
            self.tokens + self.rate_bytes_per_s * (now - self.last_time),
            self.burst_bytes,
        )
        self.last_time = now

    def conforming(self, length_bytes: float, now: float) -> bool:
        """Would a packet of this length conform right now?"""
        self._replenish(now)
        return length_bytes <= self.tokens

    def consume(self, length_bytes: float, now: float) -> float:
        """Consume tokens and return the earliest conforming send time."""
        self._replenish(now)
        if length_bytes <= self.tokens:
            send_time = now
        else:
            send_time = now + (length_bytes - self.tokens) / self.rate_bytes_per_s
        self.tokens -= length_bytes
        return send_time
