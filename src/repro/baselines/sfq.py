"""Stochastic Fairness Queueing (McKenney) baseline.

SFQ approximates fair queueing by hashing flows into a fixed number of
buckets and serving the buckets round-robin.  Flows that collide in a bucket
share that bucket's service.  It is listed by the paper as one of the
practical approximations of WFQ, and serves here as a cheap baseline whose
fairness degrades with collisions — a contrast the fairness benchmarks can
show against STFQ-on-PIFO.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..core.packet import Packet


class StochasticFairnessQueueing:
    """Round-robin over hash buckets of flows.

    Parameters
    ----------
    bucket_count:
        Number of hash buckets.  More buckets means fewer collisions and
        fairness closer to per-flow fair queueing.
    hash_seed:
        Perturbs the flow-to-bucket hash (real SFQ re-seeds periodically to
        avoid persistent collisions; tests pick seeds deterministically).
    capacity_packets:
        Optional bound on total buffered packets (tail drop).
    """

    def __init__(
        self,
        bucket_count: int = 64,
        hash_seed: int = 0,
        capacity_packets: Optional[int] = None,
    ) -> None:
        if bucket_count <= 0:
            raise ValueError("bucket_count must be positive")
        self.bucket_count = bucket_count
        self.hash_seed = hash_seed
        self.capacity_packets = capacity_packets
        self._buckets: List[Deque[Packet]] = [deque() for _ in range(bucket_count)]
        self._next_bucket = 0
        self._count = 0
        self.drops = 0

    def bucket_of(self, flow: str) -> int:
        """Deterministic hash of a flow to a bucket index."""
        value = 2166136261 ^ self.hash_seed
        for char in flow:
            value = ((value ^ ord(char)) * 16777619) & 0xFFFFFFFF
        return value % self.bucket_count

    def enqueue(self, packet: Packet, now: float = 0.0) -> bool:
        if self.capacity_packets is not None and self._count >= self.capacity_packets:
            self.drops += 1
            return False
        packet.enqueue_time = now
        self._buckets[self.bucket_of(packet.flow)].append(packet)
        self._count += 1
        return True

    def dequeue(self, now: float = 0.0) -> Optional[Packet]:
        if self._count == 0:
            return None
        for offset in range(self.bucket_count):
            index = (self._next_bucket + offset) % self.bucket_count
            bucket = self._buckets[index]
            if bucket:
                packet = bucket.popleft()
                packet.dequeue_time = now
                self._count -= 1
                self._next_bucket = (index + 1) % self.bucket_count
                return packet
        return None  # pragma: no cover - unreachable while _count > 0

    def __len__(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0
