"""Network fabric layer: topologies, routing, multi-hop simulation.

The paper's headline claims are about *networks* — LSTF minimises urgent
delay across hops, SRPT/pFabric comparisons run on fabrics — while the
substrate below this package simulates one port.  :mod:`repro.net` closes
that gap:

* :mod:`~repro.net.topology` — :class:`Network` graphs of :class:`Host` /
  :class:`SwitchNode` objects joined by :class:`Link`\\ s (rate +
  propagation delay), with :func:`linear_chain`, :func:`dumbbell` and
  :func:`leaf_spine` builders;
* :mod:`~repro.net.routing` — static shortest-path forwarding tables with
  an ECMP option (stable CRC32 flow hashing);
* :mod:`~repro.net.fabric` — :class:`Fabric` instantiates a
  :class:`~repro.switch.SharedMemorySwitch` per node and chains egress
  ports to next-hop ingress through the
  :class:`~repro.sim.link.OutputPort` delivery hook, stamping per-hop
  timestamps on every packet;
* :mod:`~repro.net.scenario` — the declarative :class:`Scenario` engine
  (topology + traffic matrix + scheduler variants + metrics) and registry;
* :mod:`~repro.net.scenarios` — built-in fabric scenarios (``fig6_chain``,
  ``leaf_spine_fct``, plus the fault scenarios ``chain_flap`` and
  ``dead_spine``) consumed by the experiment registry and CLI;
* :mod:`~repro.net.faults` — declarative :class:`FaultPlan` schedules of
  link/switch failures and probabilistic loss, executed against a live
  fabric with exact ``lost_to_faults`` conservation accounting.

Any scheduler and any PIFO backend that runs on a single
:class:`~repro.sim.link.OutputPort` runs unmodified on any topology.
"""

from .fabric import Fabric, HostInjector
from .faults import (
    FaultInjector,
    FaultPlan,
    LinkDown,
    LinkLoss,
    LinkUp,
    SwitchDown,
    SwitchUp,
    flapping_link,
)
from .routing import build_forwarding_tables, hop_distances, next_hops, path
from .scenario import (
    SCENARIOS,
    Demand,
    ProgramVariantBuilder,
    Scenario,
    ScenarioResult,
    get_scenario,
    list_scenarios,
    register,
)
from .scenarios import CHAIN_FLAP, DEAD_SPINE, FIG6_CHAIN, LEAF_SPINE_FCT
from .topology import (
    DEFAULT_LINK_RATE_BPS,
    Host,
    Link,
    Network,
    SwitchNode,
    dumbbell,
    leaf_spine,
    linear_chain,
)

__all__ = [
    "Network",
    "Host",
    "SwitchNode",
    "Link",
    "DEFAULT_LINK_RATE_BPS",
    "linear_chain",
    "dumbbell",
    "leaf_spine",
    "hop_distances",
    "next_hops",
    "path",
    "build_forwarding_tables",
    "Fabric",
    "HostInjector",
    "Demand",
    "Scenario",
    "ScenarioResult",
    "ProgramVariantBuilder",
    "SCENARIOS",
    "register",
    "get_scenario",
    "list_scenarios",
    "FIG6_CHAIN",
    "LEAF_SPINE_FCT",
    "CHAIN_FLAP",
    "DEAD_SPINE",
    "FaultPlan",
    "FaultInjector",
    "LinkDown",
    "LinkUp",
    "SwitchDown",
    "SwitchUp",
    "LinkLoss",
    "flapping_link",
]
