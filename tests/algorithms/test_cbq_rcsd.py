"""Tests for Class-Based Queueing and the RCSD family (Section 3.4)."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    CBQClass,
    build_cbq_tree,
    build_hierarchical_round_robin_tree,
    build_jitter_edd_tree,
    stamp_jitter_slack,
)
from repro.core import Packet, ProgrammableScheduler


class TestCBQ:
    def make_tree(self):
        return build_cbq_tree(
            [
                CBQClass(name="interactive", priority=0, flows={"ssh": 1.0, "voip": 1.0}),
                CBQClass(name="bulk", priority=1, flows={"backup": 1.0, "sync": 3.0}),
            ]
        )

    def test_structure(self):
        tree = self.make_tree()
        assert tree.depth() == 2
        assert {leaf.name for leaf in tree.leaves()} == {"interactive", "bulk"}

    def test_inter_class_strict_priority(self):
        scheduler = ProgrammableScheduler(self.make_tree())
        for _ in range(3):
            scheduler.enqueue(Packet(flow="backup", length=1000))
            scheduler.enqueue(Packet(flow="ssh", length=1000))
        order = [p.flow for p in scheduler.drain()]
        assert order[:3] == ["ssh"] * 3
        assert order[3:] == ["backup"] * 3

    def test_intra_class_fair_queueing(self):
        scheduler = ProgrammableScheduler(self.make_tree())
        for _ in range(8):
            scheduler.enqueue(Packet(flow="backup", length=1000))
            scheduler.enqueue(Packet(flow="sync", length=1000))
        window = [p.flow for p in scheduler.drain()][:8]
        # Weights backup:sync = 1:3.
        assert window.count("sync") == 6
        assert window.count("backup") == 2

    def test_unknown_flow_stops_at_root(self):
        tree = self.make_tree()
        path = tree.match_path(Packet(flow="mystery", length=100))
        assert [n.name for n in path] == [tree.root.name]


class TestJitterEDD:
    def test_regulator_holds_packet_for_jitter_slack(self):
        scheduler = ProgrammableScheduler(build_jitter_edd_tree({"A": 0.01}))
        packet = Packet(flow="A", length=1000,
                        fields={"jitter_slack": 0.005, "delay_bound": 0.01})
        scheduler.enqueue(packet, now=0.0)
        assert scheduler.dequeue(now=0.0) is None
        assert scheduler.dequeue(now=0.004) is None
        assert scheduler.dequeue(now=0.005) is packet

    def test_packet_without_slack_eligible_immediately(self):
        scheduler = ProgrammableScheduler(build_jitter_edd_tree({"A": 0.01}))
        packet = Packet(flow="A", length=1000, fields={"delay_bound": 0.01})
        scheduler.enqueue(packet, now=0.0)
        assert scheduler.dequeue(now=0.0) is packet

    def test_edf_among_eligible_packets(self):
        scheduler = ProgrammableScheduler(build_jitter_edd_tree({}))
        tight = Packet(flow="t", length=100, fields={"delay_bound": 0.001})
        loose = Packet(flow="l", length=100, fields={"delay_bound": 0.1})
        scheduler.enqueue(loose, now=0.0)
        scheduler.enqueue(tight, now=0.0)
        assert scheduler.dequeue(now=0.0) is tight

    def test_stamp_jitter_slack_helper(self):
        packet = Packet(flow="A", length=100)
        stamp_jitter_slack(packet, deadline=1.0, actual_departure=0.85)
        assert packet.get("jitter_slack") == pytest.approx(0.15)
        stamp_jitter_slack(packet, deadline=1.0, actual_departure=1.5)
        assert packet.get("jitter_slack") == 0.0


class TestHierarchicalRoundRobin:
    def test_shorter_frame_class_gets_lower_delay(self):
        tree = build_hierarchical_round_robin_tree(
            class_flows={"fast": {"f": 1.0}, "slow": {"s": 1.0}},
            frame_lengths_s={"fast": 0.001, "slow": 0.010},
        )
        scheduler = ProgrammableScheduler(tree)
        scheduler.enqueue(Packet(flow="f", length=100), now=0.0005)
        scheduler.enqueue(Packet(flow="s", length=100), now=0.0005)
        # The fast class's frame ends at 1 ms, the slow class's at 10 ms.
        out = scheduler.drain_timed(until=0.02)
        assert [p.flow for p in out] == ["f", "s"]
        assert out[0].dequeue_time == pytest.approx(0.001)
        assert out[1].dequeue_time == pytest.approx(0.010)

    def test_per_class_framing_is_independent(self):
        tree = build_hierarchical_round_robin_tree(
            class_flows={"a": {"x": 1.0}, "b": {"y": 1.0}},
            frame_lengths_s={"a": 0.002, "b": 0.003},
        )
        scheduler = ProgrammableScheduler(tree)
        scheduler.enqueue(Packet(flow="x", length=100), now=0.0045)
        scheduler.enqueue(Packet(flow="y", length=100), now=0.0045)
        out = scheduler.drain_timed(until=0.01)
        release_times = {p.flow: p.dequeue_time for p in out}
        assert release_times["x"] == pytest.approx(0.006)
        assert release_times["y"] == pytest.approx(0.006)
