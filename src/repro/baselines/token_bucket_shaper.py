"""Classic output-side token-bucket shaper baseline.

Unlike the PIFO shaping transaction — which rate-limits on the *input* side,
before elements are enqueued into the shared PIFO — this baseline gates the
*output*: packets sit in an internal FIFO and are released only when the
token bucket has enough tokens at dequeue time.

Section 3.5 ("Output rate limiting") explains the behavioural difference:
after a period of starvation by higher-priority traffic, the input-side
shaper lets the accumulated (already released) elements drain at line rate,
while the output-side shaper keeps enforcing the rate.  The ablation
benchmark ``benchmarks/test_ablation_shaping_side.py`` reproduces exactly
that transient.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..core.packet import Packet


class OutputTokenBucketShaper:
    """FIFO queue whose head departs only when conforming to a token bucket."""

    def __init__(
        self,
        rate_bps: float,
        burst_bytes: float,
        capacity_packets: Optional[int] = None,
    ) -> None:
        if rate_bps <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate_bytes_per_s = rate_bps / 8.0
        self.burst_bytes = burst_bytes
        self.capacity_packets = capacity_packets
        self.tokens = burst_bytes
        self.last_update = 0.0
        self._queue: Deque[Packet] = deque()
        self.drops = 0

    def _replenish(self, now: float) -> None:
        if now > self.last_update:
            self.tokens = min(
                self.tokens + self.rate_bytes_per_s * (now - self.last_update),
                self.burst_bytes,
            )
            self.last_update = now

    # -- scheduler interface ----------------------------------------------------
    def enqueue(self, packet: Packet, now: float = 0.0) -> bool:
        if (
            self.capacity_packets is not None
            and len(self._queue) >= self.capacity_packets
        ):
            self.drops += 1
            return False
        packet.enqueue_time = now
        self._queue.append(packet)
        return True

    def dequeue(self, now: float = 0.0) -> Optional[Packet]:
        if not self._queue:
            return None
        self._replenish(now)
        head = self._queue[0]
        if head.length > self.tokens:
            return None
        self.tokens -= head.length
        self._queue.popleft()
        head.dequeue_time = now
        return head

    def next_shaping_release(self) -> Optional[float]:
        """Time at which the head packet will conform (for port wake-ups)."""
        if not self._queue:
            return None
        head = self._queue[0]
        deficit = head.length - self.tokens
        if deficit <= 0:
            return self.last_update
        return self.last_update + deficit / self.rate_bytes_per_s

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue
