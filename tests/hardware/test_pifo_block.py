"""Tests for the PIFO block (flow scheduler + rank store, Section 5.2)."""

from __future__ import annotations

import pytest

from repro.exceptions import HardwareModelError
from repro.hardware import PIFOBlock, SAME_PIFO_DEQUEUE_INTERVAL


class TestFunctionalBehaviour:
    def test_enqueue_dequeue_round_trip(self):
        block = PIFOBlock()
        block.enqueue(0, rank=5.0, flow="f", metadata="pkt")
        element = block.dequeue(0)
        assert element.metadata == "pkt"
        assert element.rank == 5.0

    def test_dequeue_empty_pifo_returns_none(self):
        assert PIFOBlock().dequeue(0) is None

    def test_pifo_order_across_flows(self):
        block = PIFOBlock()
        block.enqueue(0, rank=3.0, flow="a", metadata="a1")
        block.enqueue(0, rank=1.0, flow="b", metadata="b1")
        block.enqueue(0, rank=2.0, flow="c", metadata="c1")
        order = [block.dequeue(0).metadata for _ in range(3)]
        assert order == ["b1", "c1", "a1"]

    def test_second_element_of_flow_goes_to_rank_store(self):
        block = PIFOBlock()
        block.enqueue(0, rank=1.0, flow="f", metadata="p1")
        block.enqueue(0, rank=2.0, flow="f", metadata="p2")
        assert len(block.flow_scheduler) == 1
        assert len(block.rank_store) == 1
        assert block.stats.rank_store_hits == 1

    def test_reinsert_pathway_after_dequeue(self):
        block = PIFOBlock()
        block.enqueue(0, rank=1.0, flow="f", metadata="p1")
        block.enqueue(0, rank=2.0, flow="f", metadata="p2")
        assert block.dequeue(0).metadata == "p1"
        # p2 must have been promoted from the rank store to the scheduler.
        assert len(block.flow_scheduler) == 1
        assert len(block.rank_store) == 0
        assert block.stats.reinserts == 1
        assert block.dequeue(0).metadata == "p2"

    def test_monotone_ranks_within_flow_preserve_pifo_order(self):
        """With non-decreasing ranks per flow (the Section 5.2 assumption),
        the block dequeues in global rank order."""
        block = PIFOBlock()
        pushes = [("a", 1.0), ("b", 2.0), ("a", 3.0), ("b", 4.0), ("a", 5.0)]
        for index, (flow, rank) in enumerate(pushes):
            block.enqueue(0, rank=rank, flow=flow, metadata=index)
        ranks = [block.dequeue(0).rank for _ in range(len(pushes))]
        assert ranks == sorted(ranks)

    def test_logical_pifos_are_isolated(self):
        block = PIFOBlock()
        block.enqueue(0, rank=10.0, flow="a", metadata="pifo0")
        block.enqueue(1, rank=1.0, flow="a", metadata="pifo1")
        assert block.dequeue(0).metadata == "pifo0"

    def test_peek_does_not_remove(self):
        block = PIFOBlock()
        block.enqueue(0, rank=1.0, flow="f", metadata="p")
        assert block.peek(0).metadata == "p"
        assert len(block) == 1

    def test_pifo_occupancy(self):
        block = PIFOBlock()
        for i in range(3):
            block.enqueue(0, rank=float(i), flow="f", metadata=i)
        block.enqueue(1, rank=0.0, flow="g", metadata="x")
        assert block.pifo_occupancy(0) == 3
        assert block.pifo_occupancy(1) == 1

    def test_invalid_logical_pifo_rejected(self):
        block = PIFOBlock(logical_pifo_count=4)
        with pytest.raises(HardwareModelError):
            block.enqueue(4, rank=0.0, flow="f")
        with pytest.raises(HardwareModelError):
            block.dequeue(-1)

    def test_pfc_mask_passthrough(self):
        block = PIFOBlock()
        block.enqueue(0, rank=1.0, flow="paused", metadata="p")
        block.enqueue(0, rank=2.0, flow="ok", metadata="q")
        block.mask_flow("paused")
        assert block.dequeue(0).metadata == "q"
        block.unmask_flow("paused")
        assert block.dequeue(0).metadata == "p"


class TestCycleConstraints:
    def test_one_enqueue_per_cycle_in_strict_mode(self):
        block = PIFOBlock(strict_timing=True)
        assert block.enqueue(0, rank=1.0, flow="a", cycle=10)
        assert not block.enqueue(0, rank=2.0, flow="b", cycle=10)
        assert block.stats.enqueue_conflicts == 1
        assert block.enqueue(0, rank=2.0, flow="b", cycle=11)

    def test_same_pifo_dequeue_interval_enforced(self):
        block = PIFOBlock(strict_timing=True)
        for i in range(4):
            block.enqueue(0, rank=float(i), flow=f"f{i}", cycle=i)
        assert block.dequeue(0, cycle=100) is not None
        assert block.dequeue(0, cycle=101) is None
        assert block.stats.same_pifo_violations == 1
        assert block.dequeue(0, cycle=100 + SAME_PIFO_DEQUEUE_INTERVAL) is not None

    def test_distinct_pifos_can_dequeue_in_consecutive_cycles(self):
        block = PIFOBlock(strict_timing=True)
        block.enqueue(0, rank=1.0, flow="a", cycle=0)
        block.enqueue(1, rank=1.0, flow="b", cycle=1)
        assert block.dequeue(0, cycle=10) is not None
        # A different logical PIFO one cycle later is allowed... but the
        # block-level one-dequeue-per-cycle limit still applies at cycle 10.
        assert block.dequeue(1, cycle=11) is not None

    def test_functional_mode_records_but_allows_conflicts(self):
        block = PIFOBlock(strict_timing=False)
        block.enqueue(0, rank=1.0, flow="a", cycle=5)
        assert block.enqueue(0, rank=2.0, flow="b", cycle=5)
        assert block.stats.enqueue_conflicts == 1

    def test_throughput_one_enqueue_one_dequeue_per_cycle(self):
        """Sustained full-rate operation: one enqueue and one dequeue every
        cycle to distinct logical PIFOs never violates strict timing."""
        block = PIFOBlock(strict_timing=True, logical_pifo_count=8)
        refused = 0
        for cycle in range(100):
            pifo = cycle % 8
            if not block.enqueue(pifo, rank=float(cycle), flow=f"f{pifo}",
                                 metadata=cycle, cycle=cycle):
                refused += 1
            if cycle >= 8:
                if block.dequeue((cycle - 8) % 8, cycle=cycle) is None:
                    refused += 1
        assert refused == 0
