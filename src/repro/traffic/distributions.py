"""Random-variate helpers and empirical flow-size distributions.

The paper's behavioural examples need only simple overload scenarios, but
the fine-grained-priority experiments (SJF/SRPT minimising flow completion
time, Section 3.4) are most meaningful on the heavy-tailed flow-size
distributions that motivated those algorithms.  We ship the two empirical
CDFs that the datacenter-transport literature (pFabric and its successors)
standardised on — a web-search workload and a data-mining workload — plus
Pareto and exponential samplers.

All samplers take an explicit :class:`random.Random` instance so experiments
are reproducible.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence, Tuple

#: Empirical CDF of flow sizes (bytes, cumulative probability) modelled on
#: the web-search workload used throughout the datacenter scheduling
#: literature: mostly short query traffic with a tail of multi-megabyte
#: responses.
WEB_SEARCH_CDF: Tuple[Tuple[float, float], ...] = (
    (6_000, 0.15),
    (13_000, 0.30),
    (19_000, 0.40),
    (33_000, 0.53),
    (53_000, 0.60),
    (133_000, 0.70),
    (667_000, 0.80),
    (1_333_000, 0.90),
    (3_333_000, 0.97),
    (15_000_000, 1.00),
)

#: Empirical CDF modelled on the data-mining workload: the vast majority of
#: flows are tiny, while a handful of huge flows carry most of the bytes.
DATA_MINING_CDF: Tuple[Tuple[float, float], ...] = (
    (100, 0.50),
    (300, 0.60),
    (1_000, 0.70),
    (2_000, 0.75),
    (10_000, 0.80),
    (100_000, 0.85),
    (1_000_000, 0.90),
    (10_000_000, 0.95),
    (100_000_000, 0.98),
    (1_000_000_000, 1.00),
)


class EmpiricalCDF:
    """Inverse-transform sampler over a piecewise-linear empirical CDF."""

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if not points:
            raise ValueError("CDF needs at least one point")
        values = [float(v) for v, _ in points]
        probs = [float(p) for _, p in points]
        if any(b <= a for a, b in zip(probs, probs[1:])):
            raise ValueError("CDF probabilities must be strictly increasing")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("CDF must end at probability 1.0")
        self.values = values
        self.probs = probs

    def sample(self, rng: random.Random) -> float:
        """Draw one value via inverse-transform sampling."""
        u = rng.random()
        index = bisect.bisect_left(self.probs, u)
        index = min(index, len(self.values) - 1)
        prev_value = self.values[index - 1] if index > 0 else 0.0
        prev_prob = self.probs[index - 1] if index > 0 else 0.0
        span = self.probs[index] - prev_prob
        if span <= 0:
            return self.values[index]
        fraction = (u - prev_prob) / span
        return prev_value + fraction * (self.values[index] - prev_value)

    def mean(self) -> float:
        """Mean of the piecewise-linear distribution (trapezoidal)."""
        total = 0.0
        prev_value, prev_prob = 0.0, 0.0
        for value, prob in zip(self.values, self.probs):
            total += (prob - prev_prob) * (value + prev_value) / 2.0
            prev_value, prev_prob = value, prob
        return total


def web_search_flow_sizes() -> EmpiricalCDF:
    """The web-search flow-size distribution."""
    return EmpiricalCDF(WEB_SEARCH_CDF)


def data_mining_flow_sizes() -> EmpiricalCDF:
    """The data-mining flow-size distribution."""
    return EmpiricalCDF(DATA_MINING_CDF)


def exponential(rng: random.Random, mean: float) -> float:
    """Exponential variate with the given mean (> 0)."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    return rng.expovariate(1.0 / mean)


def pareto(rng: random.Random, shape: float, scale: float) -> float:
    """Pareto variate with the given shape (alpha) and scale (minimum)."""
    if shape <= 0 or scale <= 0:
        raise ValueError("shape and scale must be positive")
    u = rng.random()
    # Guard against u == 0 which would produce infinity.
    u = max(u, 1e-12)
    return scale / math.pow(u, 1.0 / shape)


def bounded_pareto(rng: random.Random, shape: float, low: float, high: float) -> float:
    """Pareto variate truncated to [low, high] by inverse transform."""
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    u = rng.random()
    low_pow = math.pow(low, shape)
    high_pow = math.pow(high, shape)
    value = math.pow(-(u * high_pow - u * low_pow - high_pow) / (high_pow * low_pow), -1.0 / shape)
    return min(max(value, low), high)


def deterministic(value: float) -> float:
    """Identity helper so generator code can treat all size models uniformly."""
    return value


def sample_many(sampler, rng: random.Random, count: int) -> List[float]:
    """Draw ``count`` samples from an :class:`EmpiricalCDF` or callable."""
    if isinstance(sampler, EmpiricalCDF):
        return [sampler.sample(rng) for _ in range(count)]
    return [sampler(rng) for _ in range(count)]
