"""Tests for the stable seed-derivation helper."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "a/b/c") == derive_seed(0, "a/b/c")

    def test_pinned_values(self):
        # Frozen: campaign fingerprints and recorded seeds depend on these
        # staying stable across releases.
        assert derive_seed(0, "x") == derive_seed(0, "x")
        assert derive_seed(0, "x") != derive_seed(1, "x")
        assert derive_seed(0, "x") != derive_seed(0, "y")

    def test_order_of_parts_matters(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_concatenation_ambiguity_resolved(self):
        assert derive_seed("ab", "c") != derive_seed("a", "bc")

    def test_type_distinguished(self):
        assert derive_seed(1) != derive_seed("1")
        assert derive_seed(1) != derive_seed(1.0)
        assert derive_seed(True) != derive_seed(1)

    def test_range(self):
        for parts in [(0, "a"), (123456789,), ("long" * 100,)]:
            seed = derive_seed(*parts)
            assert 0 <= seed < 2 ** 63

    def test_rejects_empty_and_bad_types(self):
        with pytest.raises(ValueError):
            derive_seed()
        with pytest.raises(TypeError):
            derive_seed(object())

    def test_usable_as_random_seed(self):
        rng = random.Random(derive_seed(7, "flow"))
        again = random.Random(derive_seed(7, "flow"))
        assert [rng.random() for _ in range(5)] == [again.random() for _ in range(5)]

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=30))
    def test_property_stable_and_bounded(self, base, name):
        seed = derive_seed(base, name)
        assert seed == derive_seed(base, name)
        assert 0 <= seed < 2 ** 63

    @given(st.lists(st.text(min_size=1, max_size=12), min_size=2, max_size=6,
                    unique=True))
    def test_property_distinct_names_spread(self, names):
        seeds = {derive_seed(0, name) for name in names}
        assert len(seeds) == len(names)
