"""Table 2 — flow-scheduler area and 1 GHz timing vs number of flows.

Regenerates the five rows of Table 2 from the calibrated area model: area
grows linearly with the number of flows and timing closes at 1 GHz up to
2048 flows (failing at 4096).
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.hardware import FlowSchedulerDesign, PAPER_TABLE2, table2_rows


def test_table2_area_and_timing_vs_flows(benchmark):
    rows = benchmark(table2_rows)
    report(
        "Table 2: flow scheduler area / timing vs #flows",
        [
            {
                "flows": row["flows"],
                "paper_mm2": row["paper_area_mm2"],
                "model_mm2": row["model_area_mm2"],
                "paper_1GHz": row["paper_meets_timing"],
                "model_1GHz": row["model_meets_timing"],
            }
            for row in rows
        ],
    )
    paper = {flows: (area, timing) for flows, area, timing in PAPER_TABLE2}
    for row in rows:
        paper_area, paper_timing = paper[row["flows"]]
        assert row["model_area_mm2"] == pytest.approx(paper_area, rel=0.06)
        assert row["model_meets_timing"] == paper_timing


def test_table2_area_is_linear_in_flows(benchmark):
    def slope_check():
        small = FlowSchedulerDesign(num_flows=512).area_mm2()
        large = FlowSchedulerDesign(num_flows=2048).area_mm2()
        return large / small

    ratio = benchmark(slope_check)
    report("Table 2: area(2048 flows) / area(512 flows)", [{"ratio": ratio}])
    assert ratio == pytest.approx(4.0, rel=0.01)
