"""Shared helpers for the benchmark/experiment harness.

Every module in this directory regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  Each benchmark:

* runs the experiment via the ``benchmark`` fixture (so
  ``pytest benchmarks/ --benchmark-only`` reports timings),
* prints a small paper-vs-measured table with ``report()``, and
* asserts the qualitative claim (who wins, by roughly what factor).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core import ProgrammableScheduler
from repro.sim import OutputPort, PacketSource, Simulator
from repro.traffic import FlowSpec, cbr_arrivals, merge_arrivals


def report(title: str, rows: Iterable[Mapping]) -> None:
    """Print a small aligned table (shown with pytest -s or on failure)."""
    rows = list(rows)
    if not rows:
        print(f"\n== {title} == (no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row[column])) for row in rows))
        for column in columns
    }
    print(f"\n== {title} ==")
    print("  ".join(str(column).ljust(widths[column]) for column in columns))
    for row in rows:
        print("  ".join(_fmt(row[column]).ljust(widths[column]) for column in columns))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def run_overload_experiment(
    tree,
    flow_rates_bps: Mapping[str, float],
    link_rate_bps: float,
    duration_s: float,
    packet_size: int = 1500,
    scheduler=None,
):
    """Drive a scheduler with CBR overload on one port; return the port."""
    sim = Simulator()
    sched = scheduler if scheduler is not None else ProgrammableScheduler(tree)
    port = OutputPort(sim, sched, rate_bps=link_rate_bps, name="port0")
    streams = [
        cbr_arrivals(FlowSpec(name=flow, rate_bps=rate, packet_size=packet_size),
                     duration=duration_s)
        for flow, rate in flow_rates_bps.items()
    ]
    PacketSource(sim, port, merge_arrivals(*streams))
    sim.run(until=duration_s)
    return port


def measured_shares(port, flows: Sequence[str], start: float, end: float):
    """Byte shares of the given flows over [start, end]."""
    shares = port.sink.share_by_flow(start=start, end=end)
    return {flow: shares.get(flow, 0.0) for flow in flows}
