"""End-to-end tests for the fabric: forwarding, hop stamps, per-port stats."""

from __future__ import annotations

import pytest

from repro.algorithms import FIFOTransaction
from repro.core import Packet, ProgrammableScheduler, single_node_tree
from repro.exceptions import RoutingError
from repro.net import Fabric, dumbbell, leaf_spine, linear_chain
from repro.sim import Simulator


def fifo_factory(switch, port):
    return ProgrammableScheduler(single_node_tree(FIFOTransaction()))


def make_chain_fabric(num_switches=2, **kwargs):
    sim = Simulator()
    net = linear_chain(num_switches, link_rate_bps=1e6, **kwargs)
    return sim, Fabric(sim, net, fifo_factory)


class TestForwarding:
    def test_single_packet_crosses_the_chain(self):
        sim, fabric = make_chain_fabric(2)
        packet = Packet(flow="f", length=1000, dst="h_dst")
        fabric.attach_source("h_src", [(0.0, packet)])
        fabric.run(drain=True)
        assert fabric.delivered_packets == 1
        sink = fabric.sink("h_dst")
        assert sink.total_packets() == 1
        assert packet.src == "h_src"
        # One hop record per traversed node: NIC + both switches.
        assert [hop[0] for hop in packet.hops] == ["h_src", "s1", "s2"]

    def test_end_to_end_delay_decomposes_into_hops(self):
        sim, fabric = make_chain_fabric(3)
        packet = Packet(flow="f", length=1000, dst="h_dst")
        fabric.attach_source("h_src", [(0.0, packet)])
        fabric.run(drain=True)
        per_hop = packet.per_hop_delays()
        assert set(per_hop) == {"h_src", "s1", "s2", "s3"}
        assert packet.end_to_end_delay == pytest.approx(sum(per_hop.values()))
        # 4 store-and-forward transmissions of 8000 bits at 1 Mbit/s.
        assert packet.end_to_end_delay == pytest.approx(4 * 8e-3)

    def test_propagation_delay_adds_wire_time_per_link(self):
        sim = Simulator()
        net = linear_chain(2, link_rate_bps=1e6, propagation_delay=1e-3)
        fabric = Fabric(sim, net, fifo_factory)
        packet = Packet(flow="f", length=1000, dst="h_dst")
        fabric.attach_source("h_src", [(0.0, packet)])
        fabric.run(drain=True)
        # 3 transmissions + 3 wires.
        assert packet.end_to_end_delay == pytest.approx(3 * 8e-3 + 3 * 1e-3)

    def test_queueing_delay_is_stamped_for_downstream_lstf(self):
        sim, fabric = make_chain_fabric(2)
        packets = [Packet(flow=f"f{i}", length=1000, dst="h_dst")
                   for i in range(3)]
        fabric.attach_source("h_src", [(0.0, p) for p in packets])
        fabric.run(drain=True)
        # The third packet queued behind two transmissions at the NIC and
        # carries the accumulated wait in prev_wait_time.
        assert packets[2].get("prev_wait_time") > 0

    def test_bidirectional_traffic(self):
        sim, fabric = make_chain_fabric(2)
        forward = Packet(flow="fwd", length=1000, dst="h_dst")
        backward = Packet(flow="rev", length=1000, dst="h_src")
        fabric.attach_source("h_src", [(0.0, forward)])
        fabric.attach_source("h_dst", [(0.0, backward)])
        fabric.run(drain=True)
        assert fabric.sink("h_dst").total_packets() == 1
        assert fabric.sink("h_src").total_packets() == 1

    def test_dumbbell_shares_bottleneck(self):
        sim = Simulator()
        net = dumbbell(hosts_per_side=2, access_rate_bps=10e6,
                       bottleneck_rate_bps=1e6)
        fabric = Fabric(sim, net, fifo_factory)
        for index, src in enumerate(("l0", "l1")):
            packets = [Packet(flow=src, length=1000, dst=f"r{index}")
                       for _ in range(5)]
            fabric.attach_source(src, [(0.0, p) for p in packets])
        fabric.run(drain=True)
        assert fabric.delivered_packets == 10
        stats = fabric.switch("s_left").stats
        assert stats.port("to_s_right").transmitted == 10


class TestECMP:
    def test_flows_spread_over_spines_deterministically(self):
        def run_once():
            sim = Simulator()
            net = leaf_spine(leaves=2, spines=2, hosts_per_leaf=1,
                             host_rate_bps=1e9)
            fabric = Fabric(sim, net, fifo_factory, ecmp=True)
            arrivals = [
                (0.0, Packet(flow=f"flow{i}", length=1000, dst="h1_0"))
                for i in range(32)
            ]
            fabric.attach_source("h0_0", arrivals)
            fabric.run(drain=True)
            stats = fabric.switch("leaf0").stats
            return {port: counters.transmitted
                    for port, counters in stats.per_port.items()}

        first, second = run_once(), run_once()
        # Stable CRC32 hashing: identical placement run to run, and both
        # spines carry some of the 32 flows.
        assert first == second
        assert first["to_spine0"] > 0
        assert first["to_spine1"] > 0

    def test_single_flow_never_splits(self):
        sim = Simulator()
        net = leaf_spine(leaves=2, spines=2, hosts_per_leaf=1)
        fabric = Fabric(sim, net, fifo_factory, ecmp=True)
        arrivals = [(0.0, Packet(flow="one", length=1000, dst="h1_0"))
                    for _ in range(16)]
        fabric.attach_source("h0_0", arrivals)
        fabric.run(drain=True)
        stats = fabric.switch("leaf0").stats
        used = [p for p, c in stats.per_port.items()
                if p.startswith("to_spine") and c.transmitted]
        assert len(used) == 1


class TestRoutingErrors:
    def test_packet_without_dst_is_rejected(self):
        sim, fabric = make_chain_fabric(2)
        with pytest.raises(RoutingError):
            fabric.inject("h_src", Packet(flow="f", length=100))

    def test_packet_to_self_is_rejected(self):
        sim, fabric = make_chain_fabric(2)
        with pytest.raises(RoutingError):
            fabric.inject("h_src", Packet(flow="f", length=100, dst="h_src"))


class TestDrainSemantics:
    def test_drain_flushes_in_flight_without_replaying_sources(self):
        sim, fabric = make_chain_fabric(2)
        # One packet every ms for a full second; we stop at 2.5 ms.
        arrivals = ((i * 1e-3, Packet(flow="f", length=500, dst="h_dst"))
                    for i in range(1000))
        fabric.attach_source("h_src", arrivals)
        now = fabric.run(until=2.5e-3, drain=True)
        # Arrivals at 0/1/2 ms were injected; the rest were discarded, not
        # replayed to exhaustion.
        assert fabric.injected_packets == 3
        assert fabric.conservation_check()["in_flight"] == 0
        assert now < 0.1

    def test_unbounded_source_terminates_under_drain(self):
        import itertools

        sim, fabric = make_chain_fabric(2)
        arrivals = ((i * 1e-3, Packet(flow="f", length=500, dst="h_dst"))
                    for i in itertools.count())
        fabric.attach_source("h_src", arrivals)
        fabric.run(until=5e-3, drain=True)
        assert fabric.conservation_check()["in_flight"] == 0


class TestAccounting:
    def test_conservation_counters(self):
        sim, fabric = make_chain_fabric(2)
        arrivals = [(i * 1e-4, Packet(flow="f", length=500, dst="h_dst"))
                    for i in range(50)]
        fabric.attach_source("h_src", arrivals)
        fabric.run(until=0.002)
        partial = fabric.conservation_check()
        assert partial["injected"] == (partial["delivered"] + partial["dropped"]
                                       + partial["in_flight"])
        fabric.run(drain=True)
        final = fabric.conservation_check()
        assert final["in_flight"] == 0
        assert final["delivered"] + final["dropped"] == final["injected"]

    def test_stats_by_node_reports_per_port(self):
        sim, fabric = make_chain_fabric(2)
        fabric.attach_source(
            "h_src", [(0.0, Packet(flow="f", length=500, dst="h_dst"))]
        )
        fabric.run(drain=True)
        stats = fabric.stats_by_node()
        assert stats["s1"]["per_port"]["to_s2"]["transmitted"] == 1
        assert stats["s2"]["per_port"]["to_h_dst"]["transmitted"] == 1
