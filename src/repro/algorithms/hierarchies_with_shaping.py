"""Hierarchies with Shaping (Figure 4, Section 2.3).

The running non-work-conserving example of the paper: the HPFQ hierarchy of
Figure 3 with the additional requirement that the *Right* class never exceed
10 Mbit/s regardless of offered load.  The Right node keeps its WFQ
scheduling transaction and gains a token-bucket **shaping transaction**
(Figure 4c) that defers the release of Right's PIFO references to the root.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.backend import BackendSpec
from ..core.tree import ScheduleTree
from .hpfq import HierarchySpec, ShapingSpec, build_hierarchy

#: Rate limit on the Right class in the paper's example.
FIG4_RIGHT_RATE_BPS = 10e6


def fig4_spec(
    right_rate_bps: float = FIG4_RIGHT_RATE_BPS,
    right_burst_bytes: float = 3000.0,
) -> HierarchySpec:
    """Figure 4a: the Figure 3 hierarchy plus a 10 Mbit/s cap on Right."""
    return HierarchySpec(
        name="Root",
        children=(
            HierarchySpec(name="Left", weight=1.0, flows={"A": 3.0, "B": 7.0}),
            HierarchySpec(
                name="Right",
                weight=9.0,
                flows={"C": 4.0, "D": 6.0},
                shaping=ShapingSpec(
                    rate_bps=right_rate_bps, burst_bytes=right_burst_bytes
                ),
            ),
        ),
    )


def build_fig4_tree(
    right_rate_bps: float = FIG4_RIGHT_RATE_BPS,
    right_burst_bytes: float = 3000.0,
    pifo_backend: BackendSpec = None,
) -> ScheduleTree:
    """The Hierarchies-with-Shaping tree of Figure 4."""
    return build_hierarchy(
        fig4_spec(right_rate_bps=right_rate_bps, right_burst_bytes=right_burst_bytes),
        pifo_backend=pifo_backend,
    )


def build_shaped_hierarchy(
    class_flows: Mapping[str, Mapping[str, float]],
    class_weights: Mapping[str, float],
    class_rate_limits_bps: Optional[Mapping[str, float]] = None,
    burst_bytes: float = 3000.0,
    pifo_backend: BackendSpec = None,
) -> ScheduleTree:
    """General two-level hierarchy with optional per-class rate limits.

    Parameters
    ----------
    class_flows:
        Mapping from class name to ``{flow: weight}`` served by that class.
    class_weights:
        Weight of each class in the root's fair scheduler.
    class_rate_limits_bps:
        Optional mapping from class name to a token-bucket rate limit; a
        class absent from the mapping is unshaped (work conserving).
    burst_bytes:
        Burst allowance shared by every configured rate limit.
    """
    limits = dict(class_rate_limits_bps or {})
    children = []
    for class_name, flows in class_flows.items():
        shaping = None
        if class_name in limits:
            shaping = ShapingSpec(rate_bps=limits[class_name], burst_bytes=burst_bytes)
        children.append(
            HierarchySpec(
                name=class_name,
                weight=class_weights.get(class_name, 1.0),
                flows=dict(flows),
                shaping=shaping,
            )
        )
    return build_hierarchy(
        HierarchySpec(name="Root", children=tuple(children)),
        pifo_backend=pifo_backend,
    )
