"""Tests for the discrete-event simulator kernel."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.sim import EventQueue, Simulator


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        b = queue.push(2.0, lambda: "b")
        a = queue.push(1.0, lambda: "a")
        assert queue.pop() is a
        assert queue.pop() is b

    def test_same_time_fifo(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: "first")
        queue.push(1.0, lambda: "second")
        assert queue.pop() is first

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(3.0, lambda: None)
        assert queue.peek_time() == 3.0

    def test_cancelled_events_skipped_on_pop(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: "first")
        second = queue.push(2.0, lambda: "second")
        queue.cancel(first)
        assert queue.cancelled(first)
        assert len(queue) == 1
        assert queue.pop() is second

    def test_peek_time_skips_cancelled_head(self):
        queue = EventQueue()
        head = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        queue.cancel(head)
        assert queue.peek_time() == 5.0

    def test_compaction_removes_tombstones(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(10)]
        # Cancel six of ten: the compaction threshold (tombstones > half the
        # heap) trips during the cancels and rebuilds the heap in place.
        for event in events[:6]:
            queue.cancel(event)
        assert len(queue._heap) == 4
        assert not queue._tombstones
        assert len(queue) == 4
        # Survivors drain in time order.
        assert [entry[0] for entry in
                (queue.pop(), queue.pop(), queue.pop(), queue.pop())] == [
                    6.0, 7.0, 8.0, 9.0]

    def test_compaction_preserves_heap_aliases(self):
        # Simulator.run binds the heap list once; compaction must rebuild
        # in place rather than rebind a fresh list.
        queue = EventQueue()
        heap_alias = queue._heap
        events = [queue.push(float(i), lambda: None) for i in range(8)]
        for event in events[:5]:
            queue.cancel(event)
        assert queue._heap is heap_alias
        assert len(heap_alias) == 3

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 1


class TestSimulator:
    def test_runs_events_in_order(self):
        sim = Simulator()
        log = []
        sim.schedule(0.2, lambda: log.append("late"))
        sim.schedule(0.1, lambda: log.append("early"))
        sim.run()
        assert log == ["early", "late"]
        assert sim.events_processed == 2

    def test_now_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5]

    def test_run_until_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("in"))
        sim.schedule(5.0, lambda: log.append("out"))
        sim.run(until=2.0)
        assert log == ["in"]
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        log = []

        def chain(count):
            log.append(count)
            if count < 3:
                sim.schedule(0.1, lambda: chain(count + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert log == [0, 1, 2, 3]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        event = sim.schedule(0.1, lambda: log.append("cancelled"))
        sim.schedule(0.2, lambda: log.append("kept"))
        sim.cancel(event)
        sim.run()
        assert log == ["kept"]
        assert sim.events_processed == 1

    def test_max_events_cap(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(0.1 * i, lambda: None)
        sim.run(max_events=4)
        assert sim.events_processed == 4
