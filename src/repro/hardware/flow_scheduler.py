"""The flow scheduler: the sorted-array core of a PIFO block (Section 5.2).

A naive PIFO would sort all ~60 K buffered packets, which is infeasible.
The paper's key structural observation is that practical algorithms schedule
each flow's packets in FIFO order, so only the *head* element of each flow
needs sorting.  The flow scheduler is that sorted array of flow heads, held
in flip-flops, supporting:

* **push** — insert a flow head (2-cycle pipeline: parallel comparison +
  priority encode, then shift-insert);
* **pop** — remove the first element belonging to a given logical PIFO
  (2-cycle pipeline: equality check + priority encode, then shift-out).

This model reproduces the structure and constraints (entry capacity, two
pushes + one pop per cycle, per-logical-PIFO selection, PFC masking) while
leaving gate-level timing to the calibrated area/timing model
(:mod:`repro.hardware.area_model`).

Two storage modes are available, selected by the block's ``pifo_backend``
(see :mod:`repro.core.backend`):

* the default **sorted-array** mode mirrors the hardware exactly and counts
  the comparator/shift work the flip-flop array would perform — the numbers
  the Section 5 ablation benchmarks rely on;
* the **indexed** mode keeps the same (rank, push-order) semantics in
  per-logical-PIFO heaps with a lazy-deletion index, making push and pop
  O(log n) for software-scale simulations.  It does not model shift work
  (``stats.shifts`` stays flat) and counts one comparison per heap level.

Both modes share an O(1) flow-membership index, so the block's per-enqueue
``contains_flow`` check no longer scans the whole array.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..exceptions import HardwareModelError

#: Baseline flow-scheduler capacity (Section 5.3): 1024 flows shared across
#: the logical PIFOs of one block.
DEFAULT_FLOW_CAPACITY = 1024


@dataclass
class FlowSchedulerEntry:
    """One flow head held in the flow scheduler.

    ``rank``/``seq`` order the array; ``logical_pifo`` selects entries at
    pop time; ``flow`` identifies the FIFO in the rank store holding the
    rest of the flow's elements; ``metadata`` carries the element itself
    (packet or PIFO reference) in this behavioural model.
    """

    rank: float
    seq: int
    logical_pifo: int
    flow: str
    metadata: Any = None

    def key(self) -> Tuple[float, int]:
        return (self.rank, self.seq)


@dataclass
class FlowSchedulerStats:
    """Operation counters used by the feasibility benchmarks."""

    pushes: int = 0
    pops: int = 0
    comparisons: int = 0
    shifts: int = 0
    masked_skips: int = 0


class FlowScheduler:
    """Sorted array of flow heads (the flip-flop half of a PIFO block).

    Parameters
    ----------
    capacity_flows:
        Maximum number of simultaneously buffered flow heads.
    indexed:
        Select the O(log n) heap-indexed storage mode instead of the
        hardware-faithful flat sorted array (see module docstring).
    """

    def __init__(
        self, capacity_flows: int = DEFAULT_FLOW_CAPACITY, indexed: bool = False
    ) -> None:
        if capacity_flows <= 0:
            raise ValueError("capacity_flows must be positive")
        self.capacity_flows = capacity_flows
        self.indexed = indexed
        self._entries: List[FlowSchedulerEntry] = []
        self._keys: List[Tuple[float, int]] = []
        # Indexed mode: key -> entry with lazy deletion, one heap per
        # logical PIFO plus one global heap for unfiltered peeks/pops.
        self._entry_by_key: Dict[Tuple[float, int], FlowSchedulerEntry] = {}
        self._heap_by_pifo: Dict[int, List[Tuple[float, int]]] = {}
        self._global_heap: List[Tuple[float, int]] = []
        # O(1) membership index shared by both modes.
        self._flow_count: Dict[Tuple[int, str], int] = {}
        self._seq = 0
        self._masked_flows: Set[str] = set()
        self.stats = FlowSchedulerStats()

    # -- capacity ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entry_by_key) if self.indexed else len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self) >= self.capacity_flows

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    # -- PFC masking (Section 6.2) -------------------------------------------------
    def mask_flow(self, flow: str) -> None:
        """Make a flow invisible to pops (PFC pause)."""
        self._masked_flows.add(flow)

    def unmask_flow(self, flow: str) -> None:
        """Re-expose a paused flow (PFC resume)."""
        self._masked_flows.discard(flow)

    def masked_flows(self) -> Set[str]:
        return set(self._masked_flows)

    # -- flow membership index ------------------------------------------------------
    def _track_flow(self, logical_pifo: int, flow: str, delta: int) -> None:
        key = (logical_pifo, flow)
        count = self._flow_count.get(key, 0) + delta
        if count:
            self._flow_count[key] = count
        else:
            self._flow_count.pop(key, None)

    # -- push -------------------------------------------------------------------------
    def push(self, entry_rank: float, logical_pifo: int, flow: str, metadata: Any = None) -> None:
        """Insert a flow head, keeping (rank, push order) ordering.

        In sorted-array mode this models the hardware's parallel compare +
        priority encode + shift; the stats record the equivalent
        comparator/shift work for the ablation benchmark comparing against
        a flat 60 K-entry sorted array.
        """
        if self.is_full:
            raise HardwareModelError(
                f"flow scheduler full ({self.capacity_flows} flow heads)"
            )
        entry = FlowSchedulerEntry(
            rank=entry_rank, seq=self._seq, logical_pifo=logical_pifo,
            flow=flow, metadata=metadata,
        )
        self._seq += 1
        if self.indexed:
            key = entry.key()
            self._entry_by_key[key] = entry
            heapq.heappush(self._global_heap, key)
            heapq.heappush(self._heap_by_pifo.setdefault(logical_pifo, []), key)
            self.stats.pushes += 1
            self.stats.comparisons += max(1, len(self._entry_by_key).bit_length())
            self._maybe_compact()
        else:
            index = bisect.bisect_right(self._keys, entry.key())
            self._keys.insert(index, entry.key())
            self._entries.insert(index, entry)
            self.stats.pushes += 1
            # Hardware compares against *all* entries in parallel and shifts
            # the tail; count both so work scales with occupancy, as in the
            # chip.
            self.stats.comparisons += len(self._entries)
            self.stats.shifts += len(self._entries) - index
        self._track_flow(logical_pifo, flow, +1)

    # -- pop ---------------------------------------------------------------------------
    def _first_index(self, logical_pifo: Optional[int]) -> Optional[int]:
        for index, entry in enumerate(self._entries):
            self.stats.comparisons += 1
            if entry.flow in self._masked_flows:
                self.stats.masked_skips += 1
                continue
            if logical_pifo is None or entry.logical_pifo == logical_pifo:
                return index
        return None

    def _maybe_compact(self) -> None:
        """Rebuild the lazy-deletion heaps once stale keys outnumber live
        entries.

        Pops through a per-pifo heap leave stale copies in the global heap
        (and vice versa); normal operation only ever pops per-pifo, so
        without compaction the global heap would grow with *total* pushes
        instead of occupancy.  Triggering at 2x live + 64 keeps the rebuild
        amortised O(1) per push.
        """
        live = len(self._entry_by_key)
        stale_bound = 2 * live + 64
        total = len(self._global_heap) + sum(
            len(heap) for heap in self._heap_by_pifo.values()
        )
        if total <= 2 * stale_bound:
            return
        keys = list(self._entry_by_key)
        self._global_heap = list(keys)
        heapq.heapify(self._global_heap)
        self._heap_by_pifo = {}
        for key in keys:
            self._heap_by_pifo.setdefault(
                self._entry_by_key[key].logical_pifo, []
            ).append(key)
        for heap in self._heap_by_pifo.values():
            heapq.heapify(heap)

    def _indexed_find(
        self, logical_pifo: Optional[int], remove: bool
    ) -> Optional[FlowSchedulerEntry]:
        """Head entry via the heaps, with lazy deletion and mask skipping.

        Stale keys (already popped through another heap) are discarded;
        masked heads are set aside and pushed back, preserving their exact
        (rank, seq) position.
        """
        heap = (
            self._global_heap
            if logical_pifo is None
            else self._heap_by_pifo.get(logical_pifo)
        )
        if not heap:
            return None
        buffered: List[Tuple[float, int]] = []
        found: Optional[FlowSchedulerEntry] = None
        while heap:
            key = heapq.heappop(heap)
            entry = self._entry_by_key.get(key)
            if entry is None:
                continue  # lazily deleted
            self.stats.comparisons += 1
            if entry.flow in self._masked_flows:
                self.stats.masked_skips += 1
                buffered.append(key)
                continue
            found = entry
            if not remove:
                buffered.append(key)
            break
        for key in buffered:
            heapq.heappush(heap, key)
        if found is not None and remove:
            del self._entry_by_key[found.key()]
        return found

    def peek(self, logical_pifo: Optional[int] = None) -> Optional[FlowSchedulerEntry]:
        """Head entry of a logical PIFO (or overall), honouring PFC masks."""
        if self.indexed:
            return self._indexed_find(logical_pifo, remove=False)
        index = self._first_index(logical_pifo)
        return self._entries[index] if index is not None else None

    def pop(self, logical_pifo: Optional[int] = None) -> Optional[FlowSchedulerEntry]:
        """Remove and return the head entry of a logical PIFO."""
        if self.indexed:
            entry = self._indexed_find(logical_pifo, remove=True)
            if entry is None:
                return None
            self.stats.pops += 1
            self._track_flow(entry.logical_pifo, entry.flow, -1)
            return entry
        index = self._first_index(logical_pifo)
        if index is None:
            return None
        self._keys.pop(index)
        entry = self._entries.pop(index)
        self.stats.pops += 1
        self.stats.shifts += len(self._entries) - index + 1
        self._track_flow(entry.logical_pifo, entry.flow, -1)
        return entry

    # -- queries --------------------------------------------------------------------------
    def occupancy_by_pifo(self) -> dict:
        counts: dict = {}
        for entry in self.entries():
            counts[entry.logical_pifo] = counts.get(entry.logical_pifo, 0) + 1
        return counts

    def contains_flow(self, logical_pifo: int, flow: str) -> bool:
        return self._flow_count.get((logical_pifo, flow), 0) > 0

    def entries(self) -> List[FlowSchedulerEntry]:
        """Snapshot in dequeue order (for tests)."""
        if self.indexed:
            return [self._entry_by_key[key] for key in sorted(self._entry_by_key)]
        return list(self._entries)
