"""Shared-memory switch substrate: buffer, admission control, PFC, switch."""

from .buffer import (
    BufferOccupancy,
    DEFAULT_BUFFER_BYTES,
    DEFAULT_CELL_BYTES,
    SharedBuffer,
)
from .pfc import PFCController, PFCFilteredScheduler
from .red import REDPolicy
from .switch import (
    DEFAULT_PORT_COUNT,
    DEFAULT_PORT_RATE_BPS,
    PortCounters,
    PortSpec,
    SharedMemorySwitch,
    SwitchStats,
)
from .thresholds import (
    AdmissionPolicy,
    AlwaysAdmit,
    DynamicThresholdPolicy,
    StaticThresholdPolicy,
)

__all__ = [
    "SharedBuffer",
    "BufferOccupancy",
    "DEFAULT_BUFFER_BYTES",
    "DEFAULT_CELL_BYTES",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "StaticThresholdPolicy",
    "DynamicThresholdPolicy",
    "REDPolicy",
    "PFCController",
    "PFCFilteredScheduler",
    "SharedMemorySwitch",
    "SwitchStats",
    "PortCounters",
    "PortSpec",
    "DEFAULT_PORT_COUNT",
    "DEFAULT_PORT_RATE_BPS",
]
