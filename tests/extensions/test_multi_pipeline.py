"""Tests for the Section 6.3 multi-pipeline PIFO block extension."""

from __future__ import annotations

import pytest

from repro.exceptions import HardwareModelError
from repro.extensions import (
    MultiPipelineBlock,
    PipelinePortConfig,
    required_pipelines,
)


class TestPipelinePortConfig:
    def test_defaults_to_single_pipeline(self):
        config = PipelinePortConfig()
        assert config.ingress_pipelines == 1
        assert config.egress_pipelines == 1

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            PipelinePortConfig(ingress_pipelines=0)
        with pytest.raises(ValueError):
            PipelinePortConfig(egress_pipelines=-1)


class TestRequiredPipelines:
    def test_single_pipeline_switch(self):
        # 64 x 10 Gbit/s = 640 Gbit/s -> 1.25 Gpackets/s at 64 B -> 2 pipelines
        # is already needed above exactly 1 Gpacket/s; the paper rounds this
        # to "a billion packets/s", i.e. one pipeline.
        assert required_pipelines(512e9) == 1

    def test_tomahawk_class_switch_needs_about_six(self):
        # 3.2 Tbit/s at 64-byte packets is 6.25 billion packets/s.
        assert required_pipelines(3.2e12) == 7
        assert required_pipelines(3.0e12) == 6

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            required_pipelines(0)


class TestMultiPipelineBlockOrdering:
    def test_behaves_like_a_pifo_without_cycles(self):
        block = MultiPipelineBlock()
        for rank, flow in [(5.0, "a"), (1.0, "b"), (3.0, "c")]:
            assert block.enqueue(0, rank=rank, flow=flow, metadata=flow)
        order = [block.dequeue(0).flow for _ in range(3)]
        assert order == ["b", "c", "a"]

    def test_peek_matches_dequeue(self):
        block = MultiPipelineBlock()
        block.enqueue(0, rank=2.0, flow="x", metadata="x")
        block.enqueue(0, rank=1.0, flow="y", metadata="y")
        assert block.peek(0).flow == "y"
        assert block.dequeue(0).flow == "y"

    def test_len_and_is_empty(self):
        block = MultiPipelineBlock()
        assert block.is_empty()
        block.enqueue(0, rank=1.0, flow="a")
        assert len(block) == 1
        block.dequeue(0)
        assert block.is_empty()

    def test_pipeline_index_validation(self):
        block = MultiPipelineBlock(ports=PipelinePortConfig(2, 2))
        with pytest.raises(HardwareModelError):
            block.enqueue(0, rank=1.0, flow="a", pipeline=2)
        with pytest.raises(HardwareModelError):
            block.dequeue(0, pipeline=5)

    def test_cycle_numbers_must_not_go_backwards(self):
        block = MultiPipelineBlock()
        block.enqueue(0, rank=1.0, flow="a", cycle=10)
        with pytest.raises(HardwareModelError):
            block.enqueue(0, rank=2.0, flow="b", cycle=5)


class TestPortBudget:
    def test_single_pipeline_refuses_second_enqueue_in_a_cycle(self):
        block = MultiPipelineBlock(ports=PipelinePortConfig(1, 1), strict=True)
        assert block.enqueue(0, rank=1.0, flow="a", cycle=1)
        assert not block.enqueue(0, rank=2.0, flow="b", cycle=1)
        assert block.stats.enqueues_refused == 1
        # The next cycle frees the port again.
        assert block.enqueue(0, rank=2.0, flow="b", cycle=2)

    def test_wider_ingress_accepts_parallel_enqueues(self):
        block = MultiPipelineBlock(ports=PipelinePortConfig(4, 1), strict=True)
        results = [
            block.enqueue(0, rank=float(i), flow=f"f{i}", cycle=1, pipeline=i)
            for i in range(4)
        ]
        assert all(results)
        assert block.stats.enqueues_refused == 0

    def test_egress_budget_limits_dequeues_per_cycle(self):
        block = MultiPipelineBlock(ports=PipelinePortConfig(4, 2), strict=True)
        for i in range(4):
            block.enqueue(0, rank=float(i), flow=f"f{i}", cycle=1, pipeline=i)
        served = [block.dequeue(0, cycle=2, pipeline=min(i, 1)) for i in range(4)]
        assert sum(1 for s in served if s is not None) == 2
        assert block.stats.dequeues_refused == 2
        # Next cycle the remaining two drain.
        remaining = [block.dequeue(0, cycle=3, pipeline=i % 2) for i in range(2)]
        assert all(r is not None for r in remaining)

    def test_permissive_mode_counts_but_does_not_refuse(self):
        block = MultiPipelineBlock(ports=PipelinePortConfig(1, 1), strict=False)
        assert block.enqueue(0, rank=1.0, flow="a", cycle=1)
        assert block.enqueue(0, rank=2.0, flow="b", cycle=1)
        assert block.stats.enqueues_refused == 1
        assert len(block) == 2

    def test_loss_fractions(self):
        block = MultiPipelineBlock(ports=PipelinePortConfig(2, 1), strict=True)
        for cycle in range(1, 11):
            for i in range(4):  # 4 offered enqueues per cycle, budget 2
                block.enqueue(0, rank=float(cycle * 10 + i), flow=f"f{i}",
                              cycle=cycle, pipeline=i % 2)
        assert block.stats.enqueues_accepted == 20
        assert block.stats.enqueues_refused == 20
        assert block.stats.enqueue_loss_fraction == pytest.approx(0.5)
        assert block.stats.enqueue_overflow_cycles == 10

    def test_functional_mode_without_cycles_never_refuses(self):
        block = MultiPipelineBlock(ports=PipelinePortConfig(1, 1), strict=True)
        for i in range(10):
            assert block.enqueue(0, rank=float(i), flow=f"f{i}")
        assert block.stats.enqueues_refused == 0
        assert len(block) == 10

    def test_ordering_preserved_across_wide_ports(self):
        """Packets admitted through different ingress pipelines still dequeue
        in global rank order."""
        block = MultiPipelineBlock(ports=PipelinePortConfig(4, 4), strict=True)
        ranks = [9.0, 2.0, 7.0, 4.0, 1.0, 8.0, 3.0, 6.0]
        for i, rank in enumerate(ranks):
            block.enqueue(0, rank=rank, flow=f"f{i}", metadata=rank,
                          cycle=1 + i // 4, pipeline=i % 4)
        out = []
        cycle = 10
        while not block.is_empty():
            element = block.dequeue(0, cycle=cycle, pipeline=len(out) % 4)
            if element is not None:
                out.append(element.rank)
            cycle += 1
        assert out == sorted(ranks)
