"""Unit tests for the AST-to-Python compiler (:mod:`repro.lang.compiler`).

The golden rule under test: a compiled program is observationally identical
to the interpreter — same results, same state effects, and the same
:class:`RuntimeLangError` (message included) on the same inputs.  The
property-based lockstep suite in ``test_compiler_equivalence.py`` covers the
bundled paper programs; these tests cover the compiler's own machinery —
codegen corners, error replay, the compile cache and the bridge fallback.
"""

from __future__ import annotations

import pytest

from repro.core import Packet, TransactionContext
from repro.lang import (
    CompileError,
    Interpreter,
    ProgramEnvironment,
    RuntimeLangError,
    compile_cached,
    compile_program,
    compile_scheduling_program,
    parse,
)
from repro.lang.ast import Program, Statement
from repro.lang.compiler import clear_compile_cache, compile_cache_info


def make_ctx(flow="f1", length=1000, now=0.0):
    return TransactionContext(now=now, node="t", element_flow=flow, element_length=length)


def run_both(source, packet=None, now=0.0, state=None, params=None,
             flow_attrs=None, functions=None):
    """Execute under interpreter and compiler with isolated environments.

    Returns ``((result, state), (result, state))`` on success or raises the
    compiled path's error after asserting both paths failed identically.
    """
    program = parse(source)
    outcomes = []
    for execute in (
        Interpreter(program).execute,
        compile_program(program, state=dict(state or {}), params=dict(params or {})).execute,
    ):
        pkt = packet.copy() if packet is not None else Packet(flow="f1", length=1000)
        env = ProgramEnvironment(
            state={k: (dict(v) if isinstance(v, dict) else v)
                   for k, v in (state or {}).items()},
            params=dict(params or {}),
            flow_attrs=dict(flow_attrs or {}),
            functions=dict(functions or {}),
        )
        try:
            result = execute(pkt, make_ctx(pkt.flow, pkt.length, now), env)
            outcomes.append(("ok", result, env.state, pkt.fields))
        except RuntimeLangError as exc:
            outcomes.append(("err", type(exc).__name__, str(exc), env.state))
    (kind_i, *rest_i), (kind_c, *rest_c) = outcomes
    assert kind_i == kind_c, f"interpreter {outcomes[0]} vs compiled {outcomes[1]}"
    if kind_i == "err":
        assert rest_i == rest_c
        raise RuntimeLangError(rest_c[1])
    result_i, state_i, fields_i = rest_i
    result_c, state_c, fields_c = rest_c
    assert result_c.rank == result_i.rank
    assert result_c.send_time == result_i.send_time
    assert result_c.packet_writes == result_i.packet_writes
    assert result_c.locals == result_i.locals
    assert state_c == state_i
    assert fields_c == fields_i
    return result_c, state_c


class TestBasicParity:
    def test_arithmetic(self):
        result, _ = run_both("p.rank = (2 + 3) * 4 - 6 / 3 + 17 % 5")
        assert result.rank == 20.0

    def test_state_and_locals(self):
        result, state = run_both("counter = counter + 1\ntmp = 5\np.rank = counter + tmp",
                                 state={"counter": 10})
        assert result.rank == 16
        assert state["counter"] == 11
        assert result.locals == {"tmp": 5}

    def test_param_inlined_as_constant(self):
        program = parse("p.rank = r * 2")
        compiled = compile_program(program, params={"r": 21})
        assert "42" in compiled.source_text or "21" in compiled.source_text
        assert "env.params" not in compiled.source_text

    def test_packet_field_write_then_read(self):
        result, _ = run_both("p.start = 5\np.rank = p.start + 1")
        assert result.rank == 6

    def test_tables_and_membership(self):
        source = (
            "f = flow(p)\n"
            "if f in table\n"
            "    table[f] = table[f] + 1\n"
            "else\n"
            "    table[f] = 1\n"
            "p.rank = table[f]\n"
        )
        result, state = run_both(source, state={"table": {}})
        assert result.rank == 1
        assert state["table"] == {"f1": 1}

    def test_short_circuit_does_not_touch_table(self):
        source = "f = flow(p)\nif false and table[f] > 0\n    p.rank = 1\nelse\n    p.rank = 2"
        result, _ = run_both(source, state={"table": {}})
        assert result.rank == 2

    def test_flow_attribute_dispatch(self):
        result, _ = run_both(
            "f = flow(p)\np.rank = 10 / f.weight",
            flow_attrs={"weight": lambda flow: 4.0},
        )
        assert result.rank == 2.5

    def test_custom_function_dispatch(self):
        result, _ = run_both("p.rank = double(21)",
                             functions={"double": lambda v: v * 2})
        assert result.rank == 42

    def test_user_function_overrides_builtin(self):
        result, _ = run_both("p.rank = min(1, 2)",
                             functions={"min": lambda a, b: 99})
        assert result.rank == 99

    def test_now_and_elif(self):
        source = "if now > 10\n    p.rank = 2\nelif now > 5\n    p.rank = 1\nelse\n    p.rank = 0"
        result, _ = run_both(source, now=7.0)
        assert result.rank == 1


class TestErrorFidelity:
    """Compiled errors must match the interpreter's message for message."""

    @pytest.mark.parametrize("source,state,params,fragment", [
        ("p.rank = 1 / 0", {}, {}, "division by zero"),
        ("p.rank = mystery", {}, {}, "undefined name"),
        ("r = 5\np.rank = r", {}, {"r": 1}, "parameter"),
        ("p.rank = p.no_such_field", {}, {}, "no field"),
        ("p.rank = table[p.flow]", {"table": {}}, {}, "not present"),
        ("mystery[p.flow] = 1\np.rank = 0", {}, {}, "not a declared state"),
        ("p.rank = x[p.flow]", {"x": 3.0}, {}, "not a table"),
        ("p.rank = frobnicate(1)", {}, {}, "unknown function"),
        ("f = flow(p)\np.rank = f.weight", {}, {}, "flow attribute accessor"),
        ("if 1 > 2\n    x = 1\np.rank = x", {}, {}, "undefined name"),
        ("f = flow(p)\np.rank = f + 1", {}, {}, "bad operands"),
    ])
    def test_error_messages_identical(self, source, state, params, fragment):
        with pytest.raises(RuntimeLangError) as excinfo:
            run_both(source, state=state, params=params)
        assert fragment in str(excinfo.value)

    def test_wrong_arity_reports_call_failure(self):
        with pytest.raises(RuntimeLangError) as excinfo:
            run_both("p.rank = one() + 1", functions={"one": lambda x: x})
        assert "failed" in str(excinfo.value)

    def test_state_mutations_before_failure_are_kept(self):
        # The first statement commits, the second fails: interpreter and
        # compiled must leave identical (partially-updated) state behind.
        source = "counter = counter + 1\nx = counter\np.rank = 1 / 0"
        with pytest.raises(RuntimeLangError):
            run_both(source, state={"counter": 5})

    def test_reassigned_table_uses_guarded_path(self):
        # ``t`` starts as a table but the program clobbers it with a scalar;
        # the later subscript must raise the interpreter's error.
        source = "t = 5\np.rank = t[p.flow]"
        with pytest.raises(RuntimeLangError) as excinfo:
            run_both(source, state={"t": {}})
        assert "not a table" in str(excinfo.value)

    def test_error_in_dead_branch_never_raises(self):
        source = "if false\n    p.rank = 1 / 0\nelse\n    p.rank = 3"
        result, _ = run_both(source)
        assert result.rank == 3

    def test_missing_accessor_in_dead_branch_never_raises(self):
        source = "if false\n    f = flow(p)\n    p.rank = f.weight\nelse\n    p.rank = 3"
        result, _ = run_both(source)
        assert result.rank == 3


class TestCompileCache:
    def test_same_signature_shares_code(self):
        clear_compile_cache()
        program = parse("p.rank = r * 2")
        first = compile_cached(program, params={"r": 2.0})
        second = compile_cached(program, params={"r": 2.0})
        assert first is second
        assert compile_cache_info()["hits"] == 1

    def test_different_param_values_compile_separately(self):
        clear_compile_cache()
        program = parse("p.rank = r * 2")
        first = compile_cached(program, params={"r": 2.0})
        second = compile_cached(program, params={"r": 3.0})
        assert first is not second
        assert compile_cache_info()["misses"] == 2

    def test_shared_code_isolated_state(self):
        clear_compile_cache()
        source = "counter = counter + 1\np.rank = counter"
        program = parse(source)
        compiled = compile_cached(program, state={"counter": 0})
        env_a = ProgramEnvironment(state={"counter": 0})
        env_b = ProgramEnvironment(state={"counter": 100})
        compiled.execute(Packet(flow="a", length=1), make_ctx(), env_a)
        compiled.execute(Packet(flow="b", length=1), make_ctx(), env_b)
        assert env_a.state["counter"] == 1
        assert env_b.state["counter"] == 101

    def test_transaction_instances_share_compiled_program(self):
        clear_compile_cache()
        first = compile_scheduling_program("p.rank = p.length", name="a")
        second = compile_scheduling_program("p.rank = p.length", name="b")
        assert first._compiled is not None
        assert first._compiled is second._compiled
        # ... while ranks stay independent per instance.
        assert first(Packet(flow="x", length=10), make_ctx("x", 10)) == 10
        assert second(Packet(flow="y", length=20), make_ctx("y", 20)) == 20


class TestBridgeBackends:
    def test_compiled_is_the_default(self):
        transaction = compile_scheduling_program("p.rank = now")
        assert transaction.backend == "compiled"
        assert transaction.generated_source() is not None
        assert "compiled" in transaction.describe()

    def test_interpreted_backend_forced(self):
        transaction = compile_scheduling_program("p.rank = now", backend="interpreted")
        assert transaction.backend == "interpreted"
        assert transaction.generated_source() is None
        assert transaction(Packet(flow="a", length=5), make_ctx(now=3.0)) == 3.0

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANG_BACKEND", "interpreted")
        transaction = compile_scheduling_program("p.rank = now")
        assert transaction.backend == "interpreted"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            compile_scheduling_program("p.rank = now", backend="llvm")

    def test_unsupported_construct_falls_back_to_interpreter(self):
        class AlienStatement(Statement):
            line = 1

            def children(self):
                return iter(())

        program = Program(statements=(AlienStatement(),), source="<alien>")
        with pytest.raises(CompileError):
            compile_program(program)
        transaction = compile_scheduling_program(program)
        assert transaction.backend == "interpreted"
        assert transaction.compile_fallback_reason is not None

    def test_compiled_and_interpreted_ranks_match_end_to_end(self):
        from repro.lang.programs import stfq_program

        compiled = stfq_program(weights={"a": 2.0, "b": 1.0})
        interpreted = stfq_program(weights={"a": 2.0, "b": 1.0}, backend="interpreted")
        assert compiled.backend == "compiled"
        assert interpreted.backend == "interpreted"
        for i in range(40):
            flow = "a" if i % 3 else "b"
            packet = Packet(flow=flow, length=100 + i)
            ctx = make_ctx(flow, packet.length)
            assert compiled(packet.copy(), ctx) == interpreted(packet.copy(), ctx)
        assert compiled.state == interpreted.state
