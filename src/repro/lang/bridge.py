"""Run transaction-language programs as scheduling/shaping transactions.

This is the glue between :mod:`repro.lang` and :mod:`repro.core`: a compiled
program becomes a :class:`~repro.core.transaction.SchedulingTransaction` or
:class:`~repro.core.transaction.ShapingTransaction` and can be attached to a
:class:`~repro.core.tree.TreeNode` exactly like the hand-written algorithm
classes in :mod:`repro.algorithms`.

Three details deserve a note:

* **Compile-by-default.**  Programs are lowered to native Python closures by
  :mod:`repro.lang.compiler` at construction time; the per-packet cost is a
  direct function call, not an AST walk.  If the compiler cannot lower a
  construct it raises :class:`~repro.lang.compiler.CompileError` and the
  bridge silently falls back to the interpreter — ``backend="interpreted"``
  (or the ``REPRO_LANG_BACKEND`` environment variable) forces the fallback
  explicitly, which the ablation benchmark uses for its baseline.
* **Dequeue programs.**  Some algorithms update state when a packet leaves
  the PIFO, not only when it enters — STFQ advances its virtual time to the
  start tag of the dequeued packet.  The bridge therefore accepts an
  optional ``dequeue_source``; that program runs with the extra names
  ``dequeued_rank`` (the PIFO rank of the element being dequeued) available
  as parameters.  ``dequeued_rank`` changes per call, so it is compiled as a
  *dynamic* parameter (read through the environment) while every other
  parameter is inlined as a constant.
* **Atom feasibility.**  ``require_line_rate=True`` runs the Domino-style
  analysis at construction time and refuses programs that do not fit the
  atom vocabulary — the same contract the paper's compiler enforces.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Mapping, Optional

from ..core.packet import Packet
from ..core.pifo import Rank
from ..core.transaction import (
    SchedulingTransaction,
    ShapingTransaction,
    TransactionContext,
)
from ..exceptions import TransactionError
from ..hardware.atoms import AtomPipelineAnalyzer, PipelineReport, TransactionSpec
from .analysis import ProgramAnalysis, analyze_program, spec_from_program
from .ast import Program
from .compiler import CompiledProgram, CompileError, compile_cached
from .errors import LangError, RuntimeLangError
from .interpreter import ExecutionResult, Interpreter, ProgramEnvironment
from .parser import parse

#: Default execution backend for lang-backed transactions.  ``"compiled"``
#: lowers the AST to a native Python closure (with automatic interpreter
#: fallback on unsupported constructs); ``"interpreted"`` forces the
#: per-packet AST walk.  Overridable per process via ``REPRO_LANG_BACKEND``.
DEFAULT_BACKEND = "compiled"

_VALID_BACKENDS = ("compiled", "interpreted")


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a requested backend name against the env-var default."""
    if backend is None:
        backend = os.environ.get("REPRO_LANG_BACKEND", "").strip().lower() or None
    if backend is None:
        backend = DEFAULT_BACKEND
    if backend not in _VALID_BACKENDS:
        raise ValueError(
            f"unknown lang backend {backend!r} (expected one of {_VALID_BACKENDS})"
        )
    return backend


class _CompiledProgramMixin:
    """Shared plumbing for compiled scheduling and shaping transactions."""

    kind = "scheduling"

    def __init__(
        self,
        source: str | Program,
        state: Optional[Mapping[str, Any]] = None,
        params: Optional[Mapping[str, Any]] = None,
        flow_attrs: Optional[Mapping[str, Callable[[Any], Any]]] = None,
        functions: Optional[Mapping[str, Callable[..., Any]]] = None,
        dequeue_source: Optional[str | Program] = None,
        name: str = "compiled",
        require_line_rate: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        self.program = parse(source) if isinstance(source, str) else source
        self.dequeue_program = (
            parse(dequeue_source)
            if isinstance(dequeue_source, str)
            else dequeue_source
        )
        self._interpreter = Interpreter(self.program)
        self._dequeue_interpreter = (
            Interpreter(self.dequeue_program) if self.dequeue_program else None
        )
        self._initial_state = dict(state or {})
        self.params = dict(params or {})
        self.flow_attrs = dict(flow_attrs or {})
        self.functions = dict(functions or {})
        self.program_name = name
        self.state_variables = tuple(sorted(self._initial_state))
        self.analysis: ProgramAnalysis = analyze_program(
            self.program, state=self._initial_state
        )
        self.last_result: Optional[ExecutionResult] = None
        self._compiled: Optional[CompiledProgram] = None
        self._dequeue_compiled: Optional[CompiledProgram] = None
        self.compile_fallback_reason: Optional[str] = None
        self.backend = resolve_backend(backend)
        if self.backend == "compiled":
            try:
                self._compiled = compile_cached(
                    self.program,
                    state=self._initial_state,
                    params=self.params,
                    name=name,
                )
                if self.dequeue_program is not None:
                    self._dequeue_compiled = compile_cached(
                        self.dequeue_program,
                        state=self._initial_state,
                        params=self.params,
                        dynamic_params=("dequeued_rank",),
                        name=f"{name}.dequeue",
                    )
            except (CompileError, LangError) as exc:
                # Unsupported construct: run interpreted, record why.
                self._compiled = None
                self._dequeue_compiled = None
                self.backend = "interpreted"
                self.compile_fallback_reason = str(exc)
        self._execute = (
            self._compiled.execute
            if self._compiled is not None
            else self._interpreter.execute
        )
        if self._dequeue_interpreter is not None:
            self._dequeue_execute = (
                self._dequeue_compiled.execute
                if self._dequeue_compiled is not None
                else self._dequeue_interpreter.execute
            )
        else:
            self._dequeue_execute = None
        # Per-call environments are reused (rebuilt only when reset() swaps
        # the state mapping); the dequeue params dict is shared with its
        # environment and updated in place.
        self._env: Optional[ProgramEnvironment] = None
        self._dequeue_env: Optional[ProgramEnvironment] = None
        if require_line_rate:
            report = self.pipeline_report()
            if not report.feasible:
                raise TransactionError(
                    f"program {name!r} cannot run at line rate: {report.reason}"
                )
        super().__init__()

    # -- Transaction API -------------------------------------------------------
    def initial_state(self) -> Dict[str, Any]:
        # Mutable initial values (per-flow tables) must not be shared between
        # resets, so containers are copied.
        initial: Dict[str, Any] = {}
        for key, value in self._initial_state.items():
            initial[key] = dict(value) if isinstance(value, dict) else value
        return initial

    def describe(self) -> str:
        return f"{type(self).__name__}({self.program_name!r}, {self.backend})"

    def generated_source(self) -> Optional[str]:
        """Python source the compiler produced (``None`` when interpreted)."""
        if self._compiled is None:
            return None
        return self._compiled.source_text

    # -- execution ---------------------------------------------------------------
    def _environment(self) -> ProgramEnvironment:
        env = self._env
        if env is None or env.state is not self.state:
            env = ProgramEnvironment(
                state=self.state,
                params=self.params,
                flow_attrs=self.flow_attrs,
                functions=self.functions,
            )
            self._env = env
        return env

    def _run(self, packet: Packet, ctx: TransactionContext) -> ExecutionResult:
        result = self._execute(packet, ctx, self._environment())
        # Packet-field writes other than the rank/send-time outputs persist on
        # the packet, exactly as the paper's programs write back to ``p.x``
        # (LSTF relies on this to carry the decremented slack to the next hop).
        for field_name, value in result.packet_writes.items():
            if field_name not in ("rank", "send_time"):
                packet.set(field_name, value)
        self.last_result = result
        return result

    def on_dequeue(self, element: Any, ctx: TransactionContext) -> None:
        if self._dequeue_execute is None:
            return
        env = self._dequeue_env
        if env is None or env.state is not self.state:
            env = ProgramEnvironment(
                state=self.state,
                params=dict(self.params),
                flow_attrs=self.flow_attrs,
                functions=self.functions,
            )
            self._dequeue_env = env
        rank = ctx.extras.get("rank")
        env.params["dequeued_rank"] = 0.0 if rank is None else rank
        packet = element if isinstance(element, Packet) else _pseudo_packet(ctx)
        self._dequeue_execute(packet, ctx, env)

    # -- hardware feasibility ------------------------------------------------------
    def transaction_spec(self) -> TransactionSpec:
        """The Domino-style IR of this program (for the atom analyser)."""
        return spec_from_program(
            self.program_name,
            self.program,
            state=self._initial_state,
            kind=self.kind,
        )

    def pipeline_report(
        self, analyzer: Optional[AtomPipelineAnalyzer] = None
    ) -> PipelineReport:
        """Map the program onto an atom pipeline and report feasibility."""
        analyzer = analyzer or AtomPipelineAnalyzer()
        return analyzer.analyze(self.transaction_spec())


class CompiledSchedulingTransaction(_CompiledProgramMixin, SchedulingTransaction):
    """A scheduling transaction defined by program text.

    The program must assign ``p.rank``; its value becomes the PIFO rank.
    """

    kind = "scheduling"

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        result = self._run(packet, ctx)
        if result.rank is None:
            raise RuntimeLangError(
                f"scheduling program {self.program_name!r} finished without "
                "assigning p.rank"
            )
        return result.rank


class CompiledShapingTransaction(_CompiledProgramMixin, ShapingTransaction):
    """A shaping transaction defined by program text.

    The program must assign ``p.send_time`` (or ``p.rank``, which Figure 4c
    sets to the send time); its value becomes the wall-clock release time.
    """

    kind = "shaping"

    def compute_send_time(self, packet: Packet, ctx: TransactionContext) -> float:
        result = self._run(packet, ctx)
        send_time = result.send_time if result.send_time is not None else result.rank
        if send_time is None:
            raise RuntimeLangError(
                f"shaping program {self.program_name!r} finished without "
                "assigning p.send_time or p.rank"
            )
        return send_time


def compile_scheduling_program(
    source: str | Program,
    state: Optional[Mapping[str, Any]] = None,
    params: Optional[Mapping[str, Any]] = None,
    flow_attrs: Optional[Mapping[str, Callable[[Any], Any]]] = None,
    functions: Optional[Mapping[str, Callable[..., Any]]] = None,
    dequeue_source: Optional[str | Program] = None,
    name: str = "compiled-scheduling",
    require_line_rate: bool = False,
    backend: Optional[str] = None,
) -> CompiledSchedulingTransaction:
    """Compile program text into a ready-to-use scheduling transaction."""
    return CompiledSchedulingTransaction(
        source,
        state=state,
        params=params,
        flow_attrs=flow_attrs,
        functions=functions,
        dequeue_source=dequeue_source,
        name=name,
        require_line_rate=require_line_rate,
        backend=backend,
    )


def compile_shaping_program(
    source: str | Program,
    state: Optional[Mapping[str, Any]] = None,
    params: Optional[Mapping[str, Any]] = None,
    flow_attrs: Optional[Mapping[str, Callable[[Any], Any]]] = None,
    functions: Optional[Mapping[str, Callable[..., Any]]] = None,
    name: str = "compiled-shaping",
    require_line_rate: bool = False,
    backend: Optional[str] = None,
) -> CompiledShapingTransaction:
    """Compile program text into a ready-to-use shaping transaction."""
    return CompiledShapingTransaction(
        source,
        state=state,
        params=params,
        flow_attrs=flow_attrs,
        functions=functions,
        name=name,
        require_line_rate=require_line_rate,
        backend=backend,
    )


def _pseudo_packet(ctx: TransactionContext) -> Packet:
    """Placeholder packet for dequeue programs run on PIFO references."""
    return Packet(
        flow=ctx.element_flow or "reference",
        length=max(1, ctx.element_length),
        arrival_time=ctx.now,
    )
